#!/bin/bash
# Regenerates every table and figure; outputs land in results_*.txt.
set -u
cd "$(dirname "$0")"
export TAXOREC_SEEDS=${TAXOREC_SEEDS:-1}
for bin in table1 table2 table3 fig6 table5 fig3 fig5 table4; do
  echo "=== running $bin ==="
  ./target/release/$bin > results_$bin.txt 2>&1
  echo "=== $bin done (exit $?) ==="
done
