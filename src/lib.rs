//! Facade crate re-exporting the TaxoRec workspace public API.
pub use taxorec_autodiff as autodiff;
pub use taxorec_baselines as baselines;
pub use taxorec_core as core;
pub use taxorec_data as data;
pub use taxorec_eval as eval;
pub use taxorec_geometry as geometry;
pub use taxorec_parallel as parallel;
pub use taxorec_resilience as resilience;
pub use taxorec_retrieval as retrieval;
pub use taxorec_serve as serve;
pub use taxorec_taxonomy as taxonomy;
pub use taxorec_telemetry as telemetry;
