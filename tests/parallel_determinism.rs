//! Bit-level determinism of the data-parallel kernels: training,
//! taxonomy construction, and evaluation must produce *identical* numbers
//! whether the `taxorec-parallel` pool runs sequentially
//! (`TAXOREC_THREADS=1`) or fans out across workers (`TAXOREC_THREADS=4`).
//!
//! One `#[test]` covers the whole pipeline so the env-var flips cannot
//! race against each other under the default multi-threaded test runner.

use taxorec::core::{ModelState, TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec::eval::evaluate;
use taxorec::geometry::lorentz;
use taxorec::taxonomy::Taxonomy;

struct RunResult {
    loss_history: Vec<f64>,
    taxonomy: Taxonomy,
    recall: Vec<Vec<f64>>,
    ndcg: Vec<Vec<f64>>,
    users: Vec<u32>,
}

/// Reference scorer over an exported [`ModelState`], using the original
/// scalar per-item loop. The fused block kernels must reproduce its
/// scores bit-for-bit (same per-item summation order).
struct NaiveScorer {
    state: ModelState,
}

impl Recommender for NaiveScorer {
    fn name(&self) -> &str {
        "NaiveScorer"
    }

    fn fit(&mut self, _dataset: &taxorec::data::Dataset, _split: &Split) {
        // Scores come from the exported state; nothing to train.
    }

    fn scores_for_user(&self, user: u32) -> Vec<f64> {
        let s = &self.state;
        let u = user as usize;
        let urow_ir = s.u_ir.row(u);
        let alpha = s.config.tag_channel_gain * s.alphas.get(u).copied().unwrap_or(0.0);
        let n_items = s.v_ir.rows();
        let mut out = Vec::with_capacity(n_items);
        for v in 0..n_items {
            let mut g = lorentz::distance_sq(urow_ir, s.v_ir.row(v));
            if s.tags_active {
                g += alpha * lorentz::distance_sq(s.u_tg.row(u), s.v_tg.row(v));
            }
            out.push(-g);
        }
        out
    }
}

fn run_pipeline() -> RunResult {
    let d = generate_preset(Preset::Ciao, Scale::Tiny);
    let s = Split::standard(&d);
    let mut m = TaxoRec::new(TaxoRecConfig {
        epochs: 3,
        ..TaxoRecConfig::fast_test()
    });
    m.fit(&d, &s);
    let e = evaluate(&m, &s, &[5, 10]);

    // Fused-vs-naive equivalence, at whatever thread count is active:
    // the batched kernels must reproduce the seed scalar loop exactly.
    let naive = NaiveScorer {
        state: m.export_state(),
    };
    for &u in e.users.iter().take(8) {
        let fused = m.scores_for_user(u);
        let reference = naive.scores_for_user(u);
        let fused_bits: Vec<u64> = fused.iter().map(|v| v.to_bits()).collect();
        let ref_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            fused_bits, ref_bits,
            "fused scores diverged from the scalar reference for user {u}"
        );
    }
    let e_naive = evaluate(&naive, &s, &[5, 10]);
    assert_eq!(e.users, e_naive.users, "naive eval visited different users");
    assert_eq!(
        bits(&e.recall),
        bits(&e_naive.recall),
        "fused-path Recall diverged from the scalar reference"
    );
    assert_eq!(
        bits(&e.ndcg),
        bits(&e_naive.ndcg),
        "fused-path NDCG diverged from the scalar reference"
    );

    RunResult {
        loss_history: m.loss_history.clone(),
        taxonomy: m.taxonomy().expect("taxonomy constructed").clone(),
        recall: e.recall,
        ndcg: e.ndcg,
        users: e.users,
    }
}

fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
    rows.iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn pipeline_is_bit_identical_across_thread_counts() {
    let prev = std::env::var("TAXOREC_THREADS").ok();

    std::env::set_var("TAXOREC_THREADS", "1");
    let seq = run_pipeline();
    std::env::set_var("TAXOREC_THREADS", "4");
    let par = run_pipeline();

    match prev {
        Some(v) => std::env::set_var("TAXOREC_THREADS", v),
        None => std::env::remove_var("TAXOREC_THREADS"),
    }

    // Epoch losses: every bit of every epoch.
    let seq_loss: Vec<u64> = seq.loss_history.iter().map(|v| v.to_bits()).collect();
    let par_loss: Vec<u64> = par.loss_history.iter().map(|v| v.to_bits()).collect();
    assert_eq!(seq_loss.len(), 3, "three epochs recorded");
    assert_eq!(
        seq_loss, par_loss,
        "epoch losses diverged across thread counts"
    );

    // The constructed taxonomy: identical structure, tags, and scores.
    assert_eq!(
        seq.taxonomy, par.taxonomy,
        "taxonomy tree diverged across thread counts"
    );

    // Evaluation: same users in the same order, same per-user metrics.
    assert_eq!(seq.users, par.users, "evaluated user sets diverged");
    assert_eq!(
        bits(&seq.recall),
        bits(&par.recall),
        "per-user Recall diverged across thread counts"
    );
    assert_eq!(
        bits(&seq.ndcg),
        bits(&par.ndcg),
        "per-user NDCG diverged across thread counts"
    );
}
