//! Bit-level determinism of the data-parallel kernels: training,
//! taxonomy construction, and evaluation must produce *identical* numbers
//! whether the `taxorec-parallel` pool runs sequentially
//! (`TAXOREC_THREADS=1`) or fans out across workers (`TAXOREC_THREADS=4`).
//!
//! One `#[test]` covers the whole pipeline so the env-var flips cannot
//! race against each other under the default multi-threaded test runner.

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec::eval::evaluate;
use taxorec::taxonomy::Taxonomy;

struct RunResult {
    loss_history: Vec<f64>,
    taxonomy: Taxonomy,
    recall: Vec<Vec<f64>>,
    ndcg: Vec<Vec<f64>>,
    users: Vec<u32>,
}

fn run_pipeline() -> RunResult {
    let d = generate_preset(Preset::Ciao, Scale::Tiny);
    let s = Split::standard(&d);
    let mut m = TaxoRec::new(TaxoRecConfig {
        epochs: 3,
        ..TaxoRecConfig::fast_test()
    });
    m.fit(&d, &s);
    let e = evaluate(&m, &s, &[5, 10]);
    RunResult {
        loss_history: m.loss_history.clone(),
        taxonomy: m.taxonomy().expect("taxonomy constructed").clone(),
        recall: e.recall,
        ndcg: e.ndcg,
        users: e.users,
    }
}

fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
    rows.iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn pipeline_is_bit_identical_across_thread_counts() {
    let prev = std::env::var("TAXOREC_THREADS").ok();

    std::env::set_var("TAXOREC_THREADS", "1");
    let seq = run_pipeline();
    std::env::set_var("TAXOREC_THREADS", "4");
    let par = run_pipeline();

    match prev {
        Some(v) => std::env::set_var("TAXOREC_THREADS", v),
        None => std::env::remove_var("TAXOREC_THREADS"),
    }

    // Epoch losses: every bit of every epoch.
    let seq_loss: Vec<u64> = seq.loss_history.iter().map(|v| v.to_bits()).collect();
    let par_loss: Vec<u64> = par.loss_history.iter().map(|v| v.to_bits()).collect();
    assert_eq!(seq_loss.len(), 3, "three epochs recorded");
    assert_eq!(
        seq_loss, par_loss,
        "epoch losses diverged across thread counts"
    );

    // The constructed taxonomy: identical structure, tags, and scores.
    assert_eq!(
        seq.taxonomy, par.taxonomy,
        "taxonomy tree diverged across thread counts"
    );

    // Evaluation: same users in the same order, same per-user metrics.
    assert_eq!(seq.users, par.users, "evaluated user sets diverged");
    assert_eq!(
        bits(&seq.recall),
        bits(&par.recall),
        "per-user Recall diverged across thread counts"
    );
    assert_eq!(
        bits(&seq.ndcg),
        bits(&par.ndcg),
        "per-user NDCG diverged across thread counts"
    );
}
