//! End-to-end telemetry pipeline: a real (tiny) training + evaluation run
//! must emit valid JSON Lines containing every documented metric name.
//! This is the integration contract behind `TAXOREC_METRICS` (the test
//! bypasses the environment with the in-memory sink so it stays hermetic).

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec::eval::run_cell;
use taxorec::telemetry;

#[test]
fn training_run_emits_documented_metrics_as_valid_jsonl() {
    let buf = telemetry::install_memory_sink();
    let d = generate_preset(Preset::Ciao, Scale::Tiny);
    let s = Split::standard(&d);
    let stats = run_cell(
        "TaxoRec",
        &|seed| {
            Box::new(TaxoRec::new(TaxoRecConfig {
                epochs: 3,
                seed,
                ..TaxoRecConfig::fast_test()
            })) as Box<dyn Recommender>
        },
        &d,
        &s,
        &[10],
        &[1],
    );
    telemetry::disable_metrics();
    let lines = buf.lock().unwrap().clone();
    assert!(!lines.is_empty(), "an instrumented run must emit events");
    for l in &lines {
        assert!(telemetry::json::is_valid_json(l), "invalid JSONL line: {l}");
    }
    for name in [
        "train.epoch.loss",
        "train.grad_norm",
        "train.boundary_max_norm",
        "train.epoch.duration",
        "taxo.rebuild.duration",
        "taxo.kmeans.iters",
        "eval.fit.duration",
        "eval.eval.duration",
    ] {
        assert!(
            lines
                .iter()
                .any(|l| l.contains(&format!("\"name\":\"{name}\""))),
            "missing metric {name} in emitted JSONL"
        );
    }
    // The per-cell run summary rides along as its own JSONL record.
    assert!(lines.iter().any(|l| l.contains("\"name\":\"eval.cell\"")));
    assert!(stats.fit_secs_mean > 0.0, "fit wall time recorded");
    assert!(stats.eval_secs_mean >= 0.0);
    // The registry snapshot covering the run is itself one valid JSON doc.
    let snap = telemetry::snapshot();
    assert!(telemetry::json::is_valid_json(&snap), "{snap}");
    assert!(snap.contains("\"train.epoch.duration\""));
}
