//! The CI serving smoke test: train a tiny model, freeze it to a `.taxo`
//! artifact, reload it, prove the reloaded engine ranks **identically**
//! to the in-process model for every user, then stand the HTTP server up
//! on an ephemeral port and drive all four endpoints over a raw
//! `std::net::TcpStream` — exactly what an external `curl` would see.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, select_top_k, Preset, Recommender, Scale, Split};
use taxorec::serve::{Checkpoint, ServingModel};

fn trained() -> (TaxoRec, taxorec::data::Dataset, Split) {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = 5;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    (model, dataset, split)
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("taxorec-smoke-{}-{name}", std::process::id()))
}

/// The acceptance-criteria test: a trained in-process model and the
/// `.taxo` artifact reloaded from disk produce *identical* top-K lists
/// (items, order, and score bits) for every user.
#[test]
fn reloaded_checkpoint_ranks_identically_for_every_user() {
    let (model, dataset, split) = trained();
    let path = tmp_path("identity.taxo");
    Checkpoint::from_model(&model)
        .with_dataset(&dataset)
        .with_seen_items(&split.train)
        .save(&path)
        .expect("save");
    let serving = taxorec::serve::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(serving.n_users(), dataset.n_users);
    assert_eq!(serving.n_items(), dataset.n_items);
    let k = 20;
    for user in 0..dataset.n_users as u32 {
        // Reference ranking straight from the live model.
        let scores = model.scores_for_user(user);
        let seen: std::collections::HashSet<u32> =
            split.train[user as usize].iter().copied().collect();
        let expect = select_top_k(&scores, k, |v| seen.contains(&(v as u32)));
        let got = serving.recommend(user, k).expect("known user");
        assert_eq!(*got, expect, "top-{k} of user {user} diverged after reload");
        for (&(_, gs), &(_, es)) in got.iter().zip(expect.iter()) {
            assert_eq!(gs.to_bits(), es.to_bits(), "score bits of user {user}");
        }
    }
}

/// One HTTP request over a plain TCP socket; returns (status, body).
fn http_get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn http_server_answers_all_endpoints_end_to_end() {
    let (model, dataset, split) = trained();
    let path = tmp_path("http.taxo");
    Checkpoint::from_model(&model)
        .with_dataset(&dataset)
        .with_seen_items(&split.train)
        .save(&path)
        .expect("save");
    let serving = taxorec::serve::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    // Port 0 → the OS assigns an ephemeral port; no collisions in CI.
    let handle = taxorec::serve::serve(Arc::new(serving), "127.0.0.1:0", 2).expect("bind");
    let addr = handle.local_addr();

    // /healthz — liveness and the model card.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ready\""), "{body}");
    assert!(body.contains("\"queue\":{\"depth\":"), "{body}");
    assert!(
        body.contains(&format!("\"users\":{}", dataset.n_users)),
        "{body}"
    );

    // /recommend — top-K with scores, matching the engine exactly.
    let (status, body) = http_get(addr, "/recommend?user=0&k=5");
    assert_eq!(status, 200, "{body}");
    assert!(
        body.starts_with("{\"user\":0,\"k\":5,\"items\":["),
        "{body}"
    );
    assert_eq!(body.matches("\"item\":").count(), 5, "{body}");
    assert!(taxorec::telemetry::json::is_valid_json(&body), "{body}");

    // /explain — rationale for a (user, item) pair.
    let (status, body) = http_get(addr, "/explain?user=0&item=1");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"score\":"), "{body}");
    assert!(body.contains("\"item_tags\":["), "{body}");
    assert!(taxorec::telemetry::json::is_valid_json(&body), "{body}");

    // /metrics — Prometheus text exposition, which by now has request
    // counts; /metrics.json keeps the raw registry snapshot.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("taxorec_serve_http_requests_total"), "{body}");
    taxorec::telemetry::prometheus::validate(&body).unwrap_or_else(|e| panic!("{e}\n---\n{body}"));
    let (status, body) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("serve.http.requests"), "{body}");
    assert!(taxorec::telemetry::json::is_valid_json(&body), "{body}");

    // Error paths: bad query, unknown user, unknown route, wrong method.
    let (status, body) = http_get(addr, "/recommend");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("user"), "{body}");
    let (status, body) = http_get(addr, "/recommend?user=999999&k=3");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("unknown user"), "{body}");
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /recommend HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    // Graceful shutdown drains the workers; afterwards the port refuses.
    handle.shutdown();
    assert!(
        TcpStream::connect(addr).is_err() || http_get_would_fail(addr),
        "server still answering after shutdown"
    );
}

/// After shutdown the listener is closed; a connect may still succeed
/// momentarily on some platforms (backlog), but no response will come.
fn http_get_would_fail(addr: std::net::SocketAddr) -> bool {
    match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(500)));
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
            let mut buf = String::new();
            s.read_to_string(&mut buf).is_err() || buf.is_empty()
        }
    }
}

/// The batch path and the trait's default `top_k_for_user` agree with the
/// serving engine — three routes, one ranking contract.
#[test]
fn batch_trait_and_server_agree() {
    let (model, dataset, split) = trained();
    let serving = ServingModel::from_model(&model, &dataset, &split).expect("snapshot");
    let users: Vec<u32> = (0..dataset.n_users as u32).collect();
    let batch = serving.recommend_batch(&users, 10);
    for (u, res) in users.iter().zip(&batch) {
        let via_batch = res.as_ref().expect("known user");
        let via_single = serving.recommend(*u, 10).expect("known user");
        assert_eq!(**via_batch, *via_single);
        // The trait default ranks the same items when nothing is excluded:
        // compare against an exclusion-free reference.
        let unfiltered = model.top_k_for_user(*u, dataset.n_items);
        let seen: std::collections::HashSet<u32> =
            split.train[*u as usize].iter().copied().collect();
        let expect: Vec<(u32, f64)> = unfiltered
            .into_iter()
            .filter(|(v, _)| !seen.contains(v))
            .take(10)
            .collect();
        assert_eq!(**via_batch, expect, "user {u}");
    }
}
