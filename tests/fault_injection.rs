//! The fault-injection matrix from the resilience issue: every fault
//! site is armed in-process (the programmatic twin of `TAXOREC_FAULT`)
//! and the corresponding recovery path is asserted end to end —
//! pool-job panics are retried, a NaN epoch is rolled back and re-run,
//! a persistent NaN exhausts the rollback budget and degrades
//! gracefully, and a failed checkpoint write is absorbed by the retry
//! policy.
//!
//! The harness is process-global, so every test here serializes on one
//! lock and disarms the spec before releasing it.

use std::sync::Mutex;

use taxorec::core::{FitControl, TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Preset, Scale, Split};
use taxorec::parallel::{par_map, try_par_map};
use taxorec::resilience::{disable, install, FaultSpec, RetryPolicy};
use taxorec::serve::TrainCheckpoint;

/// Serializes tests that arm the process-global fault harness.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn arm(spec: &str) {
    install(FaultSpec::parse(spec).expect("valid spec"));
}

fn tiny_setup(epochs: usize) -> (taxorec::data::Dataset, Split, TaxoRecConfig) {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = epochs;
    (dataset, split, cfg)
}

#[test]
fn one_shot_pool_panic_is_absorbed_by_retry() {
    let _g = lock();
    arm("panic@parallel.job:1");
    // The first probed job attempt panics; the pool respawns/retries it
    // and the map still completes with every slot filled correctly.
    let out = par_map("fault.map", 16, |i| i * i);
    assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    disable();
}

#[test]
fn persistent_pool_panic_surfaces_a_pool_error() {
    let _g = lock();
    arm("panic@parallel.job:1+");
    let err = try_par_map("fault.persistent", 4, |i| i).unwrap_err();
    assert!(
        err.message.contains("fault injected: panic@parallel.job"),
        "{err}"
    );
    assert!(err.attempts >= 1, "{err}");
    disable();
    // The pool is healthy again once the fault is disarmed.
    assert_eq!(par_map("fault.after", 4, |i| i + 1), vec![1, 2, 3, 4]);
}

#[test]
fn nan_epoch_rolls_back_and_training_recovers() {
    let _g = lock();
    let (dataset, split, cfg) = tiny_setup(4);
    // Epoch probe #2 (the second epoch's first attempt) reports NaN.
    arm("nan@train.epoch:2");
    let mut model = TaxoRec::new(cfg);
    let report = model.fit_controlled(&dataset, &split, FitControl::default());
    disable();

    assert_eq!(report.rollbacks, 1, "{report:?}");
    assert!(!report.gave_up, "{report:?}");
    assert_eq!(report.epochs_run, 4, "every epoch eventually completed");
    assert_eq!(report.final_lr_scale, 0.5, "one lr backoff applied");
    assert_eq!(model.loss_history.len(), 4);
    assert!(
        model.loss_history.iter().all(|l| l.is_finite()),
        "the rolled-back NaN never reached the history: {:?}",
        model.loss_history
    );
}

#[test]
fn persistent_divergence_exhausts_the_budget_and_gives_up() {
    let _g = lock();
    let (dataset, split, cfg) = tiny_setup(4);
    // Every attempt of the second epoch diverges, forever.
    arm("nan@train.epoch:2+");
    let mut model = TaxoRec::new(cfg);
    let ctl = FitControl::default();
    let max_rollbacks = ctl.max_rollbacks;
    let report = model.fit_controlled(&dataset, &split, ctl);
    disable();

    assert!(report.gave_up, "{report:?}");
    assert_eq!(report.rollbacks, max_rollbacks + 1, "{report:?}");
    assert_eq!(report.epochs_run, 1, "only the clean first epoch landed");
    // Graceful degradation: the model stops at its last healthy
    // parameters instead of poisoning downstream consumers.
    assert_eq!(model.loss_history.len(), 1);
    assert!(model.loss_history[0].is_finite());
}

#[test]
fn failed_checkpoint_write_is_absorbed_by_the_retry_policy() {
    let _g = lock();
    let (dataset, split, cfg) = tiny_setup(2);
    let path = std::env::temp_dir().join(format!(
        "taxorec-fault-io-{}.trainstate",
        std::process::id()
    ));
    let path_str = path.to_string_lossy().into_owned();
    // The very first write of the first checkpoint fails; the retry
    // policy's second attempt goes through.
    arm("io@checkpoint.save:1");
    let mut ctl = FitControl {
        checkpoint_every: 1,
        ..FitControl::default()
    };
    let sink_path = path_str.clone();
    ctl.checkpoint_sink = Some(Box::new(move |state| {
        RetryPolicy::default()
            .run("checkpoint.save", |_| {
                TrainCheckpoint::new(state.clone()).save(&sink_path)
            })
            .map_err(|e| e.to_string())
    }));
    let mut model = TaxoRec::new(cfg);
    let report = model.fit_controlled(&dataset, &split, ctl);
    disable();

    assert_eq!(report.checkpoints_written, 2, "{report:?}");
    assert_eq!(report.checkpoint_failures, 0, "{report:?}");
    let loaded = TrainCheckpoint::load_file(&path_str).expect("checkpoint readable");
    assert_eq!(loaded.state.next_epoch, 2);
    std::fs::remove_file(&path).ok();
}
