//! Cross-crate consistency: the autodiff tape's hyperbolic ops must agree
//! with the geometry crate's reference implementations, and persisted
//! datasets must train identically to in-memory ones.

use taxorec::autodiff::{Matrix, Tape};
use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, tsv, Preset, Recommender, Scale, Split};
use taxorec::eval::evaluate;
use taxorec::geometry::{convert, lorentz, poincare};

#[test]
fn tape_conversions_match_geometry_reference() {
    let points = [[0.3, -0.2, 0.1], [0.55, 0.1, -0.4], [0.0, 0.0, 0.0]];
    let mut tape = Tape::new();
    let flat: Vec<f64> = points.iter().flatten().copied().collect();
    let p = tape.leaf(Matrix::from_vec(3, 3, flat));
    let l = tape.poincare_to_lorentz(p);
    let k = tape.poincare_to_klein(p);
    for (r, point) in points.iter().enumerate() {
        let mut l_ref = vec![0.0; 4];
        convert::poincare_to_lorentz(point, &mut l_ref);
        for (a, b) in tape.value(l).row(r).iter().zip(&l_ref) {
            assert!((a - b).abs() < 1e-12);
        }
        let mut k_ref = vec![0.0; 3];
        convert::poincare_to_klein(point, &mut k_ref);
        for (a, b) in tape.value(k).row(r).iter().zip(&k_ref) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn tape_distances_match_geometry_reference() {
    let a = lorentz::from_spatial(&[0.4, -0.3]);
    let b = lorentz::from_spatial(&[-0.2, 0.8]);
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::from_vec(1, 3, a.clone()));
    let y = tape.leaf(Matrix::from_vec(1, 3, b.clone()));
    let d = tape.lorentz_dist_sq(x, y);
    let reference = lorentz::distance(&a, &b).powi(2);
    assert!((tape.value(d).as_scalar() - reference).abs() < 1e-10);

    let pa = [0.2, 0.3];
    let pb = [-0.4, 0.1];
    let px = tape.leaf(Matrix::from_vec(1, 2, pa.to_vec()));
    let py = tape.leaf(Matrix::from_vec(1, 2, pb.to_vec()));
    let pd = tape.poincare_dist(px, py);
    assert!((tape.value(pd).as_scalar() - poincare::distance(&pa, &pb)).abs() < 1e-10);
}

#[test]
fn training_after_tsv_roundtrip_matches_in_memory() {
    let d = generate_preset(Preset::Ciao, Scale::Tiny);
    let dir = std::env::temp_dir().join("taxorec-consistency");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("roundtrip");
    tsv::save(&d, &stem).unwrap();
    let d2 = tsv::load(&stem, &d.name).unwrap();
    // Tag ids may be renumbered, but the interaction structure is
    // identical, so a tag-free model must train to identical scores.
    let cfg = TaxoRecConfig {
        epochs: 6,
        ..TaxoRecConfig::fast_test()
    }
    .hgcf();
    let mut m1 = TaxoRec::new(cfg.clone());
    m1.fit(&d, &Split::standard(&d));
    let mut m2 = TaxoRec::new(cfg);
    m2.fit(&d2, &Split::standard(&d2));
    let s1 = evaluate(&m1, &Split::standard(&d), &[10]).mean_recall(0);
    let s2 = evaluate(&m2, &Split::standard(&d2), &[10]).mean_recall(0);
    assert!((s1 - s2).abs() < 1e-12, "{s1} vs {s2}");
}
