//! Property-based equivalence of the retrieval index and the exhaustive
//! scorer: for ANY catalogue, a beam wide enough to visit every leaf
//! must reproduce the exhaustive ranking bit for bit — same item ids in
//! the same order with `f64::to_bits`-identical scores. This is the
//! contract that lets `--retrieval beam:B` trade recall for latency
//! with a known-safe upper bound, and it holds because routing only
//! *selects* leaves; per-item scoring arithmetic is position-
//! independent in the fused kernels.

use proptest::prelude::*;
use taxorec::geometry::lorentz;
use taxorec::retrieval::{IndexConfig, ItemEmbeddings, TaxoIndex};

/// Flattens proptest-generated spatial points onto the hyperboloid.
fn lift(points: &[Vec<f64>]) -> Vec<f64> {
    points
        .iter()
        .flat_map(|p| lorentz::from_spatial(p))
        .collect()
}

/// Strategy: a catalogue of `size` spatial points of dimension `dim`,
/// each coordinate small enough that the lift stays well-conditioned.
fn catalogue(size: std::ops::Range<usize>, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-0.9f64..0.9, dim), size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_beam_reproduces_exhaustive_ranking_bit_for_bit(
        items in catalogue(24..96, 3),
        anchor in proptest::collection::vec(-0.9f64..0.9, 3),
        max_leaf in 4usize..12,
        branch in 2usize..5,
        k in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let v_ir = lift(&items);
        let emb = ItemEmbeddings { v_ir: &v_ir, ambient_ir: 4, v_tg: None, ambient_tg: 0 };
        let config = IndexConfig { max_leaf, branch, kmeans_iters: 4, seed, ..IndexConfig::default() };
        let item_tags: Vec<Vec<u32>> = vec![Vec::new(); items.len()];
        let index = TaxoIndex::build(&emb, None, &item_tags, &config).unwrap();
        let a = lorentz::from_spatial(&anchor);

        let exact = index.search_exact(&a, None, k, &|_| false);
        let (routed, stats) = index.search(&a, None, index.n_leaves(), k, &|_| false);
        prop_assert_eq!(stats.candidates, items.len());
        prop_assert_eq!(exact.len(), routed.len());
        for (e, r) in exact.iter().zip(&routed) {
            prop_assert_eq!(e.0, r.0);
            prop_assert_eq!(e.1.to_bits(), r.1.to_bits());
        }
    }

    #[test]
    fn full_beam_with_tag_channel_and_exclusions_matches_exhaustive(
        items in catalogue(24..72, 3),
        tags in catalogue(24..72, 2),
        anchor in proptest::collection::vec(-0.9f64..0.9, 3),
        tag_anchor in proptest::collection::vec(-0.9f64..0.9, 2),
        alpha in 0.0f64..2.0,
        stride in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let n = items.len().min(tags.len());
        let v_ir = lift(&items[..n]);
        let v_tg = lift(&tags[..n]);
        let emb = ItemEmbeddings { v_ir: &v_ir, ambient_ir: 4, v_tg: Some(&v_tg), ambient_tg: 3 };
        let config = IndexConfig { max_leaf: 8, branch: 3, kmeans_iters: 4, seed, ..IndexConfig::default() };
        let item_tags: Vec<Vec<u32>> = vec![Vec::new(); n];
        let index = TaxoIndex::build(&emb, None, &item_tags, &config).unwrap();
        let a = lorentz::from_spatial(&anchor);
        let t = lorentz::from_spatial(&tag_anchor);
        let tag = Some((t.as_slice(), alpha));
        let exclude = |i: u32| (i as usize).is_multiple_of(stride);

        let exact = index.search_exact(&a, tag, 10, &exclude);
        let (routed, _) = index.search(&a, tag, index.n_leaves(), 10, &exclude);
        prop_assert_eq!(exact.len(), routed.len());
        for (e, r) in exact.iter().zip(&routed) {
            prop_assert_eq!(e.0, r.0);
            prop_assert_eq!(e.1.to_bits(), r.1.to_bits());
            prop_assert!(!(e.0 as usize).is_multiple_of(stride));
        }
    }

    #[test]
    fn serialized_parts_rebuild_to_an_identical_searcher(
        items in catalogue(24..64, 3),
        anchor in proptest::collection::vec(-0.9f64..0.9, 3),
        seed in 0u64..1_000,
    ) {
        let v_ir = lift(&items);
        let emb = ItemEmbeddings { v_ir: &v_ir, ambient_ir: 4, v_tg: None, ambient_tg: 0 };
        let config = IndexConfig { max_leaf: 8, branch: 3, kmeans_iters: 4, seed, ..IndexConfig::default() };
        let item_tags: Vec<Vec<u32>> = vec![Vec::new(); items.len()];
        let index = TaxoIndex::build(&emb, None, &item_tags, &config).unwrap();
        let rebuilt = TaxoIndex::from_parts(index.parts().clone(), &emb).unwrap();
        let a = lorentz::from_spatial(&anchor);

        let (orig, _) = index.search(&a, None, 0, 10, &|_| false);
        let (re, _) = rebuilt.search(&a, None, 0, 10, &|_| false);
        prop_assert_eq!(orig.len(), re.len());
        for (o, r) in orig.iter().zip(&re) {
            prop_assert_eq!(o.0, r.0);
            prop_assert_eq!(o.1.to_bits(), r.1.to_bits());
        }
    }
}
