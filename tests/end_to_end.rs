//! Cross-crate integration tests: the full pipeline from synthetic data
//! through training to evaluation, exercised end to end at tiny scale.

use taxorec::baselines::{Bprmf, TrainOpts};
use taxorec::core::{TaxoRec, TaxoRecConfig};
use taxorec::data::{generate_preset, Dataset, Preset, Recommender, Scale, Split};
use taxorec::eval::{evaluate, wilcoxon_signed_rank};

/// A popularity scorer used as the sanity floor.
struct Popularity {
    counts: Vec<f64>,
}

impl Recommender for Popularity {
    fn name(&self) -> &str {
        "Popularity"
    }
    fn fit(&mut self, dataset: &Dataset, split: &Split) {
        self.counts = vec![0.0; dataset.n_items];
        for items in &split.train {
            for &v in items {
                self.counts[v as usize] += 1.0;
            }
        }
    }
    fn scores_for_user(&self, _: u32) -> Vec<f64> {
        self.counts.clone()
    }
}

fn fit_and_eval(model: &mut dyn Recommender, d: &Dataset, s: &Split) -> f64 {
    model.fit(d, s);
    evaluate(model, s, &[10]).mean_recall(0)
}

#[test]
fn taxorec_beats_popularity_on_tag_driven_data() {
    // Strongly tag-driven, popularity-flat data: a model that actually
    // uses the interaction/tag structure must beat the popularity floor.
    let mut cfg = taxorec::data::SynthConfig::preset(Preset::Ciao, Scale::Tiny);
    cfg.popularity_skew = 0.0;
    cfg.tag_indifferent_frac = 0.0;
    cfg.tag_affinity = 0.8;
    let d = taxorec::data::generate(&cfg);
    let s = Split::standard(&d);
    let mut pop = Popularity { counts: Vec::new() };
    let pop_recall = fit_and_eval(&mut pop, &d, &s);
    let mut taxo = TaxoRec::new(TaxoRecConfig {
        epochs: 40,
        ..TaxoRecConfig::fast_test()
    });
    let taxo_recall = fit_and_eval(&mut taxo, &d, &s);
    assert!(
        taxo_recall > pop_recall,
        "TaxoRec {taxo_recall:.4} must beat popularity {pop_recall:.4}"
    );
}

#[test]
fn full_lineup_produces_finite_scores() {
    let d = generate_preset(Preset::AmazonCd, Scale::Tiny);
    let s = Split::standard(&d);
    let mut bpr = Bprmf::new(TrainOpts {
        epochs: 10,
        ..TrainOpts::fast_test()
    });
    bpr.fit(&d, &s);
    let e = evaluate(&bpr, &s, &[10, 20]);
    assert!(!e.users.is_empty());
    assert!(
        e.mean_recall(0) <= e.mean_recall(1) + 1e-12,
        "Recall@10 <= Recall@20"
    );
    for u in 0..d.n_users as u32 {
        assert!(bpr.scores_for_user(u).iter().all(|x| x.is_finite()));
    }
}

#[test]
fn taxonomy_joint_training_builds_valid_tree_tied_to_data() {
    let d = generate_preset(Preset::Yelp, Scale::Tiny);
    let s = Split::standard(&d);
    let mut m = TaxoRec::new(TaxoRecConfig {
        epochs: 30,
        ..TaxoRecConfig::fast_test()
    });
    m.fit(&d, &s);
    let taxo = m.taxonomy().expect("taxonomy constructed during fit");
    assert_eq!(taxo.validate(), Ok(()));
    // Every tag of the dataset is in the root scope.
    assert_eq!(taxo.nodes()[0].tags.len(), d.n_tags);
}

#[test]
fn evaluation_is_deterministic_across_identical_runs() {
    let d = generate_preset(Preset::Ciao, Scale::Tiny);
    let s = Split::standard(&d);
    let run = || {
        let mut m = TaxoRec::new(TaxoRecConfig {
            epochs: 8,
            ..TaxoRecConfig::fast_test()
        });
        m.fit(&d, &s);
        evaluate(&m, &s, &[10]).mean_recall(0)
    };
    assert_eq!(run(), run());
}

#[test]
fn wilcoxon_on_real_evaluations_behaves() {
    let d = generate_preset(Preset::Ciao, Scale::Tiny);
    let s = Split::standard(&d);
    let mut pop = Popularity { counts: Vec::new() };
    pop.fit(&d, &s);
    let e = evaluate(&pop, &s, &[10]);
    // Model vs itself: never significant.
    let w = wilcoxon_signed_rank(&e.user_recall(0), &e.user_recall(0));
    assert!(!w.significant(0.05));
}

#[test]
fn alpha_weights_separate_tag_driven_users() {
    // The generator plants tag-indifferent users; Eq. 16's α must, on
    // average, rank tag-driven users above them. We cannot observe the
    // flag directly, but the α distribution must have real spread.
    let d = generate_preset(Preset::AmazonBook, Scale::Tiny);
    let s = Split::standard(&d);
    let alphas = d.alpha_weights(&s.train);
    let mean = alphas.iter().sum::<f64>() / alphas.len() as f64;
    let var = alphas.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / alphas.len() as f64;
    assert!(mean > 0.05 && mean < 1.0, "mean alpha {mean}");
    assert!(var > 1e-4, "alpha variance {var} too small to personalize");
}
