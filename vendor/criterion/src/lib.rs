//! Offline drop-in for the subset of the `criterion` API this workspace
//! uses. Two modes, chosen from the CLI arguments cargo passes:
//!
//! * **bench mode** (`cargo bench` passes `--bench`): warm up, run the
//!   configured number of timed samples, print mean ± spread per benchmark;
//! * **test mode** (`cargo test` runs bench binaries without `--bench`):
//!   execute each benchmark body once, silently — keeping `cargo test -q`
//!   output clean while still compile- and run-checking every bench.
//!
//! No statistical machinery, HTML reports, or plotting: the container
//! cannot reach crates.io, so this crate trades fidelity for zero
//! dependencies while keeping the workspace's bench sources unchanged.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (benches here import the
/// std version directly; the re-export keeps the full criterion path
/// working too).
pub use std::hint::black_box;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Bench,
    Test,
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            mode: Mode::Test,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark in bench mode.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Resolves bench-vs-test mode from the process arguments (cargo
    /// passes `--bench` to bench binaries under `cargo bench`).
    pub fn configure_from_args(mut self) -> Self {
        let bench = std::env::args().any(|a| a == "--bench");
        self.mode = if bench { Mode::Bench } else { Mode::Test };
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        match self.mode {
            Mode::Test => {
                let mut b = Bencher {
                    mode: Mode::Test,
                    samples: Vec::new(),
                };
                f(&mut b);
            }
            Mode::Bench => {
                // Warm-up: run the body until the warm-up budget elapses.
                let warm_start = Instant::now();
                while warm_start.elapsed() < self.warm_up_time {
                    let mut b = Bencher {
                        mode: Mode::Test,
                        samples: Vec::new(),
                    };
                    f(&mut b);
                }
                let mut b = Bencher {
                    mode: Mode::Bench,
                    samples: Vec::with_capacity(self.sample_size),
                };
                let budget_per_sample = self.measurement_time / self.sample_size as u32;
                let start = Instant::now();
                for _ in 0..self.sample_size {
                    f(&mut b);
                    if start.elapsed() > self.measurement_time {
                        break;
                    }
                }
                let _ = budget_per_sample;
                report(name, &b.samples);
            }
        }
        self
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<48} mean {:>12}  min {:>12}  max {:>12}  ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`. In test mode runs it exactly once; in bench mode records
    /// one sample (mean ns/iteration over an adaptive batch).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            Mode::Test => {
                black_box(f());
            }
            Mode::Bench => {
                // Calibrate a batch so one sample takes ≳200µs.
                let probe = Instant::now();
                black_box(f());
                let once = probe.elapsed().as_nanos().max(1) as f64;
                let batch = (200_000.0 / once).clamp(1.0, 1e6) as u64;
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                let per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
                self.samples.push(per_iter);
            }
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        c.mode = Mode::Bench;
        let mut b = Bencher {
            mode: Mode::Bench,
            samples: Vec::new(),
        };
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), 1);
        assert!(b.samples[0] >= 0.0);
        let _ = &mut c;
    }

    #[test]
    fn group_macro_compiles() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = sample_bench
        }
        benches();
    }
}
