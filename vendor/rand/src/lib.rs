//! Offline drop-in for the subset of the `rand` crate API this workspace
//! uses. The build container has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free implementation with the
//! same surface: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`RngExt`] sampling methods, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a fixed seed, which is all the reproduction harness relies on
//! (fixed-seed experiments, not cryptography).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's "standard" distribution
/// (the `rng.random::<T>()` family).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Item;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Item;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Item = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Item = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span as u64) as $t
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, u16, u8);

macro_rules! signed_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Item = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

signed_range_impl!(isize, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Item = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// The ergonomic sampling methods (`random`, `random_range`, …), blanket
/// implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Item {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring it
        /// with [`StdRng::from_state`] resumes the stream bit-exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which xoshiro cannot leave.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "the all-zero state is not a valid xoshiro256++ state"
            );
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state; the
            // all-zero state is unreachable this way.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{RngCore, RngExt};

    /// Random reordering / selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(5usize..=6);
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
