//! Offline drop-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro, range / tuple / collection strategies,
//! `prop_map`, and the `prop_assert*` family.
//!
//! Each generated test runs `ProptestConfig::cases` random cases from a
//! seed derived from the test name, so failures are reproducible. There is
//! **no shrinking**: a failing case reports its inputs via the panic
//! message instead of minimizing them. That trade keeps the vendored crate
//! dependency-free (the container cannot reach crates.io).

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, i64, i32, isize, f64);

    impl Strategy for core::ops::RangeInclusive<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Constant strategy (`Just(v)` always yields clones of `v`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    );
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and the RNG used by generated cases.

    pub use rand::rngs::StdRng as TestRng;
    pub use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Fails the current case (recorded, then reported via panic) when `cond`
/// is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return Err(format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "prop_assert_eq failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Skips the current case (counted as passing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::test_runner::SeedableRng as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed from the test name.
            let mut seed: u64 = 0xcbf29ce484222325;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
            }
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                    seed.wrapping_add((case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(msg) = result {
                    panic!("proptest case {case}/{} failed: {msg}\n  inputs: {inputs}", config.cases);
                }
            }
        }
    )*};
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(-1.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(
            y in (0.0f64..1.0, 1.0f64..2.0).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((1.0..3.0).contains(&y), "y = {y}");
        }

        #[test]
        fn assume_skips_without_failing(k in 0usize..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "prop_assert failed")]
    #[allow(unnameable_test_items)]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0);
            }
        }
        inner();
    }
}
