//! Prometheus text exposition (format version 0.0.4) rendered from the
//! in-process registry, plus a strict-enough validator used by the
//! `promcheck` CI binary and the integration tests.
//!
//! ## Name mapping
//!
//! Registry names are dotted (`serve.cache.hit`); Prometheus names are
//! underscored with a `taxorec_` prefix (`taxorec_serve_cache_hit_total`
//! — counters gain the conventional `_total` suffix). Histograms render
//! as **summaries**: `p50`/`p90`/`p99` quantile samples derived from the
//! cumulative log-bucket counts (see [`crate::registry::Histogram::quantile`])
//! plus `_sum` and `_count`.
//!
//! ## Per-endpoint RED labels
//!
//! Four-segment serve metrics of the shape `serve.http.<endpoint>.requests`
//! / `.errors` / `.ms` are folded into three **labeled families** —
//! `taxorec_serve_http_endpoint_requests_total{endpoint="recommend"}` and
//! friends — so rate, errors, and duration slice per endpoint instead of
//! multiplying metric names. The pre-existing flat totals
//! (`serve.http.requests` etc.) keep their unlabeled names.
//!
//! Process stats (RSS, threads, open fds) are read live from
//! `/proc/self` on Linux and omitted elsewhere.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::registry::{self, Histogram};

/// Content-Type for the rendered exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

const QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Mangles a dotted registry name into a Prometheus metric name:
/// `serve.cache.hit` → `taxorec_serve_cache_hit`.
pub fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("taxorec_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Splits a 4-segment `serve.http.<endpoint>.<leaf>` name into
/// `(endpoint, leaf)` when `leaf` is one of the RED leaves.
fn red_split(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix("serve.http.")?;
    let (endpoint, leaf) = rest.split_once('.')?;
    if endpoint.is_empty() || leaf.is_empty() || leaf.contains('.') {
        return None;
    }
    matches!(leaf, "requests" | "errors" | "ms").then_some((endpoint, leaf))
}

fn push_f64_prom(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn push_summary(out: &mut String, fam: &str, labels: &str, h: &Histogram) {
    for q in QUANTILES {
        out.push_str(fam);
        out.push('{');
        out.push_str(labels);
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "quantile=\"{q}\"");
        out.push_str("} ");
        push_f64_prom(out, h.quantile(q));
        out.push('\n');
    }
    out.push_str(fam);
    out.push_str("_sum");
    if !labels.is_empty() {
        let _ = write!(out, "{{{labels}}}");
    }
    out.push(' ');
    push_f64_prom(out, h.sum());
    out.push('\n');
    out.push_str(fam);
    out.push_str("_count");
    if !labels.is_empty() {
        let _ = write!(out, "{{{labels}}}");
    }
    let _ = writeln!(out, " {}", h.count());
}

/// Renders the whole registry (plus `/proc/self` process stats) as
/// Prometheus text exposition 0.0.4.
pub fn render() -> String {
    let mut out = String::with_capacity(4096);

    // Counters: flat ones one per family; RED `serve.http.<ep>.requests`
    // and `.errors` grouped into two labeled families.
    let mut red_requests: Vec<(String, u64)> = Vec::new();
    let mut red_errors: Vec<(String, u64)> = Vec::new();
    for c in registry::counters() {
        match red_split(c.name()) {
            Some((ep, "requests")) => red_requests.push((ep.to_string(), c.get())),
            Some((ep, "errors")) => red_errors.push((ep.to_string(), c.get())),
            _ => {
                let fam = format!("{}_total", mangle(c.name()));
                push_header(&mut out, &fam, c.name(), "counter");
                let _ = writeln!(out, "{fam} {}", c.get());
            }
        }
    }
    for (fam, help, samples) in [
        (
            "taxorec_serve_http_endpoint_requests_total",
            "requests served, by endpoint",
            &red_requests,
        ),
        (
            "taxorec_serve_http_endpoint_errors_total",
            "error responses (status >= 400), by endpoint",
            &red_errors,
        ),
    ] {
        if samples.is_empty() {
            continue;
        }
        push_header(&mut out, fam, help, "counter");
        for (ep, v) in samples {
            let _ = writeln!(out, "{fam}{{endpoint=\"{ep}\"}} {v}");
        }
    }

    // Gauges: skip never-set (NaN) ones — a NaN gauge sample is noise.
    for g in registry::gauges() {
        let v = g.get();
        if v.is_nan() {
            continue;
        }
        let fam = mangle(g.name());
        push_header(&mut out, &fam, g.name(), "gauge");
        out.push_str(&fam);
        out.push(' ');
        push_f64_prom(&mut out, v);
        out.push('\n');
    }

    // Histograms as summaries; RED `serve.http.<ep>.ms` grouped into one
    // labeled duration family.
    let mut red_ms: Vec<(String, Arc<Histogram>)> = Vec::new();
    for h in registry::histograms() {
        if let Some((ep, "ms")) = red_split(h.name()) {
            red_ms.push((ep.to_string(), h));
            continue;
        }
        let fam = mangle(h.name());
        push_header(&mut out, &fam, h.name(), "summary");
        push_summary(&mut out, &fam, "", &h);
    }
    if !red_ms.is_empty() {
        let fam = "taxorec_serve_http_endpoint_duration_ms";
        push_header(
            &mut out,
            fam,
            "request duration in ms, by endpoint",
            "summary",
        );
        for (ep, h) in &red_ms {
            push_summary(&mut out, fam, &format!("endpoint=\"{ep}\""), h);
        }
    }

    push_process_stats(&mut out);
    out
}

/// Appends `/proc/self`-derived process gauges (Linux only; silently
/// omitted when the files are unreadable).
fn push_process_stats(out: &mut String) {
    if let Some(rss) = proc_rss_bytes() {
        push_header(
            out,
            "taxorec_process_resident_memory_bytes",
            "resident set size from /proc/self/statm",
            "gauge",
        );
        let _ = writeln!(out, "taxorec_process_resident_memory_bytes {rss}");
    }
    if let Some(threads) = proc_threads() {
        push_header(
            out,
            "taxorec_process_threads",
            "thread count from /proc/self/status",
            "gauge",
        );
        let _ = writeln!(out, "taxorec_process_threads {threads}");
    }
    if let Some(fds) = proc_open_fds() {
        push_header(
            out,
            "taxorec_process_open_fds",
            "open file descriptors from /proc/self/fd",
            "gauge",
        );
        let _ = writeln!(out, "taxorec_process_open_fds {fds}");
    }
}

fn proc_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

fn proc_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn proc_open_fds() -> Option<u64> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count() as u64)
}

/// Validates `text` against the 0.0.4 exposition grammar (the subset we
/// emit): `# HELP`/`# TYPE` lines with known types, sample lines of the
/// shape `name[{labels}] value`, every sample preceded by a matching
/// `# TYPE`, metric names `[a-zA-Z_:][a-zA-Z0-9_:]*`, label values
/// quoted. Returns the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: bad HELP metric name {name:?}"));
                    }
                }
                "TYPE" => {
                    let ty = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: bad TYPE metric name {name:?}"));
                    }
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown TYPE {ty:?}"));
                    }
                    if types.insert(name.to_string(), ty.to_string()).is_some() {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                _ => return Err(format!("line {n}: unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without value: {line:?}"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf") {
            return Err(format!("line {n}: unparseable sample value {value:?}"));
        }
        let name = match name_and_labels.split_once('{') {
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unclosed label braces: {line:?}"))?;
                for pair in split_labels(labels) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {n}: label without '=': {pair:?}"))?;
                    if !valid_metric_name(k) {
                        return Err(format!("line {n}: bad label name {k:?}"));
                    }
                    if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                        return Err(format!("line {n}: unquoted label value {v:?}"));
                    }
                }
                name
            }
            None => name_and_labels,
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad sample metric name {name:?}"));
        }
        // A summary's quantile/_sum/_count samples share the family TYPE.
        let family = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.contains_key(*f) && !types.contains_key(name))
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(format!("line {n}: sample {name} has no preceding # TYPE"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples found".to_string());
    }
    Ok(())
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `a="b",c="d"` on commas outside quotes.
fn split_labels(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let bytes = labels.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_quotes = !in_quotes,
            b',' if !in_quotes => {
                out.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangling_prefixes_and_underscores() {
        assert_eq!(mangle("serve.cache.hit"), "taxorec_serve_cache_hit");
        assert_eq!(mangle("train.epoch.ms"), "taxorec_train_epoch_ms");
    }

    #[test]
    fn red_split_only_matches_four_segment_serve_names() {
        assert_eq!(
            red_split("serve.http.recommend.requests"),
            Some(("recommend", "requests"))
        );
        assert_eq!(
            red_split("serve.http.recommend.ms"),
            Some(("recommend", "ms"))
        );
        assert_eq!(
            red_split("serve.http.requests"),
            None,
            "flat name untouched"
        );
        assert_eq!(red_split("serve.cache.hit"), None);
        assert_eq!(red_split("serve.http.a.b.ms"), None, "too many segments");
    }

    #[test]
    fn rendered_exposition_validates_and_carries_red_labels() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        registry::counter("test.prom.flat").inc(3);
        registry::counter("serve.http.recommend.requests").inc(7);
        registry::counter("serve.http.recommend.errors").inc(1);
        registry::gauge("test.prom.gauge").set(2.5);
        let h = registry::histogram("serve.http.recommend.ms");
        for v in [0.5, 1.0, 2.0, 40.0] {
            h.observe(v);
        }
        let text = render();
        validate(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("taxorec_test_prom_flat_total 3"));
        assert!(
            text.contains("taxorec_serve_http_endpoint_requests_total{endpoint=\"recommend\"} 7")
        );
        assert!(text.contains("taxorec_serve_http_endpoint_errors_total{endpoint=\"recommend\"} 1"));
        assert!(text.contains(
            "taxorec_serve_http_endpoint_duration_ms{endpoint=\"recommend\",quantile=\"0.5\"}"
        ));
        assert!(text
            .contains("taxorec_serve_http_endpoint_duration_ms_count{endpoint=\"recommend\"} 4"));
        assert!(text.contains("taxorec_test_prom_gauge 2.5"));
        #[cfg(target_os = "linux")]
        assert!(text.contains("taxorec_process_resident_memory_bytes"));
    }

    #[test]
    fn never_set_gauges_are_omitted() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        registry::gauge("test.prom.nan.gauge");
        let text = render();
        assert!(!text.contains("taxorec_test_prom_nan_gauge"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate("").is_err(), "empty");
        assert!(validate("# TYPE x counter\nx 1\n").is_ok());
        assert!(validate("x 1\n").is_err(), "sample without TYPE");
        assert!(validate("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate("# TYPE x widget\nx 1\n").is_err(), "unknown type");
        assert!(
            validate("# TYPE x summary\nx{quantile=0.5} 1\nx_count 1\n").is_err(),
            "unquoted label value"
        );
        assert!(
            validate("# TYPE x summary\nx{quantile=\"0.5\"} 1\nx_sum 2\nx_count 1\n").is_ok(),
            "summary _sum/_count inherit the family type"
        );
        assert!(
            validate("# TYPE 9bad counter\n9bad 1\n").is_err(),
            "bad name"
        );
    }
}
