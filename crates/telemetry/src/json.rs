//! Serde-free JSON emission and a minimal validity checker.
//!
//! The telemetry crate must not pull external dependencies (the build
//! container is offline), so JSON is assembled by hand through these
//! helpers and checked in tests with a small recursive-descent parser.

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Non-finite values (not representable in
/// JSON) are encoded as strings: `"NaN"`, `"inf"`, `"-inf"` — keeping the
/// document parseable while preserving the signal that a value went bad.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Validates that `s` is one complete JSON value (object, array, string,
/// number, or literal). Used by tests to assert emitted lines are valid
/// JSON without a parsing dependency.
pub fn is_valid_json(s: &str) -> bool {
    let b = s.as_bytes();
    let mut pos = 0usize;
    if !parse_value(b, &mut pos) {
        return false;
    }
    skip_ws(b, &mut pos);
    pos == b.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return false;
                        }
                        *pos += 5;
                    }
                    _ => return false,
                }
            }
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    *pos > start
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_validator() {
        let mut out = String::from("{");
        push_str_escaped(&mut out, "key\"with\\weird\nchars\u{1}");
        out.push(':');
        push_f64(&mut out, 1.25);
        out.push('}');
        assert!(is_valid_json(&out), "{out}");
    }

    #[test]
    fn numbers_format_compactly() {
        let mut s = String::new();
        push_f64(&mut s, 3.0);
        assert_eq!(s, "3");
        s.clear();
        push_f64(&mut s, 0.5);
        assert_eq!(s, "0.5");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "\"NaN\"");
        s.clear();
        push_f64(&mut s, f64::NEG_INFINITY);
        assert_eq!(s, "\"-inf\"");
    }

    #[test]
    fn validator_accepts_typical_documents() {
        for ok in [
            "{}",
            "[]",
            "{\"a\": [1, 2.5, -3e-2], \"b\": {\"c\": null}, \"d\": \"x\\ny\"}",
            "  {\"nested\": [{\"deep\": true}]} ",
            "-0.25",
            "\"plain\"",
        ] {
            assert!(is_valid_json(ok), "{ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "01x",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{'single':1}",
        ] {
            assert!(!is_valid_json(bad), "{bad}");
        }
    }
}
