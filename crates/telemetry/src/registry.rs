//! The global metric registry: counters, gauges, and fixed-bucket
//! histograms, all updated lock-free through `AtomicU64` (floats stored as
//! bit patterns). Registration takes a short mutex; hot paths hold `Arc`
//! handles (see the [`crate::span!`] macro, which caches per call site) so
//! steady-state recording never touches the registry lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json;
use crate::sink;

/// Number of histogram buckets (log₁₀ thirds spanning `1e-9 ..= 1e12`).
pub const N_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    pub fn inc(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A last-value-wins float measurement.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Records `v` (and emits a JSONL event when the metrics sink is on).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        sink::emit_metric("gauge", &self.name, v, &[]);
    }

    /// Last recorded value (`NaN` before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A fixed-bucket histogram over positive values (latencies, iteration
/// counts, norms). Buckets are logarithmic: three per decade from `1e-9`
/// up; values `≤ 1e-9` land in the first bucket, values `≥ 1e12` in the
/// last. Tracks count/sum/min/max exactly.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Upper bound (inclusive) of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> f64 {
    10f64.powf((i as f64 + 1.0 - 27.0) / 3.0)
}

/// Bucket index for value `v`.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let idx = (v.log10() * 3.0).floor() + 27.0;
    idx.clamp(0.0, (N_BUCKETS - 1) as f64) as usize
}

impl Histogram {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation (and emits a JSONL event when the metrics
    /// sink is on). Non-finite observations count into the first bucket
    /// but are excluded from sum/min/max.
    pub fn observe(&self, v: f64) {
        let idx = if v.is_finite() { bucket_index(v) } else { 0 };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            atomic_f64_add(&self.sum_bits, v);
            atomic_f64_min(&self.min_bits, v);
            atomic_f64_max(&self.max_bits, v);
        }
        sink::emit_metric("histogram", &self.name, v, &[]);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of finite observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest finite observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest finite observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the cumulative bucket
    /// counts: the upper bound of the first bucket whose cumulative count
    /// reaches `q · total`, clamped to the exact observed `[min, max]`
    /// range so the log-bucket granularity never reports a value outside
    /// what was actually seen. `NaN` when no finite value was observed.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = (0..N_BUCKETS).map(|i| self.bucket_count(i)).sum();
        if total == 0 || !self.max().is_finite() {
            return f64::NAN;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for i in 0..N_BUCKETS {
            cum += self.bucket_count(i);
            if cum >= rank {
                return bucket_upper_bound(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_min(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_max(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter named `name`, created on first use.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry().counters.lock().unwrap();
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new(name))),
    )
}

/// The gauge named `name`, created on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = registry().gauges.lock().unwrap();
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new(name))),
    )
}

/// The histogram named `name`, created on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().unwrap();
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(name))),
    )
}

/// All registered counters, sorted by name (for exposition renderers).
pub fn counters() -> Vec<Arc<Counter>> {
    let map = registry().counters.lock().unwrap();
    let mut v: Vec<Arc<Counter>> = map.values().map(Arc::clone).collect();
    v.sort_by(|a, b| a.name().cmp(b.name()));
    v
}

/// All registered gauges, sorted by name.
pub fn gauges() -> Vec<Arc<Gauge>> {
    let map = registry().gauges.lock().unwrap();
    let mut v: Vec<Arc<Gauge>> = map.values().map(Arc::clone).collect();
    v.sort_by(|a, b| a.name().cmp(b.name()));
    v
}

/// All registered histograms, sorted by name.
pub fn histograms() -> Vec<Arc<Histogram>> {
    let map = registry().histograms.lock().unwrap();
    let mut v: Vec<Arc<Histogram>> = map.values().map(Arc::clone).collect();
    v.sort_by(|a, b| a.name().cmp(b.name()));
    v
}

/// Zeroes every registered metric without invalidating held handles
/// (cached `Arc`s — e.g. the per-call-site span statics — stay live).
pub fn reset() {
    for c in registry().counters.lock().unwrap().values() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in registry().gauges.lock().unwrap().values() {
        g.bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
    }
    for h in registry().histograms.lock().unwrap().values() {
        h.reset();
    }
}

/// Serializes every registered metric to one JSON object (serde-free):
///
/// ```json
/// {"counters": {..}, "gauges": {..},
///  "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,"mean":..,
///                          "buckets": [[upper_bound, count], ..]}}}
/// ```
///
/// Histogram buckets list only non-empty buckets as `[upper_bound, count]`
/// pairs. Keys are sorted so snapshots diff cleanly across runs.
pub fn snapshot() -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"counters\":{");
    {
        let map = registry().counters.lock().unwrap();
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_escaped(&mut out, name);
            out.push(':');
            out.push_str(&map[*name].get().to_string());
        }
    }
    out.push_str("},\"gauges\":{");
    {
        let map = registry().gauges.lock().unwrap();
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_escaped(&mut out, name);
            out.push(':');
            json::push_f64(&mut out, map[*name].get());
        }
    }
    out.push_str("},\"histograms\":{");
    {
        let map = registry().histograms.lock().unwrap();
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = &map[*name];
            json::push_str_escaped(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count().to_string());
            out.push_str(",\"sum\":");
            json::push_f64(&mut out, h.sum());
            out.push_str(",\"min\":");
            json::push_f64(&mut out, h.min());
            out.push_str(",\"max\":");
            json::push_f64(&mut out, h.max());
            out.push_str(",\"mean\":");
            json::push_f64(&mut out, h.mean());
            out.push_str(",\"buckets\":[");
            let mut first = true;
            for b in 0..N_BUCKETS {
                let c = h.bucket_count(b);
                if c > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push('[');
                    json::push_f64(&mut out, bucket_upper_bound(b));
                    out.push(',');
                    out.push_str(&c.to_string());
                    out.push(']');
                }
            }
            out.push_str("]}");
        }
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_covers_scales() {
        for i in 1..N_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
        // Values land in buckets whose bounds bracket them.
        for v in [1e-9, 1e-6, 3e-4, 0.02, 0.5, 1.0, 7.0, 120.0, 9e4, 1e11] {
            let i = bucket_index(v);
            assert!(
                v <= bucket_upper_bound(i) * (1.0 + 1e-12),
                "v={v} over bound of bucket {i}"
            );
            if i > 0 {
                assert!(
                    v > bucket_upper_bound(i - 1) * (1.0 - 1e-12),
                    "v={v} should be above bucket {}",
                    i - 1
                );
            }
        }
        // Degenerate values are absorbed, not dropped.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(1e30), N_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_exact_stats() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let h = Histogram::new("test.h");
        for v in [0.5, 1.5, 2.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 4.0).abs() < 1e-12);
        assert!((h.mean() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 2.0);
        let total: u64 = (0..N_BUCKETS).map(|i| h.bucket_count(i)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn nonfinite_observations_do_not_poison_sum() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let h = Histogram::new("test.nan");
        h.observe(1.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert!(
            (h.sum() - 1.0).abs() < 1e-12,
            "sum stays finite: {}",
            h.sum()
        );
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn quantiles_come_from_cumulative_buckets_clamped_to_range() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let h = Histogram::new("test.quantile");
        assert!(h.quantile(0.5).is_nan(), "empty histogram has no quantile");
        for _ in 0..90 {
            h.observe(0.001);
        }
        for _ in 0..10 {
            h.observe(10.0);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(
            (1e-4..=1e-2).contains(&p50),
            "p50 in the small-value decade: {p50}"
        );
        // p99 falls in the tail bucket but is clamped to the observed max.
        assert!(p99 <= 10.0 + 1e-12 && p99 > 1.0, "p99={p99}");
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max() + 1e-12);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        // Private Counter::new keeps this off the global registry, so a
        // concurrent reset() in another test cannot perturb the total.
        let c = Arc::new(Counter::new("test.concurrent"));
        const THREADS: usize = 8;
        const INCS: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..INCS {
                        c.inc(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * INCS);
    }

    #[test]
    fn snapshot_is_valid_json() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        counter("test.snapshot.counter").inc(2);
        gauge("test.snapshot.gauge").set(0.75);
        histogram("test.snapshot.hist").observe(0.01);
        let s = snapshot();
        assert!(crate::json::is_valid_json(&s), "{s}");
        assert!(s.contains("\"test.snapshot.counter\":"));
        assert!(s.contains("\"test.snapshot.gauge\":"));
        assert!(s.contains("\"test.snapshot.hist\":"));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let c = counter("test.reset.counter");
        let h = histogram("test.reset.hist");
        c.inc(5);
        h.observe(1.0);
        reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // The same handles keep working post-reset.
        c.inc(1);
        h.observe(2.0);
        assert_eq!(counter("test.reset.counter").get(), 1);
        assert_eq!(histogram("test.reset.hist").count(), 1);
    }
}
