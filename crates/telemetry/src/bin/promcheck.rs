//! `promcheck` — validates Prometheus text exposition 0.0.4 read from
//! stdin (or a file argument) against the grammar in
//! [`taxorec_telemetry::prometheus::validate`]. CI pipes the live
//! `/metrics` scrape through it:
//!
//! ```text
//! curl -sf http://127.0.0.1:7979/metrics | promcheck
//! promcheck scrape.txt
//! ```
//!
//! Exits 0 and prints a one-line sample count on success; exits 1 with
//! the first violation on failure.

use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.as_slice() {
        [] => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promcheck: cannot read stdin: {e}");
                std::process::exit(1);
            }
            buf
        }
        [path] => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("promcheck: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        _ => {
            eprintln!("usage: promcheck [file]   (reads stdin when no file is given)");
            std::process::exit(2);
        }
    };
    match taxorec_telemetry::prometheus::validate(&text) {
        Ok(()) => {
            let samples = text
                .lines()
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .count();
            println!("promcheck: OK ({samples} samples)");
        }
        Err(e) => {
            eprintln!("promcheck: INVALID: {e}");
            std::process::exit(1);
        }
    }
}
