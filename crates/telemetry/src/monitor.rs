//! Training-health monitoring for the epoch loop: per-epoch loss,
//! gradient norm, boundary proximity (max ‖x‖ in the Poincaré ball),
//! NaN/Inf detection with configurable fail-fast, and taxonomy-rebuild
//! statistics. The monitor both keeps an in-memory record (for tests and
//! post-hoc inspection) and feeds the global registry / JSONL sink under
//! the `train.*` metric names.

use std::sync::Arc;
use std::time::Instant;

use crate::registry::{self, Counter, Gauge, Histogram};
use crate::sink::{self, Attr};

/// Statistics of one taxonomy reconstruction (Algorithm 1 invocation).
#[derive(Clone, Debug)]
pub struct RebuildStats {
    /// Nodes in the constructed tree.
    pub nodes: usize,
    /// Tree depth (root = 0).
    pub depth: usize,
    /// Fraction of tags whose residence group changed vs. the previous
    /// taxonomy (1.0 for the first build).
    pub moved_frac: f64,
    /// Wall time of the reconstruction in seconds.
    pub duration_secs: f64,
}

/// Everything recorded about one training epoch.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean loss over the epoch's healthy batches.
    pub mean_loss: f64,
    /// Mean per-batch gradient norm (Frobenius, over all parameters).
    pub mean_grad_norm: f64,
    /// Max Poincaré-ball norm across tag embeddings at epoch end
    /// (distance to the ball boundary is `1 − this`).
    pub boundary_max_norm: f64,
    /// Healthy batches this epoch.
    pub n_batches: usize,
    /// Batches skipped because their loss or gradient went NaN/Inf.
    pub nan_batches: usize,
    /// Wall time of the epoch in seconds.
    pub duration_secs: f64,
    /// Seconds spent in neighbour aggregation (forward passes).
    pub aggregation_secs: f64,
    /// Seconds spent in loss scoring and backward passes.
    pub scoring_secs: f64,
    /// Seconds spent in Riemannian parameter updates.
    pub update_secs: f64,
    /// Taxonomy rebuild this epoch, if one happened.
    pub rebuild: Option<RebuildStats>,
}

/// Epoch-loop instrumentation hook. Create one per `fit`, then per epoch:
/// [`begin_epoch`](Self::begin_epoch) → `observe_batch` for every batch →
/// optional `observe_boundary` / `observe_rebuild` → [`end_epoch`](Self::end_epoch).
#[derive(Debug)]
pub struct TrainingMonitor {
    run: String,
    fail_fast: bool,
    records: Vec<EpochRecord>,
    // Current-epoch accumulators.
    epoch: usize,
    started: Option<Instant>,
    loss_sum: f64,
    grad_norm_sum: f64,
    n_batches: usize,
    nan_batches: usize,
    boundary_max_norm: f64,
    aggregation_secs: f64,
    scoring_secs: f64,
    update_secs: f64,
    rebuild: Option<RebuildStats>,
    // Cached metric handles (no registry lock on the hot path).
    g_loss: Arc<Gauge>,
    g_grad: Arc<Gauge>,
    g_boundary: Arc<Gauge>,
    h_epoch: Arc<Histogram>,
    h_aggregation: Arc<Histogram>,
    h_scoring: Arc<Histogram>,
    h_update: Arc<Histogram>,
    c_nan: Arc<Counter>,
    c_epochs: Arc<Counter>,
}

impl TrainingMonitor {
    /// Creates a monitor for the run labelled `run` (model name). Fail-fast
    /// on NaN defaults to the `TAXOREC_FAIL_FAST` environment variable
    /// (`1`/`true` → abort on the first bad batch) and can be overridden
    /// with [`with_fail_fast`](Self::with_fail_fast).
    pub fn new(run: &str) -> Self {
        let fail_fast = matches!(
            std::env::var("TAXOREC_FAIL_FAST").as_deref(),
            Ok("1") | Ok("true") | Ok("TRUE")
        );
        Self {
            run: run.to_string(),
            fail_fast,
            records: Vec::new(),
            epoch: 0,
            started: None,
            loss_sum: 0.0,
            grad_norm_sum: 0.0,
            n_batches: 0,
            nan_batches: 0,
            boundary_max_norm: 0.0,
            aggregation_secs: 0.0,
            scoring_secs: 0.0,
            update_secs: 0.0,
            rebuild: None,
            g_loss: registry::gauge("train.epoch.loss"),
            g_grad: registry::gauge("train.grad_norm"),
            g_boundary: registry::gauge("train.boundary_max_norm"),
            h_epoch: registry::histogram("train.epoch.duration"),
            h_aggregation: registry::histogram("train.stage.aggregation.duration"),
            h_scoring: registry::histogram("train.stage.scoring.duration"),
            h_update: registry::histogram("train.stage.update.duration"),
            c_nan: registry::counter("train.nan_batches"),
            c_epochs: registry::counter("train.epochs"),
        }
    }

    /// Sets NaN/Inf fail-fast behaviour explicitly.
    pub fn with_fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast = fail_fast;
        self
    }

    /// Whether a non-finite batch aborts training.
    pub fn fail_fast(&self) -> bool {
        self.fail_fast
    }

    /// Starts accumulating epoch `epoch`.
    pub fn begin_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
        self.started = Some(Instant::now());
        self.loss_sum = 0.0;
        self.grad_norm_sum = 0.0;
        self.n_batches = 0;
        self.nan_batches = 0;
        self.boundary_max_norm = 0.0;
        self.aggregation_secs = 0.0;
        self.scoring_secs = 0.0;
        self.update_secs = 0.0;
        self.rebuild = None;
    }

    /// Records one batch. Returns `true` when the batch is healthy; `false`
    /// means the loss or gradient was NaN/Inf — the caller should skip the
    /// parameter update (the batch is counted under `train.nan_batches`
    /// and a warning goes through the sink).
    ///
    /// # Panics
    /// Panics on a non-finite batch when fail-fast is enabled.
    pub fn observe_batch(&mut self, loss: f64, grad_norm: f64) -> bool {
        if !loss.is_finite() || !grad_norm.is_finite() {
            self.nan_batches += 1;
            self.c_nan.inc(1);
            let msg = format!(
                "non-finite batch in run {} epoch {}: loss={loss} grad_norm={grad_norm}",
                self.run, self.epoch
            );
            if self.fail_fast {
                panic!("taxorec fail-fast: {msg}");
            }
            sink::warn(&format!("{msg} — skipping parameter update"));
            return false;
        }
        self.loss_sum += loss;
        self.grad_norm_sum += grad_norm;
        self.n_batches += 1;
        true
    }

    /// Records the boundary proximity of the tag embeddings (max row norm
    /// in the Poincaré ball) for the current epoch.
    pub fn observe_boundary(&mut self, max_norm: f64) {
        self.boundary_max_norm = max_norm;
    }

    /// Records a taxonomy rebuild that happened during the current epoch.
    pub fn observe_rebuild(&mut self, stats: RebuildStats) {
        self.rebuild = Some(stats);
    }

    /// Accumulates the current epoch's stage breakdown (seconds spent in
    /// neighbour aggregation, loss scoring/backward, and parameter
    /// update). Call once per epoch or repeatedly per batch — the values
    /// add up until `end_epoch` publishes them.
    pub fn observe_stages(&mut self, aggregation_secs: f64, scoring_secs: f64, update_secs: f64) {
        self.aggregation_secs += aggregation_secs;
        self.scoring_secs += scoring_secs;
        self.update_secs += update_secs;
    }

    /// Closes the current epoch: computes means, stores the record, and
    /// publishes `train.*` metrics (one JSONL event per gauge when the
    /// metrics sink is on).
    pub fn end_epoch(&mut self) -> &EpochRecord {
        let duration_secs = self
            .started
            .take()
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        let n = self.n_batches.max(1) as f64;
        let record = EpochRecord {
            epoch: self.epoch,
            mean_loss: self.loss_sum / n,
            mean_grad_norm: self.grad_norm_sum / n,
            boundary_max_norm: self.boundary_max_norm,
            n_batches: self.n_batches,
            nan_batches: self.nan_batches,
            duration_secs,
            aggregation_secs: self.aggregation_secs,
            scoring_secs: self.scoring_secs,
            update_secs: self.update_secs,
            rebuild: self.rebuild.take(),
        };
        self.g_loss.set(record.mean_loss);
        self.g_grad.set(record.mean_grad_norm);
        self.g_boundary.set(record.boundary_max_norm);
        self.h_epoch.observe(duration_secs);
        if record.aggregation_secs + record.scoring_secs + record.update_secs > 0.0 {
            self.h_aggregation.observe(record.aggregation_secs);
            self.h_scoring.observe(record.scoring_secs);
            self.h_update.observe(record.update_secs);
        }
        self.c_epochs.inc(1);
        if let Some(r) = &record.rebuild {
            sink::emit_metric(
                "event",
                "taxo.rebuild.stats",
                r.duration_secs,
                &[
                    ("nodes", Attr::I(r.nodes as i64)),
                    ("depth", Attr::I(r.depth as i64)),
                    ("moved_frac", Attr::F(r.moved_frac)),
                    ("epoch", Attr::I(record.epoch as i64)),
                ],
            );
        }
        sink::info(&format!(
            "epoch {:>3} [{}] loss {:.5} grad {:.4} boundary {:.4} batches {} ({} skipped) {:.2}s",
            record.epoch,
            self.run,
            record.mean_loss,
            record.mean_grad_norm,
            record.boundary_max_norm,
            record.n_batches,
            record.nan_batches,
            record.duration_secs,
        ));
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// All completed epoch records.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The run label this monitor was created with.
    pub fn run(&self) -> &str {
        &self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_epochs_accumulate_means() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let mut m = TrainingMonitor::new("test").with_fail_fast(false);
        m.begin_epoch(0);
        assert!(m.observe_batch(2.0, 1.0));
        assert!(m.observe_batch(4.0, 3.0));
        m.observe_boundary(0.8);
        let r = m.end_epoch().clone();
        assert_eq!(r.epoch, 0);
        assert!((r.mean_loss - 3.0).abs() < 1e-12);
        assert!((r.mean_grad_norm - 2.0).abs() < 1e-12);
        assert_eq!(r.boundary_max_norm, 0.8);
        assert_eq!(r.n_batches, 2);
        assert_eq!(r.nan_batches, 0);
        assert!(r.duration_secs >= 0.0);
    }

    #[test]
    fn nan_batches_are_skipped_and_counted() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let mut m = TrainingMonitor::new("test").with_fail_fast(false);
        m.begin_epoch(0);
        assert!(m.observe_batch(1.0, 1.0));
        assert!(!m.observe_batch(f64::NAN, 1.0));
        assert!(!m.observe_batch(1.0, f64::INFINITY));
        let r = m.end_epoch().clone();
        assert_eq!(r.n_batches, 1);
        assert_eq!(r.nan_batches, 2);
        // The skipped batches never reached the mean.
        assert!((r.mean_loss - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fail-fast")]
    fn fail_fast_panics_on_nan() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let mut m = TrainingMonitor::new("test").with_fail_fast(true);
        m.begin_epoch(0);
        m.observe_batch(f64::NAN, 0.0);
    }

    #[test]
    fn stage_breakdown_accumulates_and_resets_per_epoch() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let mut m = TrainingMonitor::new("test").with_fail_fast(false);
        m.begin_epoch(0);
        m.observe_batch(1.0, 0.5);
        m.observe_stages(0.2, 0.1, 0.05);
        m.observe_stages(0.2, 0.1, 0.05);
        let r = m.end_epoch().clone();
        assert!((r.aggregation_secs - 0.4).abs() < 1e-12);
        assert!((r.scoring_secs - 0.2).abs() < 1e-12);
        assert!((r.update_secs - 0.1).abs() < 1e-12);
        m.begin_epoch(1);
        m.observe_batch(1.0, 0.5);
        let r1 = m.end_epoch().clone();
        assert_eq!(r1.aggregation_secs, 0.0, "stages reset at begin_epoch");
    }

    #[test]
    fn rebuild_stats_attach_to_their_epoch() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let mut m = TrainingMonitor::new("test").with_fail_fast(false);
        m.begin_epoch(0);
        m.observe_batch(1.0, 0.5);
        m.observe_rebuild(RebuildStats {
            nodes: 7,
            depth: 2,
            moved_frac: 0.25,
            duration_secs: 0.01,
        });
        m.end_epoch();
        m.begin_epoch(1);
        m.observe_batch(0.9, 0.4);
        m.end_epoch();
        let recs = m.records();
        assert_eq!(recs.len(), 2);
        let r0 = recs[0].rebuild.as_ref().expect("epoch 0 rebuilt");
        assert_eq!((r0.nodes, r0.depth), (7, 2));
        assert!(
            recs[1].rebuild.is_none(),
            "rebuild does not leak to epoch 1"
        );
    }
}
