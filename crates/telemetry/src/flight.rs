//! The flight recorder: a fixed-size, pre-allocated, lock-free ring
//! buffer of recent structured events that is dumped to disk when
//! something goes wrong — a request-handler panic, a training divergence
//! rollback, or 503 load shedding — so the events *leading up to* the
//! incident survive it.
//!
//! ## Mechanics
//!
//! Writers claim a monotonically increasing sequence number with one
//! `fetch_add` and publish into slot `seq % size` with a seqlock-style
//! protocol: the slot's sequence word is zeroed (invalid), the payload
//! stored, then the sequence written with `Release`. Readers re-check the
//! sequence after reading the payload and skip torn slots. No mutex is
//! ever taken on the record path; event kinds are interned once per call
//! site through the [`crate::flight_event!`] macro.
//!
//! ## Environment
//!
//! | Variable              | Effect |
//! |-----------------------|--------|
//! | `TAXOREC_FLIGHT`      | `off`/`0` disables recording and dumps (default: on) |
//! | `TAXOREC_FLIGHT_SIZE` | ring capacity in events (default 1024, clamped to 16..=1048576) |
//! | `TAXOREC_FLIGHT_DIR`  | dump directory (default: the system temp dir) |
//!
//! Dumps are throttled to one per [`DUMP_MIN_INTERVAL_MS`] so a shedding
//! storm cannot turn the recorder into a disk-filling incident of its
//! own. The live ring is queryable over HTTP at `/debug/flight`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json;
use crate::sink;

/// Default ring capacity (events), overridable via `TAXOREC_FLIGHT_SIZE`.
pub const DEFAULT_SIZE: usize = 1024;

/// Minimum milliseconds between two dumps (throttle).
pub const DUMP_MIN_INTERVAL_MS: u64 = 2000;

/// One decoded flight-recorder event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Global sequence number (1-based, monotone across the run).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Interned event kind (e.g. `serve.request`, `train.rollback`).
    pub kind: &'static str,
    /// Trace id of the request/run the event belongs to (0 = none).
    pub trace_id: u64,
    /// Kind-specific integer attribute (HTTP status, epoch, queue depth).
    pub a: i64,
    /// Kind-specific float attribute (latency ms, loss, …).
    pub value: f64,
}

struct Slot {
    /// 0 = empty/being-written; otherwise the 1-based global sequence.
    seq: AtomicU64,
    ts_ms: AtomicU64,
    kind: AtomicUsize,
    trace_id: AtomicU64,
    a: AtomicU64,
    value_bits: AtomicU64,
}

struct Ring {
    slots: Vec<Slot>,
    cursor: AtomicU64,
}

const STATE_UNRESOLVED: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);
static RING: OnceLock<Ring> = OnceLock::new();
static KINDS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static LAST_DUMP_MS: AtomicU64 = AtomicU64::new(0);

fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = !matches!(
                std::env::var("TAXOREC_FLIGHT").as_deref(),
                Ok("off") | Ok("OFF") | Ok("0")
            );
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

fn ring() -> &'static Ring {
    RING.get_or_init(|| {
        let size = std::env::var("TAXOREC_FLIGHT_SIZE")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_SIZE)
            .clamp(16, 1 << 20);
        Ring {
            slots: (0..size)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ts_ms: AtomicU64::new(0),
                    kind: AtomicUsize::new(0),
                    trace_id: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    value_bits: AtomicU64::new(0),
                })
                .collect(),
            cursor: AtomicU64::new(0),
        }
    })
}

/// Interns `name` and returns its id. Takes a short mutex — call once
/// per call site (the [`crate::flight_event!`] macro caches the result
/// in a static) so the record path itself stays lock-free.
pub fn kind_id(name: &'static str) -> usize {
    let mut kinds = KINDS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = kinds.iter().position(|&k| k == name) {
        return i;
    }
    kinds.push(name);
    kinds.len() - 1
}

fn kind_name(id: usize) -> &'static str {
    KINDS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(id)
        .copied()
        .unwrap_or("?")
}

/// Records one event by interned kind id. Lock-free: one `fetch_add`
/// plus six relaxed/release stores into a pre-allocated slot.
pub fn record_id(kind: usize, trace_id: u64, a: i64, value: f64) {
    if !enabled() {
        return;
    }
    let r = ring();
    let seq = r.cursor.fetch_add(1, Ordering::Relaxed) + 1;
    let slot = &r.slots[(seq % r.slots.len() as u64) as usize];
    // Seqlock write: invalidate, fill, publish.
    slot.seq.store(0, Ordering::Release);
    slot.ts_ms.store(sink::unix_ms() as u64, Ordering::Relaxed);
    slot.kind.store(kind, Ordering::Relaxed);
    slot.trace_id.store(trace_id, Ordering::Relaxed);
    slot.a.store(a as u64, Ordering::Relaxed);
    slot.value_bits.store(value.to_bits(), Ordering::Relaxed);
    slot.seq.store(seq, Ordering::Release);
}

/// Records one event, interning `kind` on every call (takes the intern
/// mutex). Prefer [`crate::flight_event!`] in steady-state paths.
pub fn record(kind: &'static str, trace_id: u64, a: i64, value: f64) {
    if !enabled() {
        return;
    }
    record_id(kind_id(kind), trace_id, a, value);
}

/// Records a flight event with the kind id cached per call site, so the
/// steady-state cost is one atomic claim plus the slot stores:
///
/// ```
/// taxorec_telemetry::flight_event!("serve.request", 0xabc, 200, 1.5);
/// ```
#[macro_export]
macro_rules! flight_event {
    ($kind:literal, $trace:expr, $a:expr, $value:expr) => {{
        static __FLIGHT_KIND: ::std::sync::OnceLock<usize> = ::std::sync::OnceLock::new();
        let id = *__FLIGHT_KIND.get_or_init(|| $crate::flight::kind_id($kind));
        $crate::flight::record_id(id, $trace, $a, $value);
    }};
}

/// A consistent snapshot of the ring, oldest event first. Slots being
/// concurrently rewritten are skipped (torn reads detected by the
/// seqlock re-check).
pub fn snapshot() -> Vec<FlightEvent> {
    if !enabled() {
        return Vec::new();
    }
    let r = ring();
    let mut out = Vec::with_capacity(r.slots.len());
    for slot in &r.slots {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 {
            continue;
        }
        let ev = FlightEvent {
            seq,
            ts_ms: slot.ts_ms.load(Ordering::Relaxed),
            kind: kind_name(slot.kind.load(Ordering::Relaxed)),
            trace_id: slot.trace_id.load(Ordering::Relaxed),
            a: slot.a.load(Ordering::Relaxed) as i64,
            value: f64::from_bits(slot.value_bits.load(Ordering::Relaxed)),
        };
        if slot.seq.load(Ordering::Acquire) == seq {
            out.push(ev);
        }
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// The snapshot as one JSON object (`/debug/flight` response body):
/// `{"size":…,"recorded":…,"events":[{…},…]}`.
pub fn snapshot_json() -> String {
    let events = snapshot();
    let (size, recorded) = if enabled() {
        let r = ring();
        (r.slots.len(), r.cursor.load(Ordering::Relaxed))
    } else {
        (0, 0)
    };
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"size\":");
    out.push_str(&size.to_string());
    out.push_str(",\"recorded\":");
    out.push_str(&recorded.to_string());
    out.push_str(",\"events\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event_json(&mut out, e);
    }
    out.push_str("]}");
    out
}

fn push_event_json(out: &mut String, e: &FlightEvent) {
    out.push_str("{\"seq\":");
    out.push_str(&e.seq.to_string());
    out.push_str(",\"ts_ms\":");
    out.push_str(&e.ts_ms.to_string());
    out.push_str(",\"kind\":");
    json::push_str_escaped(out, e.kind);
    out.push_str(",\"trace\":\"");
    out.push_str(&format!("{:016x}", e.trace_id));
    out.push_str("\",\"a\":");
    out.push_str(&e.a.to_string());
    out.push_str(",\"value\":");
    json::push_f64(out, e.value);
    out.push('}');
}

/// Overrides the dump directory, bypassing `TAXOREC_FLIGHT_DIR` (test /
/// harness hook). Also resets the dump throttle.
pub fn set_dump_dir(dir: &std::path::Path) {
    *DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()) = Some(dir.to_path_buf());
    LAST_DUMP_MS.store(0, Ordering::Relaxed);
}

fn dump_dir() -> PathBuf {
    if let Some(d) = DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone() {
        return d;
    }
    match std::env::var("TAXOREC_FLIGHT_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir(),
    }
}

/// Dumps the current snapshot to
/// `<dir>/flight-<reason>-<pid>-<unix_ms>.json` and returns the path.
/// `None` when the recorder is disabled, the throttle suppressed the
/// dump, or the write failed (warned, never fatal — the recorder is the
/// incident *witness*, not a new incident).
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let now = sink::unix_ms() as u64;
    let last = LAST_DUMP_MS.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < DUMP_MIN_INTERVAL_MS {
        return None;
    }
    if LAST_DUMP_MS
        .compare_exchange(last, now.max(1), Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return None; // another thread is dumping the same incident
    }
    let events = snapshot();
    let safe_reason: String = reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let dir = dump_dir();
    let path = dir.join(format!(
        "flight-{safe_reason}-{}-{now}.json",
        std::process::id()
    ));
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"reason\":");
    json::push_str_escaped(&mut out, reason);
    out.push_str(",\"ts_ms\":");
    out.push_str(&now.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&std::process::id().to_string());
    out.push_str(",\"events\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event_json(&mut out, e);
    }
    out.push_str("]}\n");
    match std::fs::write(&path, out) {
        Ok(()) => {
            crate::registry::counter("flight.dumps").inc(1);
            sink::warn(&format!("flight recorder dumped to {}", path.display()));
            Some(path)
        }
        Err(e) => {
            sink::warn(&format!("cannot write flight dump {}: {e}", path.display()));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_and_snapshot_in_order() {
        let _g = crate::test_lock();
        record("test.flight.a", 7, 1, 0.5);
        record("test.flight.b", 7, 2, 1.5);
        let snap = snapshot();
        let ours: Vec<&FlightEvent> = snap
            .iter()
            .filter(|e| e.kind.starts_with("test.flight."))
            .collect();
        assert!(ours.len() >= 2);
        let (a, b) = (ours[ours.len() - 2], ours[ours.len() - 1]);
        assert_eq!((a.kind, a.a), ("test.flight.a", 1));
        assert_eq!((b.kind, b.a), ("test.flight.b", 2));
        assert!(b.seq > a.seq, "sequence is monotone");
        assert_eq!(b.trace_id, 7);
        assert!((b.value - 1.5).abs() < 1e-12);
    }

    #[test]
    fn macro_caches_kind_and_records() {
        let _g = crate::test_lock();
        for i in 0..3i64 {
            crate::flight_event!("test.flight.macro", 9, i, 0.0);
        }
        let snap = snapshot();
        let n = snap
            .iter()
            .filter(|e| e.kind == "test.flight.macro")
            .count();
        assert!(n >= 3, "{n}");
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent() {
        let _g = crate::test_lock();
        let size = ring().slots.len();
        for i in 0..(size as i64 + 8) {
            record("test.flight.wrap", 0, i, 0.0);
        }
        let snap = snapshot();
        assert_eq!(snap.len(), size, "ring is exactly full");
        // The newest wrap event survived; the oldest were overwritten.
        let max_a = snap
            .iter()
            .filter(|e| e.kind == "test.flight.wrap")
            .map(|e| e.a)
            .max()
            .unwrap();
        assert_eq!(max_a, size as i64 + 7);
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq, "snapshot sorted by seq");
        }
    }

    #[test]
    fn snapshot_json_is_valid() {
        let _g = crate::test_lock();
        record("test.flight.json", 3, -4, f64::NAN);
        let s = snapshot_json();
        assert!(json::is_valid_json(&s), "{s}");
        assert!(s.contains("\"events\":["));
        assert!(s.contains("\"kind\":\"test.flight.json\""));
    }

    #[test]
    fn dump_writes_a_json_file_and_throttles() {
        let _g = crate::test_lock();
        let dir = std::env::temp_dir().join(format!("taxorec-flight-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        set_dump_dir(&dir);
        record("test.flight.dump", 1, 2, 3.0);
        let path = dump("unit test").expect("first dump");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(json::is_valid_json(text.trim()), "{text}");
        assert!(text.contains("\"reason\":\"unit test\""));
        assert!(text.contains("test.flight.dump"));
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("flight-unit_test-"));
        // A second dump inside the throttle window is suppressed.
        assert!(dump("unit test").is_none());
        let _ = std::fs::remove_dir_all(&dir);
        *DUMP_DIR.lock().unwrap() = None;
    }

    #[test]
    fn concurrent_writers_never_tear_reads() {
        let _g = crate::test_lock();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        record("test.flight.race", t, i, i as f64);
                        i += 1;
                    }
                });
            }
            for _ in 0..50 {
                for e in snapshot() {
                    if e.kind == "test.flight.race" {
                        // Payload consistency: a == value for every event.
                        assert!(
                            (e.a as f64 - e.value).abs() < 1e-12,
                            "torn read: a={} value={}",
                            e.a,
                            e.value
                        );
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
