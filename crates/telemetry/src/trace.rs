//! Request-scoped tracing: a [`TraceContext`] minted at a system edge
//! (the HTTP acceptor, the start of `fit_controlled`), threaded through
//! queues and worker pools as a `Copy` struct, and exported as **Chrome
//! trace-event JSON** (`chrome://tracing` / Perfetto's legacy format) so
//! one request renders as a connected parent-child span tree.
//!
//! ## Design
//!
//! * **IDs always, export sampled.** [`mint`] always returns a fresh
//!   non-zero trace id (cheap: two relaxed atomics) so callers can echo
//!   it back — the serve layer puts it in an `x-taxorec-trace` response
//!   header on every response. Whether the request's spans are *exported*
//!   is decided once at mint time (`sampled`), so the per-span check on
//!   the hot path is a thread-local read and a branch, with **no clock
//!   read and no allocation** for unsampled requests.
//! * **Propagation is explicit or ambient.** A context travels by value
//!   across queues/channels; within a thread it is installed with
//!   [`scope`] and picked up ambiently by [`child_span`], so deep callees
//!   (the serving model, the fused kernels) need no signature changes.
//!   `taxorec-parallel` re-installs the launching thread's context inside
//!   its workers, so spans opened in pool jobs parent correctly.
//! * **Retroactive spans.** Queue-wait and per-epoch stage aggregates are
//!   known only after the fact; [`emit_span_at`] records a span from
//!   explicit start/end instants and returns the child context so further
//!   spans can nest under it.
//!
//! ## Environment
//!
//! | Variable               | Effect |
//! |------------------------|--------|
//! | `TAXOREC_TRACE`        | unset/`off`/`0` → tracing disabled (the default); any other value → export path for the trace-event JSON |
//! | `TAXOREC_TRACE_SAMPLE` | export every N-th minted context (default 1 = every one) |
//!
//! Buffered events are written by [`flush`] — called on server shutdown
//! and at the end of `fit_controlled` — as a JSON array of `"ph":"X"`
//! complete events; load the file in Perfetto to see the tree.

use std::cell::Cell;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events; beyond this new events are dropped (and
/// counted in `trace.dropped`) rather than growing without bound.
const MAX_EVENTS: usize = 1 << 16;

/// The identity of one traced operation, passed by value everywhere.
/// `Copy` and three words wide: carrying it through a queue or closure
/// costs nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the whole request/run; shared by every span in the
    /// tree. Non-zero once minted.
    pub trace_id: u64,
    /// The span this context currently denotes (the parent of any child
    /// opened under it).
    pub span_id: u64,
    /// Whether spans under this context are exported. Decided once at
    /// [`mint`]; unsampled contexts make every span operation a no-op.
    pub sampled: bool,
}

impl TraceContext {
    /// The absent context: zero ids, never sampled.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        sampled: false,
    };
}

thread_local! {
    static CURRENT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

// ---------------------------------------------------------------------
// Exporter state
// ---------------------------------------------------------------------

struct Event {
    name: &'static str,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    ts_us: u64,
    dur_us: u64,
}

struct Exporter {
    path: PathBuf,
    events: Vec<Event>,
}

const STATE_UNRESOLVED: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Fast-path gate; the mutex below is only taken to resolve or export.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);
static EXPORTER: Mutex<Option<Exporter>> = Mutex::new(None);
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
static SAMPLE_COUNTER: AtomicU64 = AtomicU64::new(0);
static ID_COUNTER: AtomicU64 = AtomicU64::new(0);

fn lock_exporter() -> std::sync::MutexGuard<'static, Option<Exporter>> {
    EXPORTER.lock().unwrap_or_else(|e| e.into_inner())
}

/// The single monotonic time anchor all event timestamps are relative
/// to; initialized on first use, before any exported span can start.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

fn ts_us(at: Instant) -> u64 {
    at.saturating_duration_since(anchor()).as_micros() as u64
}

/// True when an exporter is installed (env or programmatic).
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_from_env(),
    }
}

fn resolve_from_env() -> bool {
    let mut ex = lock_exporter();
    // Double-checked: another thread may have resolved or installed.
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => return true,
        STATE_OFF => return false,
        _ => {}
    }
    let on = match std::env::var("TAXOREC_TRACE") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("off") && v != "0" => {
            *ex = Some(Exporter {
                path: PathBuf::from(v),
                events: Vec::new(),
            });
            true
        }
        _ => false,
    };
    if on {
        if let Ok(s) = std::env::var("TAXOREC_TRACE_SAMPLE") {
            if let Ok(n) = s.trim().parse::<u64>() {
                SAMPLE_EVERY.store(n.max(1), Ordering::Relaxed);
            }
        }
    }
    anchor();
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Installs a trace-event JSON exporter writing to `path`, bypassing the
/// environment (test / harness hook). Resets the sampling counter so the
/// next minted context is the first of its sampling window.
pub fn install_file_exporter(path: &str) {
    let mut ex = lock_exporter();
    anchor();
    *ex = Some(Exporter {
        path: PathBuf::from(path),
        events: Vec::new(),
    });
    SAMPLE_COUNTER.store(0, Ordering::Relaxed);
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Turns tracing off and drops any buffered events (test hook).
pub fn disable() {
    let mut ex = lock_exporter();
    *ex = None;
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// Export every `n`-th minted context (1 = all). Zero is clamped to 1.
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n.max(1), Ordering::Relaxed);
}

/// SplitMix64 over a global counter seeded from the wall clock: unique
/// non-zero ids without a RNG dependency and without synchronization
/// beyond one `fetch_add`.
fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
    });
    let mut z = seed.wrapping_add(
        ID_COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z | 1 // never zero (zero means "no context")
}

/// Mints a fresh root context. The trace id is always real (for response
/// headers / log correlation); `sampled` is true only when an exporter is
/// installed **and** this mint falls on the sampling stride.
pub fn mint() -> TraceContext {
    let trace_id = next_id();
    let span_id = next_id();
    let sampled = enabled() && {
        let every = SAMPLE_EVERY.load(Ordering::Relaxed).max(1);
        SAMPLE_COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    };
    TraceContext {
        trace_id,
        span_id,
        sampled,
    }
}

/// The current thread's ambient context ([`TraceContext::NONE`] outside
/// any scope).
pub fn current() -> TraceContext {
    CURRENT.with(|c| c.get())
}

/// Installs `ctx` as the thread's ambient context for the guard's
/// lifetime; the previous context is restored on drop. Used at thread
/// handoff points (serve workers, pool workers).
#[must_use = "dropping the guard immediately uninstalls the context"]
pub fn scope(ctx: TraceContext) -> ScopeGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ScopeGuard { prev }
}

/// Restores the previous ambient context on drop (see [`scope`]).
pub struct ScopeGuard {
    prev: TraceContext,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Opens a span under the ambient context. When that context is
/// unsampled this is inert: no clock read, no allocation, no export.
/// While the guard lives, it *is* the ambient context, so nested
/// children parent to it.
#[must_use = "dropping the span immediately records a zero-length span"]
pub fn child_span(name: &'static str) -> TraceSpan {
    let cur = current();
    if !cur.sampled {
        return TraceSpan {
            name,
            ctx: TraceContext::NONE,
            parent_id: 0,
            start: None,
        };
    }
    let ctx = TraceContext {
        trace_id: cur.trace_id,
        span_id: next_id(),
        sampled: true,
    };
    CURRENT.with(|c| c.set(ctx));
    TraceSpan {
        name,
        ctx,
        parent_id: cur.span_id,
        start: Some(Instant::now()),
    }
}

/// An in-flight exported span (see [`child_span`]); emits its event and
/// restores the parent context on drop.
pub struct TraceSpan {
    name: &'static str,
    ctx: TraceContext,
    parent_id: u64,
    /// `None` = unsampled, fully inert.
    start: Option<Instant>,
}

impl TraceSpan {
    /// This span's context (hand it across threads to parent remote work).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        CURRENT.with(|c| {
            c.set(TraceContext {
                trace_id: self.ctx.trace_id,
                span_id: self.parent_id,
                sampled: true,
            })
        });
        push_event(Event {
            name: self.name,
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.parent_id,
            ts_us: ts_us(start),
            dur_us: end.saturating_duration_since(start).as_micros() as u64,
        });
    }
}

/// Records a span retroactively from explicit instants, as a child of
/// `parent`. Returns the emitted span's context so further retroactive
/// spans can nest under it ([`TraceContext::NONE`] when unsampled).
pub fn emit_span_at(
    name: &'static str,
    parent: TraceContext,
    start: Instant,
    end: Instant,
) -> TraceContext {
    if !parent.sampled {
        return TraceContext::NONE;
    }
    let ctx = TraceContext {
        trace_id: parent.trace_id,
        span_id: next_id(),
        sampled: true,
    };
    push_event(Event {
        name,
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: parent.span_id,
        ts_us: ts_us(start),
        dur_us: end.saturating_duration_since(start).as_micros() as u64,
    });
    ctx
}

/// Records the **root** span of `ctx` (parent 0) covering
/// `start..end` — the enclosing "http" / "train.fit" event emitted once
/// the operation's true extent is known.
pub fn emit_root_at(name: &'static str, ctx: TraceContext, start: Instant, end: Instant) {
    if !ctx.sampled {
        return;
    }
    push_event(Event {
        name,
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: 0,
        ts_us: ts_us(start),
        dur_us: end.saturating_duration_since(start).as_micros() as u64,
    });
}

fn push_event(ev: Event) {
    let mut ex = lock_exporter();
    if let Some(ex) = ex.as_mut() {
        if ex.events.len() < MAX_EVENTS {
            ex.events.push(ev);
        } else {
            crate::registry::counter("trace.dropped").inc(1);
        }
    }
}

/// `trace_id` as the 16-hex-digit form used in the `x-taxorec-trace`
/// header and the exported JSON.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Writes all buffered events to the exporter path as one Chrome
/// trace-event JSON array (whole-file rewrite, one event per line) and
/// returns the path. `None` when tracing is off or the write failed
/// (warned, never fatal). Buffered events are retained, so repeated
/// flushes produce a growing, self-consistent file.
pub fn flush() -> Option<PathBuf> {
    let ex = lock_exporter();
    let ex = ex.as_ref()?;
    let mut out = String::with_capacity(64 + ex.events.len() * 160);
    out.push_str("[\n");
    let pid = std::process::id();
    for (i, ev) in ex.events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // One flat track per trace: Perfetto lays spans out by (pid,
        // tid), so deriving tid from the trace id gives each request its
        // own row with the parent-child nesting drawn inside it.
        let tid = ev.trace_id & 0x7fff_ffff;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"taxorec\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\
             \"parent\":\"{:016x}\"}}}}",
            ev.name, ev.ts_us, ev.dur_us, ev.trace_id, ev.span_id, ev.parent_id
        ));
    }
    out.push_str("\n]\n");
    let write = std::fs::File::create(&ex.path).and_then(|mut f| f.write_all(out.as_bytes()));
    match write {
        Ok(()) => Some(ex.path.clone()),
        Err(e) => {
            crate::sink::warn(&format!(
                "cannot write trace export {}: {e}",
                ex.path.display()
            ));
            None
        }
    }
}

/// Number of events currently buffered (test hook).
pub fn buffered_events() -> usize {
    lock_exporter().as_ref().map_or(0, |e| e.events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsampled_context_makes_spans_inert() {
        let _g = crate::test_lock();
        disable();
        let ctx = mint();
        assert_ne!(ctx.trace_id, 0);
        assert!(!ctx.sampled, "no exporter installed");
        let _scope = scope(ctx);
        let sp = child_span("test.inert");
        assert!(sp.start.is_none(), "no clock read when unsampled");
        drop(sp);
        assert_eq!(buffered_events(), 0);
    }

    #[test]
    fn scope_nests_and_restores() {
        let _g = crate::test_lock();
        disable();
        assert_eq!(current(), TraceContext::NONE);
        let a = mint();
        {
            let _s = scope(a);
            assert_eq!(current().trace_id, a.trace_id);
            let b = mint();
            {
                let _inner = scope(b);
                assert_eq!(current().trace_id, b.trace_id);
            }
            assert_eq!(current().trace_id, a.trace_id);
        }
        assert_eq!(current(), TraceContext::NONE);
    }

    #[test]
    fn sampled_spans_form_a_parented_tree() {
        let _g = crate::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("taxorec-trace-unit-{}.json", std::process::id()));
        install_file_exporter(path.to_str().unwrap());
        set_sample_every(1);
        let root = mint();
        assert!(root.sampled);
        let t0 = Instant::now();
        {
            let _s = scope(root);
            let outer = child_span("outer");
            let outer_id = outer.context().span_id;
            {
                let inner = child_span("inner");
                assert_eq!(current().span_id, inner.context().span_id);
                // inner's parent is outer (the ambient context at open).
                assert_eq!(inner.parent_id, outer_id);
            }
            drop(outer);
        }
        emit_root_at("root", root, t0, Instant::now());
        assert_eq!(buffered_events(), 3);
        let written = flush().expect("flush");
        let text = std::fs::read_to_string(&written).unwrap();
        assert!(crate::json::is_valid_json(text.trim()), "{text}");
        assert!(text.contains("\"name\":\"inner\""));
        assert!(text.contains(&format!("{:016x}", root.trace_id)));
        disable();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sampling_stride_gates_export() {
        let _g = crate::test_lock();
        let path =
            std::env::temp_dir().join(format!("taxorec-trace-sample-{}.json", std::process::id()));
        install_file_exporter(path.to_str().unwrap());
        set_sample_every(3);
        let sampled: Vec<bool> = (0..9).map(|_| mint().sampled).collect();
        assert_eq!(sampled.iter().filter(|&&s| s).count(), 3, "{sampled:?}");
        assert!(sampled[0], "counter was reset by install");
        set_sample_every(1);
        disable();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }
}
