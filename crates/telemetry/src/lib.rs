//! # taxorec-telemetry
//!
//! Zero-dependency observability for the TaxoRec workspace: a global
//! metric registry, lightweight RAII spans, env-controlled sinks, and a
//! training-health monitor for the epoch loop.
//!
//! ## Quick tour
//!
//! ```
//! use taxorec_telemetry::{registry, span, TrainingMonitor};
//!
//! // Counters / gauges / histograms — lock-free after registration.
//! let c = registry::counter("train.nan_batches");
//! c.inc(1);
//!
//! // RAII span feeding the `taxo.rebuild.duration` histogram.
//! {
//!     let _guard = span!("taxo.rebuild");
//!     // ... work ...
//! }
//!
//! // Epoch-loop health monitoring.
//! taxorec_telemetry::sink::disable_metrics(); // keep doctest silent
//! let mut monitor = TrainingMonitor::new("taxorec").with_fail_fast(false);
//! monitor.begin_epoch(0);
//! if monitor.observe_batch(0.7, 0.1) {
//!     // apply the parameter update
//! }
//! monitor.end_epoch();
//! assert_eq!(monitor.records().len(), 1);
//! ```
//!
//! ## Environment variables
//!
//! | Variable          | Values                              | Effect |
//! |-------------------|-------------------------------------|--------|
//! | `TAXOREC_LOG`     | `off` (default) `warn` `info` `debug` | human-readable diagnostics on stderr |
//! | `TAXOREC_METRICS` | unset/`off` (default), `json`/`jsonl`/`stderr`/`1`, or a file path | metric events as JSON Lines |
//! | `TAXOREC_FAIL_FAST` | `1`/`true`                        | abort training on the first NaN/Inf batch |
//! | `TAXOREC_TRACE`   | unset/`off` (default) or a file path | export sampled spans as Chrome trace-event JSON |
//! | `TAXOREC_TRACE_SAMPLE` | integer `n` (default 1)        | export every `n`-th trace root |
//! | `TAXOREC_FLIGHT`  | `off`/`0` to disable (default on)   | flight-recorder ring buffer |
//! | `TAXOREC_FLIGHT_SIZE` | integer (default 1024)          | flight-recorder capacity in events |
//! | `TAXOREC_FLIGHT_DIR` | directory (default temp dir)     | where incident dumps are written |
//!
//! With both variables unset the crate is completely silent — `cargo
//! test -q` output is byte-identical to a build without instrumentation.
//!
//! ## Metric naming
//!
//! Dotted, lowercase, grouped by subsystem: `train.*` (epoch loop),
//! `taxo.*` (taxonomy construction / k-means), `eval.*` (evaluation
//! runner), `bench.*` (benchmark harness). Span histograms are always
//! `<span name>.duration` in seconds.

pub mod flight;
pub mod json;
pub mod monitor;
pub mod prometheus;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

pub use monitor::{EpochRecord, RebuildStats, TrainingMonitor};
pub use registry::{counter, gauge, histogram, reset, snapshot, Counter, Gauge, Histogram};
pub use sink::{
    disable_metrics, install_file_sink, install_memory_sink, metrics_enabled, set_log_level,
    LogLevel,
};
pub use span::Span;
pub use trace::TraceContext;

/// Serializes tests that mutate process-global state (the registry's
/// values via `reset()`, the metrics sink). Lock poisoning is ignored —
/// a panicking test (e.g. `#[should_panic]`) must not wedge the rest.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
