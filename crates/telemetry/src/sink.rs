//! Env-controlled output sinks.
//!
//! * `TAXOREC_LOG` — human-readable diagnostics on stderr: `off`
//!   (default), `warn`, `info`, or `debug`. With the variable unset the
//!   library is silent, so `cargo test -q` output is unchanged.
//! * `TAXOREC_METRICS` — machine-readable metric events as JSON Lines:
//!   unset/`off` (default, disabled), `json`/`jsonl`/`stderr` (one JSON
//!   object per line on stderr), or any other value (treated as a file
//!   path, appended to).
//!
//! Tests and harnesses can bypass the environment with
//! [`install_memory_sink`] / [`install_file_sink`] / [`disable_metrics`].

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;

/// Verbosity of the human-readable stderr log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Silent (the default).
    Off = 0,
    /// Anomalies only (NaN batches, failed invariants).
    Warn = 1,
    /// Per-epoch / per-run progress lines.
    Info = 2,
    /// Per-span timing chatter.
    Debug = 3,
}

const LEVEL_UNRESOLVED: u8 = u8::MAX;

static LOG_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNRESOLVED);

/// The active log level (resolved once from `TAXOREC_LOG`).
pub fn log_level() -> LogLevel {
    let raw = LOG_LEVEL.load(Ordering::Relaxed);
    if raw != LEVEL_UNRESOLVED {
        return decode_level(raw);
    }
    let level = match std::env::var("TAXOREC_LOG").as_deref() {
        Ok("warn") | Ok("WARN") => LogLevel::Warn,
        Ok("info") | Ok("INFO") => LogLevel::Info,
        Ok("debug") | Ok("DEBUG") => LogLevel::Debug,
        _ => LogLevel::Off,
    };
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Overrides the log level (tests / embedding harnesses).
pub fn set_log_level(level: LogLevel) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

fn decode_level(raw: u8) -> LogLevel {
    match raw {
        1 => LogLevel::Warn,
        2 => LogLevel::Info,
        3 => LogLevel::Debug,
        _ => LogLevel::Off,
    }
}

/// True when messages at `level` are emitted.
pub fn log_enabled(level: LogLevel) -> bool {
    level <= log_level() && log_level() != LogLevel::Off
}

/// Writes a warn-level line (`[taxorec:warn] …`) when enabled.
pub fn warn(msg: &str) {
    if log_enabled(LogLevel::Warn) {
        eprintln!("[taxorec:warn] {msg}");
    }
}

/// Writes an info-level line when enabled.
pub fn info(msg: &str) {
    if log_enabled(LogLevel::Info) {
        eprintln!("[taxorec:info] {msg}");
    }
}

/// Writes a debug-level line when enabled.
pub fn debug(msg: &str) {
    if log_enabled(LogLevel::Debug) {
        eprintln!("[taxorec:debug] {msg}");
    }
}

/// Where metric events go.
enum MetricsSink {
    Stderr,
    File(Mutex<std::fs::File>),
    Memory(Arc<Mutex<Vec<String>>>),
}

enum SinkState {
    Unresolved,
    Off,
    On(MetricsSink),
}

static SINK: Mutex<SinkState> = Mutex::new(SinkState::Unresolved);

/// Locks the sink state, recovering from a poisoned lock — a panic in
/// one emitter must never wedge every later metric emission.
fn lock_sink() -> std::sync::MutexGuard<'static, SinkState> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

fn resolve_from_env(state: &mut SinkState) {
    if !matches!(state, SinkState::Unresolved) {
        return;
    }
    *state = match std::env::var("TAXOREC_METRICS") {
        Ok(v)
            if v.eq_ignore_ascii_case("json")
                || v.eq_ignore_ascii_case("jsonl")
                || v.eq_ignore_ascii_case("stderr")
                || v == "1" =>
        {
            SinkState::On(MetricsSink::Stderr)
        }
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("off") && v != "0" => {
            match OpenOptions::new().create(true).append(true).open(&v) {
                Ok(f) => SinkState::On(MetricsSink::File(Mutex::new(f))),
                Err(e) => {
                    eprintln!("[taxorec:warn] cannot open TAXOREC_METRICS file {v}: {e}");
                    SinkState::Off
                }
            }
        }
        _ => SinkState::Off,
    };
}

/// True when metric events are being emitted anywhere.
pub fn metrics_enabled() -> bool {
    let mut state = lock_sink();
    resolve_from_env(&mut state);
    matches!(*state, SinkState::On(_))
}

/// Routes metric events into an in-memory buffer and returns it — the
/// test hook for asserting on emitted JSONL.
pub fn install_memory_sink() -> Arc<Mutex<Vec<String>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    *lock_sink() = SinkState::On(MetricsSink::Memory(Arc::clone(&buf)));
    buf
}

/// Routes metric events to `path` (append), regardless of the environment.
pub fn install_file_sink(path: &str) -> std::io::Result<()> {
    let f = OpenOptions::new().create(true).append(true).open(path)?;
    *lock_sink() = SinkState::On(MetricsSink::File(Mutex::new(f)));
    Ok(())
}

/// Turns metric emission off, regardless of the environment.
pub fn disable_metrics() {
    *lock_sink() = SinkState::Off;
}

/// Flushes a file-backed metrics sink so buffered tail events reach disk
/// before the process exits (called on graceful serve shutdown and at the
/// end of `fit_controlled`). No-op for stderr/memory/disabled sinks.
pub fn flush() {
    if let SinkState::On(MetricsSink::File(f)) = &*lock_sink() {
        let _ = f.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is unavailable).
pub fn unix_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// A typed attribute attached to a metric event.
pub enum Attr {
    /// Float attribute.
    F(f64),
    /// Integer attribute.
    I(i64),
    /// String attribute.
    S(String),
}

/// Emits one metric event as a JSONL record:
/// `{"ts_ms":…,"kind":…,"name":…,"value":…}` plus any attributes.
pub fn emit_metric(kind: &str, name: &str, value: f64, attrs: &[(&str, Attr)]) {
    let mut state = lock_sink();
    resolve_from_env(&mut state);
    if !matches!(&*state, SinkState::On(_)) {
        return;
    }
    let mut line = String::with_capacity(96);
    line.push_str("{\"ts_ms\":");
    line.push_str(&unix_ms().to_string());
    line.push_str(",\"kind\":");
    json::push_str_escaped(&mut line, kind);
    line.push_str(",\"name\":");
    json::push_str_escaped(&mut line, name);
    line.push_str(",\"value\":");
    json::push_f64(&mut line, value);
    for (k, v) in attrs {
        line.push(',');
        json::push_str_escaped(&mut line, k);
        line.push(':');
        match v {
            Attr::F(x) => json::push_f64(&mut line, *x),
            Attr::I(x) => line.push_str(&x.to_string()),
            Attr::S(x) => json::push_str_escaped(&mut line, x),
        }
    }
    line.push('}');
    write_or_disable(&mut state, &line);
}

/// Emits a pre-assembled JSON object as one JSONL record (used for run
/// summaries that do not fit the name/value shape).
pub fn emit_json_line(line: &str) {
    debug_assert!(
        json::is_valid_json(line),
        "emit_json_line got invalid JSON: {line}"
    );
    let mut state = lock_sink();
    resolve_from_env(&mut state);
    if matches!(&*state, SinkState::On(_)) {
        write_or_disable(&mut state, line);
    }
}

/// Writes one line to the active sink. A failed write (unwritable path,
/// disk full, closed descriptor) warns **once** and permanently disables
/// emission — metrics are observability, never worth crashing or
/// spamming the training loop for.
fn write_or_disable(state: &mut SinkState, line: &str) {
    let ok = match &*state {
        SinkState::On(sink) => write_line(sink, line),
        _ => return,
    };
    if !ok {
        *state = SinkState::Off;
        eprintln!(
            "[taxorec:warn] metrics sink write failed; disabling metric emission \
             for the rest of the process"
        );
    }
}

fn write_line(sink: &MetricsSink, line: &str) -> bool {
    match sink {
        MetricsSink::Stderr => {
            eprintln!("{line}");
            true
        }
        MetricsSink::File(f) => {
            let mut f = f.lock().unwrap_or_else(|e| e.into_inner());
            writeln!(f, "{line}").is_ok()
        }
        MetricsSink::Memory(buf) => {
            buf.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(line.to_string());
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures_valid_json() {
        let _g = crate::test_lock();
        let buf = install_memory_sink();
        emit_metric(
            "gauge",
            "test.value",
            1.5,
            &[
                ("run", Attr::S("a\"b".into())),
                ("epoch", Attr::I(3)),
                ("f", Attr::F(0.25)),
            ],
        );
        emit_json_line("{\"model\":\"X\",\"recall\":[1,2]}");
        let lines = buf.lock().unwrap().clone();
        disable_metrics();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            assert!(crate::json::is_valid_json(l), "{l}");
        }
        assert!(lines[0].contains("\"name\":\"test.value\""));
        assert!(lines[0].contains("\"epoch\":3"));
    }

    #[test]
    fn disabled_sink_swallows_events() {
        let _g = crate::test_lock();
        disable_metrics();
        // Must not panic or print.
        emit_metric("counter", "x", 1.0, &[]);
        assert!(!metrics_enabled());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn full_disk_disables_sink_without_panicking() {
        let _g = crate::test_lock();
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        // /dev/full accepts the open but fails every write with ENOSPC —
        // the exact disk-full scenario. The first emit must warn, disable
        // the sink, and return normally; later emits are no-ops.
        install_file_sink("/dev/full").expect("open /dev/full");
        assert!(metrics_enabled());
        emit_metric("gauge", "test.full_disk", 1.0, &[]);
        assert!(!metrics_enabled(), "sink disabled after the failed write");
        emit_metric("gauge", "test.full_disk", 2.0, &[]);
        emit_json_line("{\"after\":\"disable\"}");
        disable_metrics();
    }

    #[test]
    fn unwritable_metrics_path_resolves_to_off() {
        let _g = crate::test_lock();
        assert!(install_file_sink("/nonexistent-dir/metrics.jsonl").is_err());
        disable_metrics();
    }
}
