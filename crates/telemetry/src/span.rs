//! Lightweight RAII spans: `let _s = span!("taxo.rebuild");` times the
//! enclosing scope and feeds the latency histogram
//! `taxo.rebuild.duration` (seconds). The macro caches the histogram
//! handle in a per-call-site static, so steady-state cost is two clock
//! reads plus a few relaxed atomics — safe to leave in hot loops.

use std::sync::Arc;
use std::time::Instant;

use crate::registry::Histogram;
use crate::sink;

/// An in-flight span; records its duration on drop. `#[must_use]`: a
/// span that is not bound to a local (`let _guard = span!(…)`) drops
/// immediately and times nothing.
#[must_use = "binding a span to `_` or dropping it immediately times nothing"]
pub struct Span {
    name: &'static str,
    start: Instant,
    hist: Arc<Histogram>,
}

impl Span {
    /// Starts a span feeding `hist` (use the [`crate::span!`] macro, which
    /// resolves and caches the histogram).
    pub fn with_histogram(name: &'static str, hist: Arc<Histogram>) -> Self {
        Self {
            name,
            start: Instant::now(),
            hist,
        }
    }

    /// Starts a span by histogram lookup (non-macro call sites).
    pub fn enter(name: &'static str) -> Self {
        let hist = crate::registry::histogram(&format!("{name}.duration"));
        Self::with_histogram(name, hist)
    }

    /// Elapsed time so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.hist.observe(secs);
        if sink::log_enabled(sink::LogLevel::Debug) {
            sink::debug(&format!("span {} {:.3}ms", self.name, secs * 1e3));
        }
    }
}

/// Opens a span for the enclosing scope: `let _guard = span!("train.epoch");`
/// The duration lands in the histogram `<name>.duration` when the guard
/// drops. The histogram handle is cached per call site.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __SPAN_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::registry::Histogram>> =
            ::std::sync::OnceLock::new();
        let hist =
            __SPAN_HIST.get_or_init(|| $crate::registry::histogram(concat!($name, ".duration")));
        $crate::span::Span::with_histogram($name, ::std::sync::Arc::clone(hist))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_monotone_nonnegative_durations() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let h = crate::registry::histogram("test.span.duration");
        let before = h.count();
        {
            let s = Span::with_histogram("test.span", Arc::clone(&h));
            std::thread::sleep(Duration::from_millis(2));
            let mid = s.elapsed_secs();
            std::thread::sleep(Duration::from_millis(2));
            let later = s.elapsed_secs();
            assert!(mid >= 0.002, "elapsed at least the sleep: {mid}");
            assert!(later >= mid, "elapsed is monotone: {mid} -> {later}");
        }
        assert_eq!(h.count(), before + 1);
        assert!(
            h.max() >= 0.004,
            "recorded duration covers both sleeps: {}",
            h.max()
        );
    }

    #[test]
    fn span_macro_caches_and_feeds_named_histogram() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let h = crate::registry::histogram("test.macro_span.duration");
        let before = h.count();
        for _ in 0..3 {
            let _g = crate::span!("test.macro_span");
        }
        assert_eq!(h.count(), before + 3);
    }

    #[test]
    fn nested_spans_record_independently() {
        let _g = crate::test_lock();
        crate::sink::disable_metrics();
        let outer = crate::registry::histogram("test.outer.duration");
        let inner = crate::registry::histogram("test.inner.duration");
        let (o0, i0) = (outer.count(), inner.count());
        {
            let _o = crate::span!("test.outer");
            {
                let _i = crate::span!("test.inner");
            }
        }
        assert_eq!(outer.count(), o0 + 1);
        assert_eq!(inner.count(), i0 + 1);
        // Inner cannot have taken longer than outer on the same pass.
        assert!(inner.max() <= outer.max() + 1e-3);
    }
}
