//! The experiment harness: regenerates every table and figure of the
//! TaxoRec paper on the synthetic dataset analogues.
//!
//! One binary per experiment (see `src/bin/`): `table1` … `table5`,
//! `fig3`, `fig5`, `fig6`. Criterion microbenchmarks (runtime claims of
//! §V-B) live in `benches/`.
//!
//! Scale, seeds, and epochs are controlled by environment variables so the
//! same binaries serve quick smoke runs and fuller reproductions:
//!
//! * `TAXOREC_SCALE` — `tiny` | `bench` (default) | `full`
//! * `TAXOREC_SEEDS` — number of seeds per cell (default 3)
//! * `TAXOREC_EPOCHS` — training epochs (default 60)

use taxorec_baselines::{zoo, CmlAgg, TrainOpts};
use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Dataset, Preset, Recommender, Scale, Split};
use taxorec_eval::{run_cell, CellStats};

/// Harness-wide configuration resolved from the environment.
#[derive(Clone, Debug)]
pub struct BenchProfile {
    /// Dataset scale.
    pub scale: Scale,
    /// Seeds per (model, dataset) cell.
    pub seeds: Vec<u64>,
    /// Training epochs for every model.
    pub epochs: usize,
    /// Total embedding dimensionality `D`.
    pub dim: usize,
    /// Tag-relevant dimensionality `D_t` for the tag-aware models.
    pub dim_tag: usize,
    /// GCN depth `L` for graph models and TaxoRec.
    pub gcn_layers: usize,
}

impl Default for BenchProfile {
    fn default() -> Self {
        Self {
            scale: Scale::Bench,
            seeds: vec![11, 22, 33],
            epochs: 60,
            dim: 32,
            dim_tag: 8,
            gcn_layers: 3,
        }
    }
}

impl BenchProfile {
    /// Reads `TAXOREC_SCALE` / `TAXOREC_SEEDS` / `TAXOREC_EPOCHS`.
    pub fn from_env() -> Self {
        let mut p = Self::default();
        match std::env::var("TAXOREC_SCALE").as_deref() {
            Ok("tiny") => p.scale = Scale::Tiny,
            Ok("full") => p.scale = Scale::Full,
            _ => {}
        }
        if let Ok(s) = std::env::var("TAXOREC_SEEDS") {
            if let Ok(n) = s.parse::<usize>() {
                p.seeds = (0..n.max(1)).map(|i| 11 * (i as u64 + 1)).collect();
            }
        }
        if let Ok(s) = std::env::var("TAXOREC_EPOCHS") {
            if let Ok(n) = s.parse::<usize>() {
                p.epochs = n.max(1);
            }
        }
        p
    }

    /// Baseline training options derived from this profile. Learning rate
    /// 25 with batch 1024 and batch-mean losses corresponds to a standard
    /// per-sample rate of ≈0.025 — the operating point the baseline grid
    /// search (see EXPERIMENTS.md) selected for the Euclidean models.
    pub fn train_opts(&self, seed: u64) -> TrainOpts {
        TrainOpts {
            dim: self.dim,
            epochs: self.epochs.max(100),
            lr: 25.0,
            batch: 1024,
            seed,
            ..TrainOpts::default()
        }
    }

    /// TaxoRec configuration derived from this profile. The total
    /// dimensionality matches the baselines (`dim_ir + dim_tag = dim`),
    /// mirroring the paper's D=64 / D_t=12 budget. Optimizer settings are
    /// the library defaults, which the validation grid search recorded in
    /// EXPERIMENTS.md selected uniformly across all four datasets.
    pub fn taxorec_config(&self, seed: u64) -> TaxoRecConfig {
        TaxoRecConfig {
            dim_ir: self.dim.saturating_sub(self.dim_tag).max(2),
            dim_tag: self.dim_tag,
            gcn_layers: self.gcn_layers,
            epochs: self.epochs,
            seed,
            ..TaxoRecConfig::default()
        }
    }

    /// Per-dataset TaxoRec configuration. The final grid search selected
    /// the same configuration for every dataset, so this currently
    /// forwards to [`BenchProfile::taxorec_config`]; the hook stays so
    /// per-dataset tuning can be reintroduced without touching call
    /// sites.
    pub fn taxorec_config_for(&self, _dataset_name: &str, seed: u64) -> TaxoRecConfig {
        self.taxorec_config(seed)
    }
}

/// Generates a preset dataset and its standard 60/20/20 split.
pub fn dataset_and_split(preset: Preset, scale: Scale) -> (Dataset, Split) {
    let d = generate_preset(preset, scale);
    let s = Split::standard(&d);
    (d, s)
}

/// Builds any model of the lineup (Table II names plus the Table III
/// ablations `CML+Agg`, `Hyper+CML`, `Hyper+CML+Agg`).
/// `dataset_name` selects the per-dataset TaxoRec tuning (pass `""` for
/// the shared default).
pub fn make_model(
    name: &str,
    profile: &BenchProfile,
    seed: u64,
    dataset_name: &str,
) -> Box<dyn Recommender> {
    let opts = profile.train_opts(seed);
    let cfg = profile.taxorec_config_for(dataset_name, seed);
    match name {
        "CML+Agg" => Box::new(CmlAgg::new(
            TrainOpts {
                lr: opts.lr.max(0.5),
                ..opts
            },
            profile.gcn_layers,
        )),
        "Hyper+CML" => Box::new(TaxoRec::new(cfg.ablation_hyper_cml())),
        "Hyper+CML+Agg" => Box::new(TaxoRec::new(cfg.ablation_hyper_cml_agg())),
        _ => zoo::by_name(name, &opts, &cfg, profile.gcn_layers)
            .unwrap_or_else(|| panic!("unknown model {name}")),
    }
}

/// A unit of work for the parallel runner: model × dataset.
#[derive(Clone, Debug)]
pub struct Job {
    /// Model name understood by [`make_model`].
    pub model: String,
    /// Index into the shared dataset list.
    pub dataset_idx: usize,
}

/// Runs every job across the shared [`taxorec_parallel`] pool (the
/// generalized successor of the worker pool that used to live here); each
/// worker constructs and trains its models locally. Results come back in
/// job order. Pool metrics land under the `parallel.*` telemetry names.
pub fn run_jobs(
    jobs: &[Job],
    datasets: &[(Dataset, Split)],
    profile: &BenchProfile,
    ks: &[usize],
) -> Vec<CellStats> {
    taxorec_parallel::par_map("bench.run_jobs", jobs.len(), |i| {
        let job = &jobs[i];
        let (dataset, split) = &datasets[job.dataset_idx];
        run_cell(
            &job.model,
            &|seed| make_model(&job.model, profile, seed, &dataset.name),
            dataset,
            split,
            ks,
            &profile.seeds,
        )
    })
}

/// Appends this process's full metric snapshot as one JSON line to
/// `BENCH_telemetry.json` in the working directory, labelled with the
/// producing binary: `{"bin":…,"generated_unix_ms":…,"telemetry":…}`.
/// Every bench binary calls this on exit so a full reproduction run leaves
/// a machine-readable record of training health and runtime next to its
/// tables.
pub fn write_bench_telemetry(bin: &str) {
    let mut line = String::with_capacity(2048);
    line.push_str("{\"bin\":");
    taxorec_telemetry::json::push_str_escaped(&mut line, bin);
    line.push_str(",\"generated_unix_ms\":");
    line.push_str(&taxorec_telemetry::sink::unix_ms().to_string());
    line.push_str(",\"telemetry\":");
    line.push_str(&taxorec_telemetry::snapshot());
    line.push('}');
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_telemetry.json")
    {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
        }
        Err(e) => eprintln!("[taxorec:warn] cannot write BENCH_telemetry.json: {e}"),
    }
}

/// Wall-clock helper for the runtime claims.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> BenchProfile {
        BenchProfile {
            scale: Scale::Tiny,
            seeds: vec![1],
            epochs: 3,
            dim: 10,
            dim_tag: 4,
            gcn_layers: 2,
        }
    }

    #[test]
    fn make_model_covers_full_lineup() {
        let p = tiny_profile();
        for name in zoo::TABLE2_ORDER {
            let m = make_model(name, &p, 1, "Ciao-synth");
            assert_eq!(m.name(), name);
        }
        for name in ["CML+Agg", "Hyper+CML", "Hyper+CML+Agg"] {
            let m = make_model(name, &p, 1, "");
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn run_jobs_parallel_matches_job_order() {
        let p = tiny_profile();
        let datasets = vec![dataset_and_split(Preset::Ciao, Scale::Tiny)];
        let jobs = vec![
            Job {
                model: "BPRMF".into(),
                dataset_idx: 0,
            },
            Job {
                model: "CML".into(),
                dataset_idx: 0,
            },
        ];
        let results = run_jobs(&jobs, &datasets, &p, &[10]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].model, "BPRMF");
        assert_eq!(results[1].model, "CML");
        assert!(results.iter().all(|r| r.recall_mean[0].is_finite()));
    }

    #[test]
    fn profile_env_parsing_defaults() {
        let p = BenchProfile::default();
        assert_eq!(p.seeds.len(), 3);
        assert_eq!(p.dim, 32);
        let cfg = p.taxorec_config(7);
        assert_eq!(cfg.dim_ir + cfg.dim_tag, p.dim);
    }
}
