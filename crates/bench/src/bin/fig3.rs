//! Regenerates **Fig. 3** — a quantitative counterpart of the paper's
//! Euclidean-vs-hyperbolic illustration: embed the planted Yelp tag
//! taxonomy in two dimensions in both spaces with the same training
//! budget, then compare (a) mean relative stress against the tree
//! distances and (b) the fraction of parent–child pairs where the *child*
//! lands closer to the origin than its parent (the "wrong hierarchy
//! arrangement" the paper's Fig. 3(a) depicts for Euclidean space).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use taxorec_autodiff::{Matrix, Tape};
use taxorec_bench::{write_bench_telemetry, BenchProfile};
use taxorec_core::optim;
use taxorec_data::{generate_preset, Preset, TagTree};
use taxorec_geometry::{poincare, vecops};

/// Tree distance between tags through their lowest common ancestor, with
/// the virtual root joining top-level tags.
fn tree_distance(tree: &TagTree, a: u32, b: u32) -> f64 {
    if a == b {
        return 0.0;
    }
    let mut anc_a: Vec<u32> = vec![a];
    anc_a.extend(tree.ancestors(a));
    let mut anc_b: Vec<u32> = vec![b];
    anc_b.extend(tree.ancestors(b));
    for (i, x) in anc_a.iter().enumerate() {
        if let Some(j) = anc_b.iter().position(|y| y == x) {
            return (i + j) as f64;
        }
    }
    // Through the virtual root.
    (anc_a.len() + anc_b.len()) as f64
}

struct EmbedOutcome {
    stress: f64,
    violations: f64,
}

/// Trains a 2-D embedding of the tags minimizing squared stress against
/// `scale`-scaled tree distances, in the chosen geometry.
fn embed(tree: &TagTree, hyperbolic: bool, scale: f64, epochs: usize, seed: u64) -> EmbedOutcome {
    let n = tree.n_tags();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut emb = Matrix::zeros(n, 2);
    for r in 0..n {
        let row = emb.row_mut(r);
        row[0] = (rng.random::<f64>() - 0.5) * 0.5;
        row[1] = (rng.random::<f64>() - 0.5) * 0.5;
    }
    // All pairs (n is small), fixed targets.
    let mut pa = Vec::new();
    let mut pb = Vec::new();
    let mut target = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            pa.push(a as usize);
            pb.push(b as usize);
            target.push(scale * tree_distance(tree, a, b));
        }
    }
    let pa = Arc::new(pa);
    let pb = Arc::new(pb);
    let t_mat = Matrix::from_vec(target.len(), 1, target.clone());
    // The Poincaré conformal factor shrinks effective steps away from the
    // origin; a larger nominal rate gives both geometries a comparable
    // optimization budget.
    let lr = if hyperbolic { 1.0 } else { 0.1 };
    for _ in 0..epochs {
        let mut tape = Tape::new();
        let e = tape.leaf(emb.clone());
        let ga = tape.gather_rows(e, Arc::clone(&pa));
        let gb = tape.gather_rows(e, Arc::clone(&pb));
        let d = if hyperbolic {
            tape.poincare_dist(ga, gb)
        } else {
            let diff = tape.sub(ga, gb);
            let sq = tape.row_sqnorm(diff);
            tape.sqrt(sq)
        };
        let t = tape.leaf(t_mat.clone());
        let err = tape.sub(d, t);
        let sq = tape.hadamard(err, err);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        if let Some(g) = grads.wrt(e) {
            if hyperbolic {
                optim::rsgd_poincare(&mut emb, g, lr);
            } else {
                optim::sgd(&mut emb, g, lr);
            }
        }
    }
    // Stress.
    let mut stress = 0.0;
    for i in 0..pa.len() {
        let d = if hyperbolic {
            poincare::distance(emb.row(pa[i]), emb.row(pb[i]))
        } else {
            vecops::sqdist(emb.row(pa[i]), emb.row(pb[i])).sqrt()
        };
        stress += ((d - target[i]) / target[i].max(1e-9)).abs();
    }
    stress /= pa.len() as f64;
    // Parent–child origin violations: hierarchy demands parents closer to
    // the origin (more general) than their children.
    let mut violations = 0.0;
    let mut pairs = 0usize;
    for t in 0..n as u32 {
        if let Some(p) = tree.parent(t) {
            pairs += 1;
            let rc = if hyperbolic {
                poincare::distance(&[0.0, 0.0], emb.row(t as usize))
            } else {
                vecops::norm(emb.row(t as usize))
            };
            let rp = if hyperbolic {
                poincare::distance(&[0.0, 0.0], emb.row(p as usize))
            } else {
                vecops::norm(emb.row(p as usize))
            };
            if rc < rp {
                violations += 1.0;
            }
        }
    }
    violations /= pairs.max(1) as f64;
    EmbedOutcome { stress, violations }
}

fn main() {
    let profile = BenchProfile::from_env();
    println!("Fig. 3 — Euclidean vs hyperbolic arrangement of the planted Yelp taxonomy (2-D)\n");
    let d = generate_preset(Preset::Yelp, profile.scale);
    let tree = d
        .taxonomy_truth
        .as_ref()
        .expect("synthetic dataset carries the tree");
    let epochs = 1500;
    // Edge length 1: leaves must sit ~2 apart while the deepest level
    // lives at radius ~4 — realizable in hyperbolic 2-space (circumference
    // grows as sinh r) but crowded in the Euclidean plane.
    let scale = 1.0;
    println!(
        "{:<12} {:>16} {:>28}",
        "space", "mean rel. stress", "parent-farther-than-child %"
    );
    for (label, hyperbolic) in [("Euclidean", false), ("Poincare", true)] {
        let mut stress = 0.0;
        let mut viol = 0.0;
        let seeds = [1u64, 2, 3];
        for &s in &seeds {
            let out = embed(tree, hyperbolic, scale, epochs, s);
            stress += out.stress / seeds.len() as f64;
            viol += out.violations / seeds.len() as f64;
        }
        println!("{label:<12} {stress:>16.4} {:>27.1}%", 100.0 * viol);
    }
    println!("\nExpected shape (paper Fig. 3): hyperbolic space yields lower distortion and");
    println!("fewer hierarchy violations than Euclidean space at the same dimensionality.");
    write_bench_telemetry("fig3");
}
