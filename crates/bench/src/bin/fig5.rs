//! Regenerates **Fig. 5** — Recall@10 of CML, HyperML, and TaxoRec as the
//! total embedding dimensionality `D` varies, on two dataset analogues.
//! The expected shape: all models improve with `D`; the hyperbolic models
//! (HyperML, TaxoRec) stay strong at small `D` while CML degrades.

use taxorec_bench::{dataset_and_split, make_model, BenchProfile};
use taxorec_data::Preset;
use taxorec_eval::{evaluate, TextTable};

fn main() {
    let profile = BenchProfile::from_env();
    let dims = [16usize, 32, 48, 64];
    let models = ["CML", "HyperML", "TaxoRec"];
    println!(
        "Fig. 5 — Recall@10 (%) vs embedding dimension D, scale {:?}, seed {}\n",
        profile.scale, profile.seeds[0]
    );
    for preset in [Preset::Ciao, Preset::AmazonCd] {
        let (dataset, split) = dataset_and_split(preset, profile.scale);
        let mut table = TextTable::new(&["D", "CML", "HyperML", "TaxoRec"]);
        // Parallel across (dim × model).
        let jobs: Vec<(usize, usize)> =
            (0..dims.len()).flat_map(|d| (0..models.len()).map(move |m| (d, m))).collect();
        let results: Vec<std::sync::Mutex<Option<f64>>> =
            jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let n_workers =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(jobs.len());
        let profile_ref = &profile;
        let dataset_ref = &dataset;
        let split_ref = &split;
        std::thread::scope(|scope| {
            for _ in 0..n_workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (di, mi) = jobs[i];
                    let mut p = profile_ref.clone();
                    p.dim = dims[di];
                    // TaxoRec reserves a fixed tag budget (paper: 12 of 64).
                    p.dim_tag = 8.min(dims[di] / 2);
                    let mut model = make_model(models[mi], &p, p.seeds[0], &dataset_ref.name);
                    model.fit(dataset_ref, split_ref);
                    let e = evaluate(model.as_ref(), split_ref, &[10]);
                    *results[i].lock().unwrap() = Some(100.0 * e.mean_recall(0));
                });
            }
        });
        for (di, &d) in dims.iter().enumerate() {
            let mut row = vec![d.to_string()];
            for mi in 0..models.len() {
                let v = results[di * models.len() + mi].lock().unwrap().expect("ran");
                row.push(format!("{v:.2}"));
            }
            table.row(row);
        }
        println!("=== {} ===", preset.name());
        println!("{}", table.render());
    }
}
