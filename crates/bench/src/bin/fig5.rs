//! Regenerates **Fig. 5** — Recall@10 of CML, HyperML, and TaxoRec as the
//! total embedding dimensionality `D` varies, on two dataset analogues.
//! The expected shape: all models improve with `D`; the hyperbolic models
//! (HyperML, TaxoRec) stay strong at small `D` while CML degrades.

use taxorec_bench::{dataset_and_split, make_model, write_bench_telemetry, BenchProfile};
use taxorec_data::Preset;
use taxorec_eval::{evaluate, TextTable};
use taxorec_parallel::par_map;

fn main() {
    let profile = BenchProfile::from_env();
    let dims = [16usize, 32, 48, 64];
    let models = ["CML", "HyperML", "TaxoRec"];
    println!(
        "Fig. 5 — Recall@10 (%) vs embedding dimension D, scale {:?}, seed {}\n",
        profile.scale, profile.seeds[0]
    );
    for preset in [Preset::Ciao, Preset::AmazonCd] {
        let (dataset, split) = dataset_and_split(preset, profile.scale);
        let mut table = TextTable::new(&["D", "CML", "HyperML", "TaxoRec"]);
        // Parallel across (dim × model) on the shared worker pool.
        let jobs: Vec<(usize, usize)> = (0..dims.len())
            .flat_map(|d| (0..models.len()).map(move |m| (d, m)))
            .collect();
        let results = par_map("fig5", jobs.len(), |i| {
            let (di, mi) = jobs[i];
            let mut p = profile.clone();
            p.dim = dims[di];
            // TaxoRec reserves a fixed tag budget (paper: 12 of 64).
            p.dim_tag = 8.min(dims[di] / 2);
            let mut model = make_model(models[mi], &p, p.seeds[0], &dataset.name);
            model.fit(&dataset, &split);
            let e = evaluate(model.as_ref(), &split, &[10]);
            100.0 * e.mean_recall(0)
        });
        for (di, &d) in dims.iter().enumerate() {
            let mut row = vec![d.to_string()];
            for mi in 0..models.len() {
                row.push(format!("{:.2}", results[di * models.len() + mi]));
            }
            table.row(row);
        }
        println!("=== {} ===", preset.name());
        println!("{}", table.render());
    }
    write_bench_telemetry("fig5");
}
