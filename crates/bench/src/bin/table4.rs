//! Regenerates **Table IV** — the hyperparameter study on the
//! Amazon-Book and Yelp analogues: K ∈ {2,3,4}, δ ∈ {0.25,0.5,0.75},
//! L ∈ {1..4}, m ∈ {0.1..0.4}, λ ∈ {0, 0.01, 0.1, 1.0}.

use taxorec_bench::{dataset_and_split, write_bench_telemetry, BenchProfile};
use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{Preset, Recommender};
use taxorec_eval::{evaluate, TextTable};
use taxorec_parallel::par_map;

struct Setting {
    label: String,
    patch: Box<dyn Fn(&mut TaxoRecConfig) + Send + Sync>,
}

fn settings() -> Vec<Setting> {
    let mut out: Vec<Setting> = Vec::new();
    for k in [2usize, 3, 4] {
        out.push(Setting {
            label: format!("K = {k}"),
            patch: Box::new(move |c| c.taxo_k = k),
        });
    }
    for delta in [0.1, 0.25, 0.5, 0.75] {
        out.push(Setting {
            label: format!("delta = {delta:.2}"),
            patch: Box::new(move |c| c.taxo_delta = delta),
        });
    }
    for l in [1usize, 2, 3, 4] {
        out.push(Setting {
            label: format!("L = {l}"),
            patch: Box::new(move |c| c.gcn_layers = l),
        });
    }
    // The paper sweeps m in {0.1..0.4} on unit-scale distances; our
    // embedding region reaches larger squared distances, so the grid is
    // scaled accordingly (see EXPERIMENTS.md).
    for m in [0.5, 1.0, 2.0, 4.0, 6.0] {
        out.push(Setting {
            label: format!("m = {m:.1}"),
            patch: Box::new(move |c| c.margin = m),
        });
    }
    for lambda in [0.0, 0.01, 0.1, 1.0] {
        out.push(Setting {
            label: format!("lambda = {lambda}"),
            patch: Box::new(move |c| c.lambda = lambda),
        });
    }
    out
}

fn main() {
    let profile = BenchProfile::from_env();
    let ks = [10usize];
    println!(
        "Table IV — hyperparameter study (%), scale {:?}, seed {}, {} epochs\n",
        profile.scale, profile.seeds[0], profile.epochs
    );
    let presets = [Preset::AmazonBook, Preset::Yelp];
    let datasets: Vec<_> = presets
        .iter()
        .map(|&p| dataset_and_split(p, profile.scale))
        .collect();
    let all = settings();
    // Parallel over (setting × dataset) on the shared worker pool.
    let jobs: Vec<(usize, usize)> = (0..all.len())
        .flat_map(|s| (0..presets.len()).map(move |d| (s, d)))
        .collect();
    let results = par_map("table4", jobs.len(), |i| {
        let (si, di) = jobs[i];
        let (dataset, split) = &datasets[di];
        let mut cfg = profile.taxorec_config_for(&dataset.name, profile.seeds[0]);
        (all[si].patch)(&mut cfg);
        let mut model = TaxoRec::new(cfg);
        model.fit(dataset, split);
        let e = evaluate(&model, split, &ks);
        (100.0 * e.mean_recall(0), 100.0 * e.mean_ndcg(0))
    });
    let cell = |si: usize, di: usize| -> (f64, f64) { results[si * presets.len() + di] };
    let mut table = TextTable::new(&[
        "Param.",
        "Recall@10 (Book)",
        "NDCG@10 (Book)",
        "Recall@10 (Yelp)",
        "NDCG@10 (Yelp)",
    ]);
    for (si, s) in all.iter().enumerate() {
        let (rb, nb) = cell(si, 0);
        let (ry, ny) = cell(si, 1);
        table.row(vec![
            s.label.clone(),
            format!("{rb:.2}"),
            format!("{nb:.2}"),
            format!("{ry:.2}"),
            format!("{ny:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("Paper optima: K=3, delta=0.5, L=3, m in [0.1,0.2], lambda in [0.1,1.0].");
    println!(
        "(delta and m operate on reproduction-scale score/distance ranges; see EXPERIMENTS.md.)"
    );
    write_bench_telemetry("table4");
}
