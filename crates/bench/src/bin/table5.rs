//! Regenerates **Table V** — interpretable case studies: for sample users
//! of the Amazon-Book and Yelp analogues, the 4 nearest tags in the
//! learned metric space and the top recommended items (RQ5).

use taxorec_bench::{dataset_and_split, write_bench_telemetry, BenchProfile};
use taxorec_core::TaxoRec;
use taxorec_data::{Preset, Recommender};
use taxorec_eval::top_k_indices;

fn main() {
    let profile = BenchProfile::from_env();
    println!(
        "Table V — tag-based user profiles and recommendations, scale {:?}\n",
        profile.scale
    );
    for preset in [Preset::AmazonBook, Preset::Yelp] {
        let (dataset, split) = dataset_and_split(preset, profile.scale);
        let mut model = TaxoRec::new(profile.taxorec_config_for(&dataset.name, profile.seeds[0]));
        model.fit(&dataset, &split);
        println!("=== {} ===", preset.name());
        // Pick the two users with the highest α (strongest tag affinity)
        // among users that have test items — the paper samples users whose
        // profiles are tag-explainable.
        let mut candidates: Vec<u32> = (0..dataset.n_users as u32)
            .filter(|&u| !split.test[u as usize].is_empty())
            .collect();
        candidates.sort_by(|&a, &b| {
            model.alphas()[b as usize]
                .partial_cmp(&model.alphas()[a as usize])
                .unwrap()
        });
        for &u in candidates.iter().take(2) {
            let tags = model.user_top_tags(u, 4);
            let tag_names: Vec<String> = tags
                .iter()
                .map(|&(t, _)| format!("<{}>", dataset.tag_names[t as usize]))
                .collect();
            let mut scores = model.scores_for_user(u);
            for &v in &split.train[u as usize] {
                scores[v as usize] = f64::NEG_INFINITY;
            }
            let recs = top_k_indices(&scores, 4);
            let rec_desc: Vec<String> = recs
                .iter()
                .map(|&v| {
                    let names: Vec<&str> = dataset.item_tags[v]
                        .iter()
                        .take(2)
                        .map(|&t| dataset.tag_names[t as usize].as_str())
                        .collect();
                    format!("item#{v} [{}]", names.join(", "))
                })
                .collect();
            println!("User{u} (alpha = {:.2})", model.alphas()[u as usize]);
            println!("  Tags : {}", tag_names.join("; "));
            println!("  Items: {}", rec_desc.join("; "));
        }
        println!();
    }
    println!("Read: the nearest tags of a user should be coherent (shared ancestors in");
    println!("the constructed taxonomy) and the recommended items should carry those tags.");
    write_bench_telemetry("table5");
}
