//! Microbenchmark of the fused hot-path kernels (DESIGN.md §12) against
//! the seed scalar implementations they replaced:
//!
//! * **train** — per-anchor squared-distance sweeps with a hinge-style
//!   fold, the shape of the pair-loop scoring work (pairs/sec);
//! * **eval**  — full-catalog two-channel scoring plus top-K selection,
//!   the per-user ranking path (users/sec).
//!
//! Each metric runs at `TAXOREC_THREADS` = 1 and 4 and reports the
//! naive and fused rates plus their ratio. Results overwrite
//! `BENCH_hotpath.json` in the working directory.
//!
//! `--assert-floor` exits non-zero when any fused rate falls below its
//! naive counterpart — the CI regression floor. Problem size is
//! overridable via `TAXOREC_HOTPATH_ITEMS` / `_USERS` / `_REPS`.

use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_bench::time_it;
use taxorec_core::init;
use taxorec_data::{select_top_k, TopKAccumulator};
use taxorec_geometry::batch::{fused_scores_multi, BlockCache, TagChannelMulti};
use taxorec_geometry::lorentz;

/// Tag-irrelevant spatial dims — the paper's D − D_t = 52 rounded up to
/// the full D = 64 budget the runtime claims of §V-B are made at.
const DIM_IR: usize = 64;
/// Tag-relevant spatial dims (paper D_t = 12).
const DIM_TAG: usize = 12;
/// Hinge margin of the fold in the train metric.
const MARGIN: f64 = 1.0;
/// Top-K selection width of the eval metric.
const TOP_K: usize = 10;
/// Users per batched ranking call in the fused eval path — the same
/// block size the production eval loop hands `top_k_block`.
const EVAL_USER_CHUNK: usize = 32;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// The shared fixture: user/item embeddings for both channels, flat
/// row-major, plus the fused caches built over the item sides.
struct Fixture {
    n_users: usize,
    n_items: usize,
    u_ir: Vec<f64>,
    u_tg: Vec<f64>,
    v_ir: Vec<f64>,
    v_tg: Vec<f64>,
    ir_cache: BlockCache,
    tg_cache: BlockCache,
    alphas: Vec<f64>,
}

impl Fixture {
    fn build(n_users: usize, n_items: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(0x7a_0f_ec);
        // std 0.8 spreads points from near the origin out to spatial
        // norms past the trainer's radius clip — the full numeric range
        // the kernels see in production.
        let u_ir = init::lorentz_matrix(&mut rng, n_users, DIM_IR, 0.8);
        let v_ir = init::lorentz_matrix(&mut rng, n_items, DIM_IR, 0.8);
        let u_tg = init::lorentz_matrix(&mut rng, n_users, DIM_TAG, 0.8);
        let v_tg = init::lorentz_matrix(&mut rng, n_items, DIM_TAG, 0.8);
        let ir_cache = BlockCache::build(v_ir.data(), DIM_IR + 1);
        let tg_cache = BlockCache::build(v_tg.data(), DIM_TAG + 1);
        let alphas = (0..n_users).map(|u| 0.5 + (u % 7) as f64 * 0.1).collect();
        Self {
            n_users,
            n_items,
            u_ir: u_ir.data().to_vec(),
            u_tg: u_tg.data().to_vec(),
            v_ir: v_ir.data().to_vec(),
            v_tg: v_tg.data().to_vec(),
            ir_cache,
            tg_cache,
            alphas,
        }
    }

    fn u_ir_row(&self, u: usize) -> &[f64] {
        &self.u_ir[u * (DIM_IR + 1)..(u + 1) * (DIM_IR + 1)]
    }

    fn u_tg_row(&self, u: usize) -> &[f64] {
        &self.u_tg[u * (DIM_TAG + 1)..(u + 1) * (DIM_TAG + 1)]
    }

    fn v_ir_row(&self, v: usize) -> &[f64] {
        &self.v_ir[v * (DIM_IR + 1)..(v + 1) * (DIM_IR + 1)]
    }

    fn v_tg_row(&self, v: usize) -> &[f64] {
        &self.v_tg[v * (DIM_TAG + 1)..(v + 1) * (DIM_TAG + 1)]
    }
}

/// Train-shaped work, seed scalar path: one scalar `distance_sq` per
/// pair, folded through a hinge against the anchor's first candidate.
fn train_naive(fx: &Fixture) -> f64 {
    let sums = taxorec_parallel::par_map("hotpath.train.naive", fx.n_users, |u| {
        let anchor = fx.u_ir_row(u);
        let d_pos = lorentz::distance_sq(anchor, fx.v_ir_row(u % fx.n_items));
        let mut acc = 0.0;
        for v in 0..fx.n_items {
            let d = lorentz::distance_sq(anchor, fx.v_ir_row(v));
            acc += (MARGIN + d_pos - d).max(0.0);
        }
        acc
    });
    sums.iter().sum()
}

/// Train-shaped work, fused path: one `distance_sq_block` sweep per
/// anchor into a per-worker scratch buffer, then the same hinge fold.
fn train_fused(fx: &Fixture) -> f64 {
    let sums = taxorec_parallel::par_map("hotpath.train.fused", fx.n_users, |u| {
        let anchor = fx.u_ir_row(u);
        let d_pos = lorentz::distance_sq(anchor, fx.v_ir_row(u % fx.n_items));
        taxorec_core::scratch::with_buf(fx.n_items, |d| {
            fx.ir_cache.distance_sq_block(anchor, 0, fx.n_items, d);
            let mut acc = 0.0;
            for &di in d.iter() {
                acc += (MARGIN + d_pos - di).max(0.0);
            }
            acc
        })
    });
    sums.iter().sum()
}

/// Eval-shaped work, seed scalar path: fresh score `Vec` per user, one
/// scalar two-channel distance pair per item, then top-K selection.
fn eval_naive(fx: &Fixture) -> f64 {
    let tops = taxorec_parallel::par_map("hotpath.eval.naive", fx.n_users, |u| {
        let urow_ir = fx.u_ir_row(u);
        let urow_tg = fx.u_tg_row(u);
        let alpha = fx.alphas[u];
        let mut scores = Vec::with_capacity(fx.n_items);
        for v in 0..fx.n_items {
            let mut g = lorentz::distance_sq(urow_ir, fx.v_ir_row(v));
            g += alpha * lorentz::distance_sq(urow_tg, fx.v_tg_row(v));
            scores.push(-g);
        }
        let top = select_top_k(&scores, TOP_K, |_| false);
        top.first().map(|&(i, _)| i as f64).unwrap_or(0.0)
    });
    tops.iter().sum()
}

/// Eval-shaped work, fused path: blocks of [`EVAL_USER_CHUNK`] users,
/// scored one [`FUSED_ITEM_CHUNK`]-wide catalogue slice at a time into
/// per-worker scratch buffers and ranked through per-user
/// [`TopKAccumulator`]s while each slice's scores are cache-hot —
/// mirroring the production `Recommender::top_k_block` streaming path.
///
/// [`FUSED_ITEM_CHUNK`]: taxorec_geometry::batch::FUSED_ITEM_CHUNK
fn eval_fused(fx: &Fixture) -> f64 {
    let chunk = taxorec_geometry::batch::FUSED_ITEM_CHUNK;
    let n_chunks = fx.n_users.div_ceil(EVAL_USER_CHUNK);
    let tops = taxorec_parallel::par_map("hotpath.eval.fused", n_chunks, |c| {
        let lo = c * EVAL_USER_CHUNK;
        let hi = (lo + EVAL_USER_CHUNK).min(fx.n_users);
        let b = hi - lo;
        let anchors_ir: Vec<&[f64]> = (lo..hi).map(|u| fx.u_ir_row(u)).collect();
        let anchors_tg: Vec<&[f64]> = (lo..hi).map(|u| fx.u_tg_row(u)).collect();
        let mut accs: Vec<TopKAccumulator> = (0..b).map(|_| TopKAccumulator::new(TOP_K)).collect();
        let buf_len = b * fx.n_items.min(chunk);
        taxorec_core::scratch::with_buf(buf_len, |scores| {
            taxorec_core::scratch::with_buf(buf_len, |scr| {
                let mut v0 = 0;
                while v0 < fx.n_items {
                    let v1 = (v0 + chunk).min(fx.n_items);
                    let m = v1 - v0;
                    fused_scores_multi(
                        &fx.ir_cache,
                        &anchors_ir,
                        Some(TagChannelMulti {
                            cache: &fx.tg_cache,
                            anchors: &anchors_tg,
                            alphas: &fx.alphas[lo..hi],
                        }),
                        v0,
                        v1,
                        &mut scr[..b * m],
                        &mut scores[..b * m],
                    );
                    for (pos, acc) in accs.iter_mut().enumerate() {
                        let row = &scores[pos * m..(pos + 1) * m];
                        for (i, &s) in row.iter().enumerate() {
                            acc.push((v0 + i) as u32, s);
                        }
                    }
                    v0 = v1;
                }
            });
        });
        let mut acc = 0.0;
        for a in accs {
            let top = a.into_sorted();
            acc += top.first().map(|&(i, _)| i as f64).unwrap_or(0.0);
        }
        acc
    });
    tops.iter().sum()
}

/// Times `reps` *interleaved* runs of the naive and fused workloads
/// (after one warm-up each) and returns both rates as
/// `units_per_rep / best_rep_seconds`. Interleaving pairs each naive
/// rep with a fused rep in the same time window, so noise on a shared
/// machine (other tenants, frequency shifts) hits both paths alike
/// instead of gifting whichever ran during the quiet period.
fn measure_pair(
    reps: usize,
    units_per_rep: f64,
    mut naive: impl FnMut() -> f64,
    mut fused: impl FnMut() -> f64,
) -> (f64, f64) {
    black_box(naive());
    black_box(fused());
    let mut best_naive = f64::INFINITY;
    let mut best_fused = f64::INFINITY;
    for _ in 0..reps {
        let (sum, dt) = time_it(&mut naive);
        black_box(sum);
        best_naive = best_naive.min(dt.as_secs_f64().max(1e-12));
        let (sum, dt) = time_it(&mut fused);
        black_box(sum);
        best_fused = best_fused.min(dt.as_secs_f64().max(1e-12));
    }
    (units_per_rep / best_naive, units_per_rep / best_fused)
}

struct Measurement {
    metric: &'static str,
    threads: usize,
    naive_rate: f64,
    fused_rate: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.fused_rate / self.naive_rate.max(1e-12)
    }
}

fn main() {
    let assert_floor = std::env::args().any(|a| a == "--assert-floor");
    let n_items = env_usize("TAXOREC_HOTPATH_ITEMS", 3584);
    let n_users = env_usize("TAXOREC_HOTPATH_USERS", 512);
    let reps = env_usize("TAXOREC_HOTPATH_REPS", 8);
    let fx = Fixture::build(n_users, n_items);
    let pairs_per_rep = (n_users * n_items) as f64;
    let users_per_rep = n_users as f64;

    let prev_threads = std::env::var("TAXOREC_THREADS").ok();
    let mut results: Vec<Measurement> = Vec::new();
    for &threads in &[1usize, 4] {
        std::env::set_var("TAXOREC_THREADS", threads.to_string());
        let (tn, tf) = measure_pair(
            reps,
            pairs_per_rep,
            || train_naive(&fx),
            || train_fused(&fx),
        );
        results.push(Measurement {
            metric: "train_pairs_per_sec",
            threads,
            naive_rate: tn,
            fused_rate: tf,
        });
        let (en, ef) = measure_pair(reps, users_per_rep, || eval_naive(&fx), || eval_fused(&fx));
        results.push(Measurement {
            metric: "eval_users_per_sec",
            threads,
            naive_rate: en,
            fused_rate: ef,
        });
    }
    match prev_threads {
        Some(v) => std::env::set_var("TAXOREC_THREADS", v),
        None => std::env::remove_var("TAXOREC_THREADS"),
    }

    let mut json = String::with_capacity(1024);
    json.push_str("{\"bin\":\"hotpath\",\"generated_unix_ms\":");
    json.push_str(&taxorec_telemetry::sink::unix_ms().to_string());
    json.push_str(&format!(
        ",\"n_users\":{n_users},\"n_items\":{n_items},\"dim_ir\":{DIM_IR},\"dim_tag\":{DIM_TAG},\"reps\":{reps},\"results\":["
    ));
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"metric\":\"{}\",\"threads\":{},\"naive\":{:.1},\"fused\":{:.1},\"speedup\":{:.3}}}",
            m.metric,
            m.threads,
            m.naive_rate,
            m.fused_rate,
            m.speedup()
        ));
    }
    json.push_str("]}");
    if let Err(e) = std::fs::write("BENCH_hotpath.json", format!("{json}\n")) {
        eprintln!("[taxorec:warn] cannot write BENCH_hotpath.json: {e}");
    }

    println!("hotpath microbenchmark ({n_users} users x {n_items} items, best of {reps} reps)");
    for m in &results {
        println!(
            "  {:<22} threads={} naive={:>14.0}/s fused={:>14.0}/s speedup={:.2}x",
            m.metric,
            m.threads,
            m.naive_rate,
            m.fused_rate,
            m.speedup()
        );
    }

    if assert_floor {
        for m in &results {
            assert!(
                m.fused_rate >= m.naive_rate,
                "fused {} regressed below naive at {} threads: {:.0}/s < {:.0}/s",
                m.metric,
                m.threads,
                m.fused_rate,
                m.naive_rate
            );
        }
        println!("floor assertion passed: fused >= naive on every metric");
    }
}
