//! Regenerates **Fig. 6** — excerpts of the automatically constructed tag
//! taxonomies on the Amazon-Book and Yelp analogues (RQ4), plus the
//! quantitative recovery scores against the planted ground truth that the
//! synthetic substitution makes possible.

use taxorec_bench::{dataset_and_split, write_bench_telemetry, BenchProfile};
use taxorec_core::TaxoRec;
use taxorec_data::{Preset, Recommender};
use taxorec_taxonomy::{
    ancestor_scores, random_coherence_baseline, random_pair_precision, sibling_coherence,
};

fn main() {
    let profile = BenchProfile::from_env();
    println!(
        "Fig. 6 — automatically constructed tag taxonomies, scale {:?}\n",
        profile.scale
    );
    for preset in [Preset::AmazonBook, Preset::Yelp] {
        let (dataset, split) = dataset_and_split(preset, profile.scale);
        let mut model = TaxoRec::new(profile.taxorec_config_for(&dataset.name, profile.seeds[0]));
        model.fit(&dataset, &split);
        let taxo = model.taxonomy().expect("taxonomy constructed");
        println!(
            "=== {} (constructed {} nodes, depth {}) ===",
            preset.name(),
            taxo.len(),
            taxo.depth()
        );
        print!("{}", taxo.render(&dataset.tag_names, 5));
        if let Some(truth) = &dataset.taxonomy_truth {
            let s = ancestor_scores(taxo, truth);
            let coh = sibling_coherence(taxo, truth);
            let rnd = random_pair_precision(truth);
            println!(
                "\nrecovery vs planted tree: ancestor P={:.3} R={:.3} F1={:.3} \
                 (random-pairing precision baseline {:.3}); sibling coherence {:.3} \
                 (random-grouping baseline {:.3})",
                s.precision,
                s.recall,
                s.f1,
                rnd,
                coh,
                random_coherence_baseline(truth)
            );
        }
        println!();
    }
    println!("Read: sibling tag sets should be semantically coherent (same top-level");
    println!("theme) and ancestor precision should sit far above the random baseline.");
    write_bench_telemetry("fig6");
}
