//! `taxorec-loadgen` — an open-loop load generator for the serving tier.
//!
//! Simulates a population of users hitting `/recommend` at a fixed
//! arrival rate: request `i` is *scheduled* at `start + i/rate`
//! regardless of how fast earlier requests completed, and latency is
//! measured from that scheduled instant — so a saturated server shows
//! its real queueing delay instead of the flattering closed-loop number
//! (no coordinated omission). A pool of client threads executes the
//! schedule; virtual user ids cycle through the simulated population and
//! map onto the model's id space, with `k` varied per user.
//!
//! ```text
//! taxorec-loadgen --model demo.taxo --users 1000 --rate 200 --duration 3
//! taxorec-loadgen --addr 127.0.0.1:7878 --users 10000 --rate 1000 --duration 5
//! taxorec-loadgen --model demo.taxo --sweep --out BENCH_serve.json
//! ```
//!
//! `--model` serves the artifact in-process on an ephemeral port (the
//! one-command CI shape) and annotates the report with server-side batch
//! telemetry; `--addr` targets any running server. `--sweep` runs the
//! standard 1k / 10k / 100k simulated-user populations (arrival rate =
//! population / think time) and writes the combined report. `--assert-floor`
//! exits non-zero when achieved throughput falls below the floor or any
//! response was non-2xx — the CI load-smoke gate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
taxorec-loadgen — open-loop load generator for the TaxoRec serving tier

USAGE:
  taxorec-loadgen (--model M.taxo | --addr HOST:PORT) [OPTIONS]

TARGET (exactly one):
  --model M.taxo     serve the artifact in-process on an ephemeral port
  --addr HOST:PORT   target an already-running taxorec-serve instance

LOAD SHAPE:
  --users N          simulated user population (default 1000); virtual
                     users cycle through the model's real id space
  --rate RPS         open-loop arrival rate (default: users / think)
  --think SECS       per-user think time when --rate is absent (default 10)
  --duration SECS    seconds of scheduled arrivals (default 5)
  --clients C        client threads executing the schedule (default 16)
  --k-max K          k varies per user in 1..=K (default 10)
  --sweep            run the standard 1k/10k/100k-user populations
  --ingest           every 4th arrival POSTs an /ingest interaction batch
                     (mixed with /recommend traffic) — target must run
                     with ingestion on (taxorec-serve serve --ingest);
                     batches reuse a small tag pool plus occasional
                     never-seen \"live-fresh-*\" names to exercise the
                     streaming taxonomy graft path
  --ingest-every N   override the /ingest arrival stride (default 4)
  --ingest-batch B   interactions per /ingest POST (default 8)

REPORT:
  --out FILE         write the JSON report here (default: stdout only;
                     --sweep defaults to BENCH_serve.json)
  --assert-floor R   exit non-zero if achieved rps < R or any non-2xx
  --allow-refused    connection-refused errors are counted (reported in
                     the `refused` field) but do not fail the floor —
                     for failover drills where a shard restarts mid-run
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("taxorec-loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{name} requires a value")),
    }
}

fn flag_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name)? {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("{name} {raw:?} is not a valid value")),
    }
}

/// One measured request: scheduled-arrival→response latency and status
/// (0 = transport error, with the failing phase recorded for the error
/// breakdown).
struct Sample {
    latency: Duration,
    status: u16,
    error: Option<&'static str>,
}

/// One completed run at a fixed population/rate.
struct RunReport {
    label: String,
    users: usize,
    target_rate: f64,
    duration_secs: f64,
    clients: usize,
    scheduled: usize,
    completed: usize,
    non_2xx: usize,
    /// Non-2xx responses by status code, e.g. `[(503, 4), (404, 1)]`.
    status_breakdown: Vec<(u16, usize)>,
    transport_errors: usize,
    /// Connection-refused subset of `transport_errors` (the target was
    /// restarting) — exempted from the floor under `--allow-refused`.
    refused: usize,
    achieved_rps: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    mean_ms: f64,
    /// Server-side batch stats over the run (in-process target only).
    batch: Option<BatchStats>,
}

struct BatchStats {
    batches: u64,
    requests: u64,
    mean_size: f64,
    max_size: f64,
    cache_hits: u64,
    cache_misses: u64,
    http_sheds: u64,
    batch_sheds: u64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Issues one `/recommend` request and measures from `scheduled` (the
/// open-loop arrival instant) to the full response being read.
fn one_request(addr: SocketAddr, user: u32, k: usize, scheduled: Instant) -> Sample {
    let result = (|| -> Result<u16, &'static str> {
        // Refused is its own phase: it is the signature of a target
        // restarting (failover drills), distinct from timeouts or
        // resets, and `--allow-refused` exempts exactly this bucket.
        let mut stream = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                "refused"
            } else {
                "connect"
            }
        })?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        write!(
            stream,
            "GET /recommend?user={user}&k={k} HTTP/1.1\r\nHost: loadgen\r\n\r\n"
        )
        .map_err(|_| "send")?;
        let mut response = Vec::with_capacity(1024);
        stream.read_to_end(&mut response).map_err(|_| "read")?;
        let head = std::str::from_utf8(&response).map_err(|_| "parse")?;
        head.split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or("parse")
    })();
    Sample {
        latency: scheduled.elapsed(),
        status: *result.as_ref().unwrap_or(&0),
        error: result.err(),
    }
}

/// Issues one `POST /ingest` batch: `batch` interactions from `user`
/// over a small item window, tagged from a bounded pool with an
/// occasional never-seen `live-fresh-*` name so the streaming graft
/// path (and a later drift rebuild) is actually exercised.
fn one_ingest(addr: SocketAddr, user: u32, seq: usize, batch: usize, scheduled: Instant) -> Sample {
    let mut body = String::with_capacity(64 * batch);
    body.push_str("{\"interactions\":[");
    for j in 0..batch {
        if j > 0 {
            body.push(',');
        }
        let item = (user as usize + j * 7) % 64;
        if (seq + j).is_multiple_of(64) {
            body.push_str(&format!(
                "{{\"user\":{user},\"item\":{item},\"tags\":[\"live-fresh-{seq}-{j}\"]}}"
            ));
        } else {
            let tag = (seq + j) % 24;
            body.push_str(&format!(
                "{{\"user\":{user},\"item\":{item},\"tags\":[\"live-{tag}\"]}}"
            ));
        }
    }
    body.push_str("]}");
    let result = (|| -> Result<u16, &'static str> {
        let mut stream = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                "refused"
            } else {
                "connect"
            }
        })?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        write!(
            stream,
            "POST /ingest HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .map_err(|_| "send")?;
        let mut response = Vec::with_capacity(256);
        stream.read_to_end(&mut response).map_err(|_| "read")?;
        let head = std::str::from_utf8(&response).map_err(|_| "parse")?;
        head.split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or("parse")
    })();
    Sample {
        latency: scheduled.elapsed(),
        status: *result.as_ref().unwrap_or(&0),
        error: result.err(),
    }
}

/// Reads `"users":N` off the target's `/healthz` so virtual users map
/// onto real model ids in both target modes.
fn model_users(addr: SocketAddr) -> Result<usize, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("healthz connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: loadgen\r\n\r\n")
        .map_err(|e| format!("healthz send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("healthz read: {e}"))?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(format!("target not healthy:\n{response}"));
    }
    let tag = "\"users\":";
    let at = response
        .find(tag)
        .ok_or_else(|| format!("no user count in healthz: {response}"))?;
    let rest = &response[at + tag.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|_| format!("bad user count in healthz: {response}"))
}

/// The shape of one open-loop run.
#[derive(Clone, Copy)]
struct LoadSpec<'a> {
    label: &'a str,
    /// Simulated user population (virtual ids cycle through it).
    users: usize,
    /// Real model id space virtual users map onto (modulo).
    n_model_users: usize,
    /// Open-loop arrival rate, requests per second.
    rate: f64,
    duration: Duration,
    clients: usize,
    k_max: usize,
    /// When > 0, every `ingest_every`-th arrival POSTs an `/ingest`
    /// batch instead of a `/recommend` query (0 = pure read traffic).
    ingest_every: usize,
    /// Interactions per `/ingest` POST.
    ingest_batch: usize,
}

/// Executes one open-loop run: `clients` threads share the arrival
/// schedule by index (client `c` runs arrivals `i ≡ c mod clients`),
/// each sleeping until its arrival's scheduled instant.
fn run_load(addr: SocketAddr, spec: LoadSpec<'_>) -> RunReport {
    let LoadSpec {
        label,
        users,
        n_model_users,
        rate,
        duration,
        clients,
        k_max,
        ingest_every,
        ingest_batch,
    } = spec;
    let scheduled = (rate * duration.as_secs_f64()).round().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now() + Duration::from_millis(50);
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut samples = Vec::with_capacity(scheduled / clients + 1);
            let mut i = c;
            while i < scheduled {
                let arrive_at = start + interval.mul_f64(i as f64);
                if let Some(wait) = arrive_at.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                // Virtual user v cycles the simulated population; the
                // model id and k derive from v so the same virtual user
                // always asks the same query (cacheable, like a real
                // repeat visitor) while the population spreads load.
                let v = i % users;
                let user = (v % n_model_users) as u32;
                let k = 1 + v % k_max;
                if ingest_every > 0 && i % ingest_every == 0 {
                    samples.push(one_ingest(addr, user, i, ingest_batch, arrive_at));
                } else {
                    samples.push(one_request(addr, user, k, arrive_at));
                }
                i += clients;
            }
            samples
        }));
    }
    let samples: Vec<Sample> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let completed = samples.iter().filter(|s| s.status != 0).count();
    let transport_errors = samples.len() - completed;
    if transport_errors > 0 {
        let mut by_phase: Vec<(&str, usize)> = Vec::new();
        for s in samples.iter().filter(|s| s.status == 0) {
            let phase = s.error.unwrap_or("unknown");
            match by_phase.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, n)) => *n += 1,
                None => by_phase.push((phase, 1)),
            }
        }
        let detail: Vec<String> = by_phase.iter().map(|(p, n)| format!("{p}: {n}")).collect();
        eprintln!("  transport errors by phase: {}", detail.join(", "));
    }
    let refused = samples
        .iter()
        .filter(|s| s.error == Some("refused"))
        .count();
    let non_2xx = samples
        .iter()
        .filter(|s| s.status != 0 && !(200..300).contains(&s.status))
        .count();
    let mut status_breakdown: Vec<(u16, usize)> = Vec::new();
    for s in &samples {
        if s.status != 0 && !(200..300).contains(&s.status) {
            match status_breakdown.iter_mut().find(|(c, _)| *c == s.status) {
                Some((_, n)) => *n += 1,
                None => status_breakdown.push((s.status, 1)),
            }
        }
    }
    status_breakdown.sort_unstable();
    if !status_breakdown.is_empty() {
        let detail: Vec<String> = status_breakdown
            .iter()
            .map(|(c, n)| format!("{c}: {n}"))
            .collect();
        eprintln!("  non-2xx by status: {}", detail.join(", "));
    }
    let mut ms: Vec<f64> = samples
        .iter()
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    ms.sort_by(|a, b| a.total_cmp(b));
    let mean = if ms.is_empty() {
        0.0
    } else {
        ms.iter().sum::<f64>() / ms.len() as f64
    };
    RunReport {
        label: label.to_string(),
        users,
        target_rate: rate,
        duration_secs: duration.as_secs_f64(),
        clients,
        scheduled,
        completed,
        non_2xx,
        status_breakdown,
        transport_errors,
        refused,
        achieved_rps: completed as f64 / wall,
        p50_ms: percentile(&ms, 0.50),
        p90_ms: percentile(&ms, 0.90),
        p99_ms: percentile(&ms, 0.99),
        max_ms: ms.last().copied().unwrap_or(0.0),
        mean_ms: mean,
        batch: None,
    }
}

/// Snapshot of the in-process batch/cache telemetry, for run deltas.
struct TelemetryBase {
    batches: u64,
    requests: u64,
    hits: u64,
    misses: u64,
    http_sheds: u64,
    batch_sheds: u64,
}

fn telemetry_base() -> TelemetryBase {
    TelemetryBase {
        batches: taxorec_telemetry::counter("serve.batch.batches").get(),
        requests: taxorec_telemetry::counter("serve.batch.requests").get(),
        hits: taxorec_telemetry::counter("serve.cache.hit").get(),
        misses: taxorec_telemetry::counter("serve.cache.miss").get(),
        http_sheds: taxorec_telemetry::counter("serve.http.shed").get(),
        batch_sheds: taxorec_telemetry::counter("serve.batch.shed").get(),
    }
}

fn batch_stats(base: &TelemetryBase) -> BatchStats {
    let batches = taxorec_telemetry::counter("serve.batch.batches").get() - base.batches;
    let requests = taxorec_telemetry::counter("serve.batch.requests").get() - base.requests;
    BatchStats {
        batches,
        requests,
        mean_size: if batches == 0 {
            0.0
        } else {
            requests as f64 / batches as f64
        },
        max_size: taxorec_telemetry::histogram("serve.batch.size").max(),
        cache_hits: taxorec_telemetry::counter("serve.cache.hit").get() - base.hits,
        cache_misses: taxorec_telemetry::counter("serve.cache.miss").get() - base.misses,
        http_sheds: taxorec_telemetry::counter("serve.http.shed").get() - base.http_sheds,
        batch_sheds: taxorec_telemetry::counter("serve.batch.shed").get() - base.batch_sheds,
    }
}

fn push_run_json(out: &mut String, r: &RunReport) {
    out.push_str(&format!(
        "{{\"label\":\"{}\",\"simulated_users\":{},\"target_rps\":{:.1},\
         \"duration_secs\":{:.1},\"clients\":{},\"scheduled\":{},\"completed\":{},\
         \"non_2xx\":{},\"status_breakdown\":{{{}}},\"transport_errors\":{},\
         \"refused\":{},\"achieved_rps\":{:.1},\
         \"latency_ms\":{{\"p50\":{:.3},\
         \"p90\":{:.3},\"p99\":{:.3},\"max\":{:.3},\"mean\":{:.3}}}",
        r.label,
        r.users,
        r.target_rate,
        r.duration_secs,
        r.clients,
        r.scheduled,
        r.completed,
        r.non_2xx,
        r.status_breakdown
            .iter()
            .map(|(c, n)| format!("\"{c}\":{n}"))
            .collect::<Vec<_>>()
            .join(","),
        r.transport_errors,
        r.refused,
        r.achieved_rps,
        r.p50_ms,
        r.p90_ms,
        r.p99_ms,
        r.max_ms,
        r.mean_ms,
    ));
    if let Some(b) = &r.batch {
        out.push_str(&format!(
            ",\"batch\":{{\"batches\":{},\"requests\":{},\"mean_size\":{:.2},\
             \"max_size\":{:.0},\"cache_hits\":{},\"cache_misses\":{},\
             \"http_sheds\":{},\"batch_sheds\":{}}}",
            b.batches,
            b.requests,
            b.mean_size,
            b.max_size,
            b.cache_hits,
            b.cache_misses,
            b.http_sheds,
            b.batch_sheds,
        ));
    }
    out.push('}');
}

fn run(args: &[String]) -> Result<bool, String> {
    let model_path = flag(args, "--model")?;
    let addr_arg = flag(args, "--addr")?;
    if model_path.is_some() == addr_arg.is_some() {
        return Err(format!("pass exactly one of --model / --addr\n\n{USAGE}"));
    }
    let users: usize = flag_parse(args, "--users", 1000)?;
    let think: f64 = flag_parse(args, "--think", 10.0)?;
    let duration = Duration::from_secs_f64(flag_parse(args, "--duration", 5.0)?);
    let clients: usize = flag_parse::<usize>(args, "--clients", 16)?.max(1);
    let k_max: usize = flag_parse::<usize>(args, "--k-max", 10)?.max(1);
    let sweep = args.iter().any(|a| a == "--sweep");
    let allow_refused = args.iter().any(|a| a == "--allow-refused");
    let ingest = args.iter().any(|a| a == "--ingest");
    let ingest_every: usize = if ingest {
        flag_parse::<usize>(args, "--ingest-every", 4)?.max(1)
    } else {
        0
    };
    let ingest_batch: usize = flag_parse::<usize>(args, "--ingest-batch", 8)?.max(1);
    let floor: Option<f64> = match flag(args, "--assert-floor")? {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--assert-floor {raw:?} is not a number"))?,
        ),
    };

    // Resolve the target. `--model` serves in-process and restarts the
    // server per run so each population starts with a cold response
    // cache (and its registry deltas isolate per-run batch stats);
    // `--addr` reuses one external server for every run.
    let external: Option<SocketAddr> = match addr_arg {
        Some(a) => Some(
            a.parse()
                .map_err(|_| format!("--addr {a:?} is not HOST:PORT"))?,
        ),
        None => None,
    };
    let start_server = || -> Result<Option<taxorec_serve::ServerHandle>, String> {
        match model_path {
            None => Ok(None),
            Some(path) => {
                let model = taxorec_serve::load(path).map_err(|e| format!("load {path}: {e}"))?;
                taxorec_serve::serve_with(
                    Arc::new(model),
                    "127.0.0.1:0",
                    taxorec_serve::ServeOptions::from_env(),
                )
                .map(Some)
                .map_err(|e| format!("bind: {e}"))
            }
        }
    };
    let n_model_users = {
        let probe = start_server()?;
        let addr = probe
            .as_ref()
            .map(|h| h.local_addr())
            .or(external)
            .expect("exactly one target");
        let n = model_users(addr)?;
        if let Some(h) = probe {
            h.shutdown();
        }
        eprintln!("target serves {n} model users");
        n
    };

    // The populations to run: one custom run, or the standard sweep.
    // Arrival rate defaults to population / think-time (each simulated
    // user asks every `think` seconds).
    let populations: Vec<(String, usize, f64)> = if sweep {
        [1_000usize, 10_000, 100_000]
            .into_iter()
            .map(|u| (format!("{}k_users", u / 1000), u, u as f64 / think))
            .collect()
    } else {
        let rate: f64 = flag_parse(args, "--rate", users as f64 / think)?;
        vec![("custom".to_string(), users, rate)]
    };

    let mut reports = Vec::new();
    for (label, pop, rate) in &populations {
        eprintln!(
            "run {label}: {pop} simulated users, {rate:.0} req/s for {:.1}s, {clients} clients",
            duration.as_secs_f64()
        );
        let server = start_server()?;
        let addr = server
            .as_ref()
            .map(|h| h.local_addr())
            .or(external)
            .expect("exactly one target");
        let base = telemetry_base();
        let mut report = run_load(
            addr,
            LoadSpec {
                label,
                users: *pop,
                n_model_users,
                rate: *rate,
                duration,
                clients,
                k_max,
                ingest_every,
                ingest_batch,
            },
        );
        if let Some(h) = server {
            report.batch = Some(batch_stats(&base));
            h.shutdown();
        }
        eprintln!(
            "  {:.0} rps achieved, p50 {:.2} ms, p99 {:.2} ms, {} non-2xx, {} transport errors / {}",
            report.achieved_rps,
            report.p50_ms,
            report.p99_ms,
            report.non_2xx,
            report.transport_errors,
            report.scheduled
        );
        reports.push(report);
    }

    let mut json = String::from("{\"bin\":\"loadgen\",\"generated_unix_ms\":");
    json.push_str(
        &std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0)
            .to_string(),
    );
    json.push_str(&format!(
        ",\"think_secs\":{think:.1},\"k_max\":{k_max},\"runs\":["
    ));
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        push_run_json(&mut json, r);
    }
    json.push_str("]}");
    println!("{json}");
    let out = flag(args, "--out")?
        .map(str::to_string)
        .or_else(|| sweep.then(|| "BENCH_serve.json".to_string()));
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }

    if let Some(floor) = floor {
        for r in &reports {
            if r.achieved_rps < floor {
                eprintln!(
                    "FLOOR VIOLATION: run {} achieved {:.1} rps < floor {floor}",
                    r.label, r.achieved_rps
                );
                return Ok(false);
            }
            // Under --allow-refused, connection-refused errors are
            // expected collateral of a failover drill (the target was
            // restarting) — reported, but not a floor failure. Every
            // other error class still fails.
            let fatal_transport = if allow_refused {
                r.transport_errors - r.refused
            } else {
                r.transport_errors
            };
            if r.non_2xx > 0 || fatal_transport > 0 {
                eprintln!(
                    "FLOOR VIOLATION: run {} had {} non-2xx responses and {} transport errors \
                     ({} refused{})",
                    r.label,
                    r.non_2xx,
                    r.transport_errors,
                    r.refused,
                    if allow_refused { ", exempted" } else { "" }
                );
                return Ok(false);
            }
            if allow_refused && r.refused > 0 {
                eprintln!(
                    "  run {}: {} connection-refused during failover (allowed)",
                    r.label, r.refused
                );
            }
        }
        eprintln!("floor ok: every run ≥ {floor} rps with zero non-2xx");
    }
    Ok(true)
}
