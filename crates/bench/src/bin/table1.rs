//! Regenerates **Table I** — statistics of the four benchmark datasets
//! (synthetic analogues; see DESIGN.md §5).

use taxorec_bench::{write_bench_telemetry, BenchProfile};
use taxorec_data::{generate_preset, Preset};
use taxorec_eval::TextTable;

fn main() {
    let profile = BenchProfile::from_env();
    println!(
        "Table I — statistics of the datasets (synthetic analogues, scale {:?})\n",
        profile.scale
    );
    let mut table = TextTable::new(&[
        "Dataset",
        "#User",
        "#Item",
        "#Interaction",
        "Density(%)",
        "#Tag",
        "TagDepth",
    ]);
    for preset in Preset::ALL {
        let d = generate_preset(preset, profile.scale);
        let s = d.stats();
        let depth = d
            .taxonomy_truth
            .as_ref()
            .map(|t| t.max_depth() + 1)
            .unwrap_or(0);
        table.row(vec![
            d.name.clone(),
            s.users.to_string(),
            s.items.to_string(),
            s.interactions.to_string(),
            format!("{:.3}", s.density_pct),
            s.tags.to_string(),
            depth.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference (real datasets): Ciao 5,180/8,836/104,905/0.229%/28;");
    println!("Amazon-CD 32,589/20,559/515,562/0.077%/331; Amazon-Book 79,368/62,385/4,614,162/0.094%/510;");
    println!("Yelp 97,462/48,294/2,242,997/0.048%/1138. The analogues preserve the");
    println!(
        "density ordering (Ciao > Book > CD > Yelp) and the tag-count/hierarchy-depth ordering."
    );
    write_bench_telemetry("table1");
}
