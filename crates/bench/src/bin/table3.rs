//! Regenerates **Table III** — the ablation study: CML, CML+Agg,
//! Hyper+CML, Hyper+CML+Agg, TaxoRec on the four dataset analogues.

use taxorec_bench::{dataset_and_split, run_jobs, write_bench_telemetry, BenchProfile, Job};
use taxorec_data::Preset;
use taxorec_eval::TextTable;

const ROWS: [&str; 5] = ["CML", "CML+Agg", "Hyper+CML", "Hyper+CML+Agg", "TaxoRec"];

fn main() {
    let profile = BenchProfile::from_env();
    let ks = [10usize, 20];
    println!(
        "Table III — ablation analysis (%), scale {:?}, {} seed(s), {} epochs\n",
        profile.scale,
        profile.seeds.len(),
        profile.epochs
    );
    let datasets: Vec<_> = Preset::ALL
        .iter()
        .map(|&p| dataset_and_split(p, profile.scale))
        .collect();
    for (di, preset) in Preset::ALL.iter().enumerate() {
        let jobs: Vec<Job> = ROWS
            .iter()
            .map(|&m| Job {
                model: m.to_string(),
                dataset_idx: di,
            })
            .collect();
        let results = run_jobs(&jobs, &datasets, &profile, &ks);
        let mut table =
            TextTable::new(&["Variant", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"]);
        for r in &results {
            table.row(vec![
                r.model.clone(),
                r.recall_cell(0),
                r.recall_cell(1),
                r.ndcg_cell(0),
                r.ndcg_cell(1),
            ]);
        }
        println!("=== {} ===", preset.name());
        println!("{}", table.render());
        // The paper's expected ordering within a dataset.
        let r10: Vec<f64> = results.iter().map(|r| r.recall_mean[0]).collect();
        println!(
            "orderings: Agg over CML {}, hyperbolic over Euclidean {}, taxonomy reg over none {}\n",
            check(r10[1] > r10[0] && r10[3] > r10[2]),
            check(r10[2] > r10[0] && r10[3] > r10[1]),
            check(r10[4] > r10[3]),
        );
    }
    write_bench_telemetry("table3");
}

fn check(ok: bool) -> &'static str {
    if ok {
        "OK"
    } else {
        "VIOLATED"
    }
}
