//! Benchmark of the hierarchical retrieval index (`taxorec-retrieval`)
//! against the exhaustive scoring path: per-query p50/p99 latency,
//! recall@10/@50 vs. the exact ground truth, mean candidates scored, and
//! batched throughput — per catalogue scale and per thread count.
//!
//! Each scale plants a clustered catalogue with
//! `taxorec_data::generate_embeddings`, converts the planted tag tree
//! into a `Taxonomy` for taxonomy-guided index construction, builds a
//! `TaxoIndex`, and measures with `taxorec_eval::evaluate_retrieval`
//! (which also verifies recall against the exhaustive ranking per
//! query). Results overwrite `BENCH_retrieval.json`.
//!
//! `--assert-floor` exits non-zero when any row has recall@10 < 0.95 or
//! speedup < 5x — the CI regression gate. `--retrieval beam:B`
//! overrides the measured beam width (default: the index's build-time
//! default). Scales come from `TAXOREC_RETRIEVAL_ITEMS` (comma-
//! separated, default `100000,1000000`); query count from
//! `TAXOREC_RETRIEVAL_QUERIES` (default 128).

use std::time::Instant;

use taxorec_data::{generate_embeddings, EmbedConfig};
use taxorec_eval::{evaluate_retrieval, RetrievalEval};
use taxorec_retrieval::{IndexConfig, ItemEmbeddings, RetrievalMode, TaxoIndex};
use taxorec_taxonomy::Taxonomy;

/// Recall cutoffs reported per row.
const KS: [usize; 2] = [10, 50];
/// Queries per parallel batch in the throughput measurement.
const BATCH_CHUNK: usize = 8;
/// CI floor: minimum recall@10 in beam mode.
const FLOOR_RECALL_AT_10: f64 = 0.95;
/// CI floor: minimum exhaustive-to-routed speedup in beam mode.
const FLOOR_SPEEDUP: f64 = 5.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn env_scales() -> Vec<usize> {
    let raw =
        std::env::var("TAXOREC_RETRIEVAL_ITEMS").unwrap_or_else(|_| "100000,1000000".to_string());
    let scales: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if scales.is_empty() {
        vec![100_000]
    } else {
        scales
    }
}

struct Row {
    n_items: usize,
    threads: usize,
    eval: RetrievalEval,
    batch_qps: f64,
}

/// Batched-throughput measurement: all queries fan out over the worker
/// pool in chunks, each worker running routed searches back to back.
fn batch_qps(index: &TaxoIndex, emb: &taxorec_data::SynthEmbeddings, beam: usize) -> f64 {
    let n = emb.alphas.len();
    let n_chunks = n.div_ceil(BATCH_CHUNK);
    let t0 = Instant::now();
    let checks = taxorec_parallel::par_map("bench.retrieval.batch", n_chunks, |c| {
        let lo = c * BATCH_CHUNK;
        let hi = (lo + BATCH_CHUNK).min(n);
        let mut found = 0usize;
        for q in lo..hi {
            let anchor = &emb.u_ir[q * emb.ambient_ir..(q + 1) * emb.ambient_ir];
            let tag = &emb.u_tg[q * emb.ambient_tg..(q + 1) * emb.ambient_tg];
            let (top, _) = index.search(anchor, Some((tag, emb.alphas[q])), beam, 10, &|_| false);
            found += top.len();
        }
        found
    });
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(
        checks.iter().sum::<usize>() > 0,
        "searches returned results"
    );
    n as f64 / secs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let assert_floor = args.iter().any(|a| a == "--assert-floor");
    let mode = match args.iter().position(|a| a == "--retrieval") {
        None => RetrievalMode::Beam(0),
        Some(i) => {
            let raw = args.get(i + 1).map(String::as_str).unwrap_or("");
            RetrievalMode::parse(raw).unwrap_or_else(|e| {
                eprintln!("taxorec-bench retrieval: --retrieval: {e}");
                std::process::exit(2);
            })
        }
    };
    let n_queries = env_usize("TAXOREC_RETRIEVAL_QUERIES", 128);
    let scales = env_scales();
    let mode_label = match mode {
        RetrievalMode::Beam(0) => "beam:default".to_string(),
        m => m.label(),
    };

    let prev_threads = std::env::var("TAXOREC_THREADS").ok();
    let mut rows: Vec<Row> = Vec::new();
    let mut build_secs: Vec<(usize, f64)> = Vec::new();
    for &n_items in &scales {
        let mut config = EmbedConfig::retrieval_bench(n_items);
        config.n_users = n_queries;
        println!("generating {n_items}-item planted catalogue ({n_queries} queries)…");
        let emb = generate_embeddings(&config);
        let taxonomy = Taxonomy::from_tag_tree(&emb.tag_tree);
        let items = ItemEmbeddings {
            v_ir: &emb.v_ir,
            ambient_ir: emb.ambient_ir,
            v_tg: Some(&emb.v_tg),
            ambient_tg: emb.ambient_tg,
        };
        let t0 = Instant::now();
        let index = TaxoIndex::build(
            &items,
            Some(&taxonomy),
            &emb.item_tags,
            &IndexConfig::default(),
        )
        .expect("index build");
        let built = t0.elapsed().as_secs_f64();
        build_secs.push((n_items, built));
        println!(
            "  index: {} nodes, {} leaves, depth {}, built in {built:.1}s",
            index.n_nodes(),
            index.n_leaves(),
            index.depth()
        );

        for &threads in &[1usize, 4] {
            std::env::set_var("TAXOREC_THREADS", threads.to_string());
            let eval = evaluate_retrieval(
                &index,
                &emb.u_ir,
                emb.ambient_ir,
                Some((&emb.u_tg, emb.ambient_tg, &emb.alphas)),
                mode,
                &KS,
            );
            let beam = match mode {
                RetrievalMode::Exact => 0,
                RetrievalMode::Beam(0) => index.default_beam(),
                RetrievalMode::Beam(b) => b,
            };
            let qps = batch_qps(&index, &emb, beam);
            rows.push(Row {
                n_items,
                threads,
                eval,
                batch_qps: qps,
            });
        }
    }
    match prev_threads {
        Some(v) => std::env::set_var("TAXOREC_THREADS", v),
        None => std::env::remove_var("TAXOREC_THREADS"),
    }

    let mut json = String::with_capacity(2048);
    json.push_str("{\"bin\":\"retrieval\",\"generated_unix_ms\":");
    json.push_str(&taxorec_telemetry::sink::unix_ms().to_string());
    json.push_str(&format!(
        ",\"mode\":\"{mode_label}\",\"queries\":{n_queries},\"builds\":["
    ));
    for (i, (n_items, secs)) in build_secs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"n_items\":{n_items},\"build_secs\":{secs:.2}}}"
        ));
    }
    json.push_str("],\"results\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let e = &row.eval;
        let recall = |k: usize| {
            e.recall_at
                .iter()
                .find(|&&(rk, _)| rk == k)
                .map(|&(_, r)| r)
                .unwrap_or(0.0)
        };
        json.push_str(&format!(
            "{{\"n_items\":{},\"threads\":{},\"recall_at_10\":{:.4},\"recall_at_50\":{:.4},\
             \"exact_p50_ms\":{:.3},\"exact_p99_ms\":{:.3},\"beam_p50_ms\":{:.3},\
             \"beam_p99_ms\":{:.3},\"speedup\":{:.2},\"mean_candidates\":{:.0},\
             \"batch_qps\":{:.0}}}",
            row.n_items,
            row.threads,
            recall(10),
            recall(50),
            e.exact_p50_ms,
            e.exact_p99_ms,
            e.routed_p50_ms,
            e.routed_p99_ms,
            e.speedup,
            e.mean_candidates,
            row.batch_qps,
        ));
    }
    json.push_str("]}");
    if let Err(e) = std::fs::write("BENCH_retrieval.json", format!("{json}\n")) {
        eprintln!("[taxorec:warn] cannot write BENCH_retrieval.json: {e}");
    }

    println!("retrieval benchmark ({mode_label} mode, {n_queries} queries)");
    for row in &rows {
        let e = &row.eval;
        println!(
            "  items={:>8} threads={} recall@10={:.3} recall@50={:.3} \
             exact p50={:.2}ms beam p50={:.2}ms p99={:.2}ms speedup={:.1}x qps={:.0}",
            row.n_items,
            row.threads,
            e.recall_at[0].1,
            e.recall_at[1].1,
            e.exact_p50_ms,
            e.routed_p50_ms,
            e.routed_p99_ms,
            e.speedup,
            row.batch_qps,
        );
    }

    if assert_floor {
        assert!(
            matches!(mode, RetrievalMode::Beam(_)),
            "--assert-floor gates beam mode; got {}",
            mode.label()
        );
        for row in &rows {
            let recall10 = row.eval.recall_at[0].1;
            assert!(
                recall10 >= FLOOR_RECALL_AT_10,
                "recall@10 floor broken at {} items, {} threads: {recall10:.4} < {FLOOR_RECALL_AT_10}",
                row.n_items,
                row.threads
            );
            assert!(
                row.eval.speedup >= FLOOR_SPEEDUP,
                "speedup floor broken at {} items, {} threads: {:.2}x < {FLOOR_SPEEDUP}x",
                row.n_items,
                row.threads,
                row.eval.speedup
            );
        }
        println!(
            "floor assertion passed: recall@10 >= {FLOOR_RECALL_AT_10}, speedup >= {FLOOR_SPEEDUP}x on every row"
        );
    }
}
