//! Regenerates **Table II** — overall Recall@10/20 and NDCG@10/20 of all
//! 15 methods on the four dataset analogues, with mean ± std over seeds,
//! best/second markers (`*best*` / `_second_`), and a Wilcoxon
//! signed-rank significance star for TaxoRec vs. the best baseline.

use taxorec_baselines::zoo::TABLE2_ORDER;
use taxorec_bench::{dataset_and_split, run_jobs, write_bench_telemetry, BenchProfile, Job};
use taxorec_data::Preset;
use taxorec_eval::{mark_best, wilcoxon_signed_rank, TextTable};

fn main() {
    let profile = BenchProfile::from_env();
    let ks = [10usize, 20];
    println!(
        "Table II — overall performance (%), scale {:?}, {} seed(s), {} epochs\n",
        profile.scale,
        profile.seeds.len(),
        profile.epochs
    );
    let datasets: Vec<_> = Preset::ALL
        .iter()
        .map(|&p| dataset_and_split(p, profile.scale))
        .collect();
    for (di, preset) in Preset::ALL.iter().enumerate() {
        let jobs: Vec<Job> = TABLE2_ORDER
            .iter()
            .map(|&m| Job {
                model: m.to_string(),
                dataset_idx: di,
            })
            .collect();
        let results = run_jobs(&jobs, &datasets, &profile, &ks);
        // Column-wise best/second markers.
        let mut table = TextTable::new(&["Method", "Recall@10", "Recall@20", "NDCG@10", "NDCG@20"]);
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 4];
        let mut cells: Vec<Vec<String>> = vec![Vec::new(); 4];
        for r in &results {
            columns[0].push(r.recall_mean[0]);
            columns[1].push(r.recall_mean[1]);
            columns[2].push(r.ndcg_mean[0]);
            columns[3].push(r.ndcg_mean[1]);
            cells[0].push(r.recall_cell(0));
            cells[1].push(r.recall_cell(1));
            cells[2].push(r.ndcg_cell(0));
            cells[3].push(r.ndcg_cell(1));
        }
        let marked: Vec<Vec<String>> = columns
            .iter()
            .zip(&cells)
            .map(|(v, c)| mark_best(v, c))
            .collect();
        // Wilcoxon: TaxoRec (last row) vs. the best *baseline* per-user
        // Recall@10 of the first seed.
        let taxo = results.last().expect("TaxoRec present");
        let best_baseline = results[..results.len() - 1]
            .iter()
            .max_by(|a, b| a.recall_mean[0].partial_cmp(&b.recall_mean[0]).unwrap())
            .expect("baselines present");
        let w = wilcoxon_signed_rank(
            &taxo.first_eval.user_recall(0),
            &best_baseline.first_eval.user_recall(0),
        );
        let star = if w.significant(0.05) { "*" } else { "" };
        for (i, r) in results.iter().enumerate() {
            let sig = if i == results.len() - 1 { star } else { "" };
            table.row(vec![
                format!("{}{}", r.model, sig),
                marked[0][i].clone(),
                marked[1][i].clone(),
                marked[2][i].clone(),
                marked[3][i].clone(),
            ]);
        }
        println!("=== {} ===", preset.name());
        println!("{}", table.render());
        println!(
            "TaxoRec vs best baseline ({}): Wilcoxon p = {:.4} ({}significant at 5%)\n",
            best_baseline.model,
            w.p_value,
            if w.significant(0.05) { "" } else { "not " }
        );
    }
    write_bench_telemetry("table2");
}
