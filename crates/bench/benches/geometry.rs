//! Microbenchmarks of the hyperbolic geometry kernels — the inner loops of
//! every training step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taxorec_geometry::{convert, klein, lorentz, poincare};

fn bench_geometry(c: &mut Criterion) {
    let dim = 32;
    let x: Vec<f64> = (0..dim).map(|i| 0.01 * (i as f64 + 1.0)).collect();
    let y: Vec<f64> = (0..dim).map(|i| -0.012 * (i as f64 + 1.0)).collect();
    let lx = lorentz::from_spatial(&x);
    let ly = lorentz::from_spatial(&y);

    c.bench_function("poincare_distance_d32", |b| {
        b.iter(|| poincare::distance(black_box(&x), black_box(&y)))
    });
    c.bench_function("lorentz_distance_d32", |b| {
        b.iter(|| lorentz::distance(black_box(&lx), black_box(&ly)))
    });
    c.bench_function("lorentz_exp_map_origin_d32", |b| {
        let mut out = vec![0.0; dim + 1];
        b.iter(|| lorentz::exp_map_origin(black_box(&x), &mut out))
    });
    c.bench_function("lorentz_log_map_origin_d32", |b| {
        let mut out = vec![0.0; dim];
        b.iter(|| lorentz::log_map_origin(black_box(&lx), &mut out))
    });
    c.bench_function("mobius_add_d32", |b| {
        let mut out = vec![0.0; dim];
        b.iter(|| poincare::mobius_add(black_box(&x), black_box(&y), &mut out))
    });
    c.bench_function("poincare_to_lorentz_d32", |b| {
        let mut out = vec![0.0; dim + 1];
        b.iter(|| convert::poincare_to_lorentz(black_box(&x), &mut out))
    });
    c.bench_function("einstein_midpoint_8pts_d32", |b| {
        let pts: Vec<Vec<f64>> = (0..8)
            .map(|k| x.iter().map(|v| v * (0.5 + 0.05 * k as f64)).collect())
            .collect();
        let refs: Vec<&[f64]> = pts.iter().map(Vec::as_slice).collect();
        let w = vec![1.0; 8];
        let mut out = vec![0.0; dim];
        b.iter(|| klein::einstein_midpoint(black_box(&refs), black_box(&w), &mut out))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_geometry
}
criterion_main!(benches);
