//! Microbenchmarks of the autodiff substrate: forward + backward of the
//! hyperbolic pipeline TaxoRec executes every minibatch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use taxorec_autodiff::{Csr, Matrix, Tape};

fn pipeline_once(
    emb: &Matrix,
    tags: &Matrix,
    adj: &Arc<Csr>,
    adj_t: &Arc<Csr>,
    item_tag: &Arc<Csr>,
    n_users: usize,
) -> f64 {
    let mut tape = Tape::new();
    let t_p = tape.leaf(tags.clone());
    let k = tape.poincare_to_klein(t_p);
    let mu = tape.einstein_midpoint(k, item_tag);
    let p = tape.klein_to_poincare(mu);
    let v_tg = tape.poincare_to_lorentz(p);
    let z_items = tape.lorentz_log_origin(v_tg);
    let e = tape.leaf(emb.clone());
    let z = tape.concat_rows(e, z_items);
    let z1 = tape.spmm_with_transpose(adj, Arc::clone(adj_t), z);
    let z2 = tape.spmm_with_transpose(adj, Arc::clone(adj_t), z1);
    let zs = tape.add(z1, z2);
    let out = tape.lorentz_exp_origin(zs);
    let users = tape.slice_rows(out, 0, n_users);
    let items = tape.slice_rows(out, n_users, z_items_rows(item_tag));
    let idx: Arc<Vec<usize>> = Arc::new((0..n_users.min(64)).collect());
    let gu = tape.gather_rows(users, Arc::clone(&idx));
    let gv = tape.gather_rows(
        items,
        Arc::new((0..n_users.min(64)).map(|i| i % 32).collect()),
    );
    let d = tape.lorentz_dist_sq(gu, gv);
    let loss = tape.mean_all(d);
    let grads = tape.backward(loss);
    grads.wrt(t_p).map(|g| g.max_abs()).unwrap_or(0.0)
}

fn z_items_rows(item_tag: &Arc<Csr>) -> usize {
    item_tag.rows()
}

fn bench_autodiff(c: &mut Criterion) {
    let n_users = 200;
    let n_items = 300;
    let n_tags = 60;
    let d = 8;
    let emb = {
        // Users in tangent coordinates (d columns).
        Matrix::full(n_users, d, 0.05)
    };
    let tags = Matrix::full(n_tags, d, 0.03);
    let adj_triplets: Vec<(usize, usize, f64)> = (0..(n_users + n_items))
        .flat_map(|i| [(i, i, 1.0), (i, (i * 7 + 3) % (n_users + n_items), 0.3)])
        .collect();
    let adj = Arc::new(Csr::from_triplets(
        n_users + n_items,
        n_users + n_items,
        &adj_triplets,
    ));
    let adj_t = Arc::new(adj.transpose());
    let it_triplets: Vec<(usize, usize, f64)> = (0..n_items)
        .flat_map(|v| [(v, v % n_tags, 1.0), (v, (v * 3 + 1) % n_tags, 1.0)])
        .collect();
    let item_tag = Arc::new(Csr::from_triplets(n_items, n_tags, &it_triplets));

    c.bench_function("autodiff_full_pipeline_fwd_bwd_500nodes", |b| {
        b.iter(|| {
            pipeline_once(
                black_box(&emb),
                black_box(&tags),
                &adj,
                &adj_t,
                &item_tag,
                n_users,
            )
        })
    });

    c.bench_function("spmm_500x500_d8", |b| {
        let x = Matrix::full(n_users + n_items, d, 0.1);
        b.iter(|| adj.matmul(black_box(&x)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_autodiff
}
criterion_main!(benches);
