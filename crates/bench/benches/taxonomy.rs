//! Microbenchmarks of taxonomy construction (the paper's §V-B claims the
//! O(S) construction cost is minor) — including the k-means seeding
//! ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use taxorec_data::{generate_preset, Preset, Scale};
use taxorec_taxonomy::{construct_taxonomy, poincare_kmeans, ConstructConfig, Seeding};

fn bench_taxonomy(c: &mut Criterion) {
    let dataset = generate_preset(Preset::Yelp, Scale::Tiny);
    let n_tags = dataset.n_tags;
    let dim = 8;
    let mut rng = StdRng::seed_from_u64(5);
    let emb: Vec<f64> = (0..n_tags * dim)
        .map(|_| (rng.random::<f64>() - 0.5) * 0.8)
        .collect();
    let all_tags: Vec<u32> = (0..n_tags as u32).collect();

    for seeding in [Seeding::PlusPlus, Seeding::Uniform] {
        c.bench_function(&format!("poincare_kmeans_{n_tags}tags_{seeding:?}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                poincare_kmeans(black_box(&emb), dim, &all_tags, 3, seeding, 30, &mut rng)
            })
        });
    }

    c.bench_function(&format!("construct_taxonomy_{n_tags}tags"), |b| {
        let cfg = ConstructConfig::default();
        b.iter(|| construct_taxonomy(black_box(&emb), dim, n_tags, &dataset.item_tags, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_taxonomy
}
criterion_main!(benches);
