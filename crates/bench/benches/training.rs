//! End-to-end training-cost benchmarks backing the paper's §V-B runtime
//! discussion: one epoch of TaxoRec (dominated by the GCN propagation)
//! versus one full taxonomy construction (claimed O(S) and minor), plus
//! the graph baselines for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use taxorec_bench::{dataset_and_split, make_model, BenchProfile};
use taxorec_data::{Preset, Scale};
use taxorec_taxonomy::{construct_taxonomy, ConstructConfig};

fn bench_training(c: &mut Criterion) {
    let profile = BenchProfile {
        scale: Scale::Tiny,
        seeds: vec![1],
        epochs: 1,
        dim: 32,
        dim_tag: 8,
        gcn_layers: 3,
    };
    let (dataset, split) = dataset_and_split(Preset::Ciao, Scale::Tiny);

    // Models whose constructors honor the 1-epoch profile (HGCF pins a
    // minimum epoch budget internally and is benchmarked via its own
    // binary instead).
    for name in ["TaxoRec", "Hyper+CML+Agg", "LightGCN", "CML"] {
        c.bench_function(&format!("{name}_fit_1epoch_ciao_tiny"), |b| {
            b.iter(|| {
                let mut m = make_model(name, &profile, 1, &dataset.name);
                m.fit(&dataset, &split);
            })
        });
    }

    // Taxonomy construction alone on the same data — the §V-B overhead.
    let dim = profile.dim_tag;
    let mut rng = StdRng::seed_from_u64(2);
    let emb: Vec<f64> = (0..dataset.n_tags * dim)
        .map(|_| (rng.random::<f64>() - 0.5) * 0.6)
        .collect();
    c.bench_function("taxonomy_construction_alone_ciao_tiny", |b| {
        let cfg = ConstructConfig::default();
        b.iter(|| construct_taxonomy(&emb, dim, dataset.n_tags, &dataset.item_tags, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_training
}
criterion_main!(benches);
