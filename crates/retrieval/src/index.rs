//! The taxonomy-as-index data structure and its beam-search router.
//!
//! # Layout
//!
//! A [`TaxoIndex`] is a tree over the item catalogue:
//!
//! * **Node ids are breadth-first**, so every node's children occupy one
//!   contiguous id range (`child_lo .. child_hi`) — the routing step
//!   scores all children of a frontier node with one fused
//!   `distance_block` sweep over the centroid cache.
//! * **Item slots are depth-first**: the catalogue is permuted
//!   (`item_ids[slot] = original item id`) so every node — leaf or
//!   internal — owns one contiguous slot range (`start .. end`).
//!   Candidate scoring sweeps dense ranges of the permuted item caches;
//!   no gather step exists anywhere on the query path.
//! * Every node carries an **Einstein-midpoint centroid** per channel
//!   (computed in the Poincaré ball, lifted back to the hyperboloid) and
//!   a **radius bound**: the maximum Lorentz distance from the centroid
//!   to any member item.
//!
//! # Construction
//!
//! The top level follows the *trained taxonomy*: items are grouped by
//! the top-level taxonomy branch in which their deepest-residing tag
//! lives (untagged items form a final catch-all group). Each group is
//! then refined by recursive Poincaré k-means over the item embeddings
//! until every leaf holds at most `max_leaf` items. Without a taxonomy
//! (or with a degenerate one) the k-means recursion starts at the root.
//!
//! # Routing
//!
//! The router keeps a beam of at most `B` frontier nodes, starting at
//! the root. Each round it replaces every internal frontier node by its
//! children, scores all new nodes with the *optimistic bound*
//!
//! ```text
//! bound(node) = −( max(0, d(u_ir, c_ir) − r_ir)²
//!                + α·max(0, d(u_tg, c_tg) − r_tg)² )
//! ```
//!
//! (an upper bound on any member's fused score, by the triangle
//! inequality, for α ≥ 0), keeps the best `B` (ties → lower node id),
//! and stops when the frontier is all leaves. Selected leaves' slot
//! ranges are fused-scored and merged through the order-independent
//! [`TopKAccumulator`].
//!
//! Because selection only ever *truncates* to the top `B` — and any
//! frontier is a set of disjoint non-empty subtrees, of which there are
//! at most `n_leaves` — a beam `B ≥ n_leaves` never truncates, selects
//! every leaf, and reproduces the exhaustive ranking bit-identically.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;
use taxorec_data::TopKAccumulator;
use taxorec_geometry::batch::{
    fused_scores_block, fused_scores_multi, BlockCache, TagChannel, TagChannelMulti,
    FUSED_ITEM_CHUNK,
};
use taxorec_geometry::{convert, lorentz, poincare};
use taxorec_taxonomy::{poincare_kmeans, Seeding, Taxonomy};

/// Hard cap on index depth: guards the k-means recursion against
/// pathological point sets that refuse to separate.
pub const INDEX_MAX_DEPTH: usize = 24;

/// Sentinel child pointer for leaves in [`IndexParts`].
const NO_CHILD: u32 = u32::MAX;

/// Build- and default-query-time parameters of a [`TaxoIndex`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexConfig {
    /// Nodes larger than this are split (leaves may still exceed it when
    /// k-means cannot separate the points).
    pub max_leaf: usize,
    /// k-means fan-out per split.
    pub branch: usize,
    /// Default beam width used when a query passes `beam = 0`. Set to
    /// `0` (the config default) to derive it from the realized tree at
    /// build time as `max(8, n_leaves/16)` — recall at a fixed beam
    /// decays as the leaf count grows, so the default widens with the
    /// catalogue while staying sub-linear.
    pub beam: usize,
    /// Lloyd iterations per split.
    pub kmeans_iters: usize,
    /// Base RNG seed; each node's k-means derives a per-node stream.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            max_leaf: 512,
            branch: 8,
            beam: 0,
            kmeans_iters: 12,
            seed: 0x7461786f,
        }
    }
}

/// Borrowed item embedding matrices the index is built over (and
/// rebuilt over on checkpoint load): flat row-major Lorentz points.
#[derive(Clone, Copy)]
pub struct ItemEmbeddings<'a> {
    /// Interaction-relevant channel, `n_items × ambient_ir`.
    pub v_ir: &'a [f64],
    /// Ambient (spatial + 1) dimension of `v_ir` rows.
    pub ambient_ir: usize,
    /// Optional tag-relevant channel, `n_items × ambient_tg`.
    pub v_tg: Option<&'a [f64]>,
    /// Ambient dimension of `v_tg` rows (ignored when `v_tg` is None).
    pub ambient_tg: usize,
}

impl<'a> ItemEmbeddings<'a> {
    fn n_items(&self) -> usize {
        self.v_ir.len() / self.ambient_ir
    }

    fn check(&self) -> Result<(), String> {
        if self.ambient_ir < 2 {
            return Err("ambient_ir must be >= 2".into());
        }
        if self.v_ir.is_empty() || !self.v_ir.len().is_multiple_of(self.ambient_ir) {
            return Err("v_ir is empty or not a whole number of rows".into());
        }
        if let Some(tg) = self.v_tg {
            if self.ambient_tg < 2 {
                return Err("ambient_tg must be >= 2".into());
            }
            if tg.len() != self.n_items() * self.ambient_tg {
                return Err("v_tg row count differs from v_ir".into());
            }
        }
        Ok(())
    }
}

/// The serializable structure of a [`TaxoIndex`]: everything except the
/// block caches, which are rebuilt from the model's item embeddings on
/// load (so `.taxo` artifacts store the tree once, not the catalogue
/// twice). Node arrays are parallel, indexed by breadth-first node id.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexParts {
    /// Build configuration (also carries the default beam width).
    pub config: IndexConfig,
    /// Catalogue size the index was built for.
    pub n_items: usize,
    /// Ambient dimension of the ir channel.
    pub ambient_ir: usize,
    /// Ambient dimension of the tag channel, `0` when absent.
    pub ambient_tg: usize,
    /// First child id per node, [`u32::MAX`] for leaves.
    pub child_lo: Vec<u32>,
    /// One past the last child id per node, `0` for leaves.
    pub child_hi: Vec<u32>,
    /// First item slot per node.
    pub start: Vec<u32>,
    /// One past the last item slot per node.
    pub end: Vec<u32>,
    /// Depth per node (root = 0).
    pub level: Vec<u32>,
    /// Slot → original item id permutation.
    pub item_ids: Vec<u32>,
    /// Node centroids, ir channel, `n_nodes × ambient_ir` (Lorentz).
    pub cent_ir: Vec<f64>,
    /// Node centroids, tag channel, `n_nodes × ambient_tg` (empty when
    /// the channel is absent).
    pub cent_tg: Vec<f64>,
    /// Max Lorentz distance centroid → member, ir channel, per node.
    pub radius_ir: Vec<f64>,
    /// Max Lorentz distance centroid → member, tag channel, per node.
    pub radius_tg: Vec<f64>,
}

impl IndexParts {
    /// Number of tree nodes.
    pub fn n_nodes(&self) -> usize {
        self.child_lo.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.child_lo.iter().filter(|&&c| c == NO_CHILD).count()
    }

    /// Maximum node depth (root = 0).
    pub fn depth(&self) -> usize {
        self.level.iter().copied().max().unwrap_or(0) as usize
    }

    fn is_leaf(&self, n: usize) -> bool {
        self.child_lo[n] == NO_CHILD
    }

    /// Structural validation: parallel-array lengths, child/slot range
    /// nesting, and that `item_ids` is a permutation of the catalogue.
    pub fn validate(&self) -> Result<(), String> {
        let n_nodes = self.child_lo.len();
        if n_nodes == 0 {
            return Err("index has no nodes".into());
        }
        for (name, len) in [
            ("child_hi", self.child_hi.len()),
            ("start", self.start.len()),
            ("end", self.end.len()),
            ("level", self.level.len()),
            ("radius_ir", self.radius_ir.len()),
            ("radius_tg", self.radius_tg.len()),
        ] {
            if len != n_nodes {
                return Err(format!(
                    "index array {name} has {len} entries, want {n_nodes}"
                ));
            }
        }
        if self.ambient_ir < 2 {
            return Err("index ambient_ir must be >= 2".into());
        }
        if self.config.beam == 0 {
            return Err("index default beam must be >= 1".into());
        }
        if self.cent_ir.len() != n_nodes * self.ambient_ir {
            return Err("cent_ir size mismatch".into());
        }
        if self.ambient_tg == 0 {
            if !self.cent_tg.is_empty() {
                return Err("cent_tg present but ambient_tg is 0".into());
            }
        } else if self.cent_tg.len() != n_nodes * self.ambient_tg {
            return Err("cent_tg size mismatch".into());
        }
        if self.item_ids.len() != self.n_items {
            return Err("item_ids length differs from n_items".into());
        }
        let mut seen = vec![false; self.n_items];
        for &v in &self.item_ids {
            let slot = v as usize;
            if slot >= self.n_items || seen[slot] {
                return Err("item_ids is not a permutation of the catalogue".into());
            }
            seen[slot] = true;
        }
        if self.start[0] != 0 || self.end[0] as usize != self.n_items || self.level[0] != 0 {
            return Err("root does not cover the full catalogue".into());
        }
        for n in 0..n_nodes {
            if self.start[n] > self.end[n] || self.end[n] as usize > self.n_items {
                return Err(format!("node {n} has an invalid slot range"));
            }
            if !self.radius_ir[n].is_finite() || self.radius_ir[n] < 0.0 {
                return Err(format!("node {n} has an invalid ir radius"));
            }
            if !self.radius_tg[n].is_finite() || self.radius_tg[n] < 0.0 {
                return Err(format!("node {n} has an invalid tag radius"));
            }
            if self.is_leaf(n) {
                if self.start[n] == self.end[n] {
                    return Err(format!("leaf {n} is empty"));
                }
                continue;
            }
            let (lo, hi) = (self.child_lo[n] as usize, self.child_hi[n] as usize);
            if lo <= n || hi <= lo || hi > n_nodes {
                return Err(format!("node {n} has an invalid child range"));
            }
            // Children partition the parent's slot range in order.
            let mut cursor = self.start[n];
            for c in lo..hi {
                if self.start[c] != cursor {
                    return Err(format!("child {c} does not continue node {n}'s range"));
                }
                if self.level[c] != self.level[n] + 1 {
                    return Err(format!("child {c} has a non-consecutive level"));
                }
                cursor = self.end[c];
            }
            if cursor != self.end[n] {
                return Err(format!("children of node {n} do not cover its range"));
            }
        }
        Ok(())
    }

    /// Patches newly appended catalogue items into the tree without a
    /// rebuild (the streaming-ingestion fast path).
    ///
    /// `items` must be the *full* post-growth embedding table; rows
    /// `self.n_items..` are the new items. They are assigned the tail
    /// slots of the **rightmost spine** (root → last child → … → leaf):
    /// every spine node's slot range already ends at the old catalogue
    /// size, so extending those ranges — and only those — preserves the
    /// children-partition invariant exactly. Spine radii are enlarged to
    /// keep the optimistic routing bound valid; centroids are left
    /// untouched (they are summaries, not invariants — the periodic
    /// full rebuild re-tightens them). Beam routing therefore stays
    /// *correct* after a patch, merely less selective along one spine.
    ///
    /// Returns the number of items appended. Pre-flight errors leave
    /// the parts unchanged; the trailing [`IndexParts::validate`] is a
    /// self-check and cannot fail for parts that validated beforehand.
    pub fn append_items(&mut self, items: &ItemEmbeddings<'_>) -> Result<usize, String> {
        items.check()?;
        let total = items.v_ir.len() / items.ambient_ir;
        if total < self.n_items {
            return Err(format!(
                "embedding table has {total} rows, fewer than the {} already indexed",
                self.n_items
            ));
        }
        if items.ambient_ir != self.ambient_ir {
            return Err("ambient_ir differs from the index".into());
        }
        if self.ambient_tg != 0 && items.v_tg.is_none() {
            return Err("index has a tag channel but the embeddings do not".into());
        }
        if self.ambient_tg != 0 && items.ambient_tg != self.ambient_tg {
            return Err("ambient_tg differs from the index".into());
        }
        let n_new = total - self.n_items;
        if n_new == 0 {
            return Ok(0);
        }
        // Rightmost spine: the unique root→leaf path whose slot ranges
        // all end at the old catalogue size.
        let mut spine = vec![0usize];
        while !self.is_leaf(*spine.last().unwrap()) {
            spine.push(self.child_hi[*spine.last().unwrap()] as usize - 1);
        }
        debug_assert!(spine.iter().all(|&s| self.end[s] as usize == self.n_items));
        for &s in &spine {
            self.end[s] += n_new as u32;
            let cent = &self.cent_ir[s * self.ambient_ir..(s + 1) * self.ambient_ir];
            for i in self.n_items..total {
                let row = &items.v_ir[i * self.ambient_ir..(i + 1) * self.ambient_ir];
                self.radius_ir[s] = self.radius_ir[s].max(lorentz::distance(cent, row));
            }
            if self.ambient_tg != 0 {
                let cent = &self.cent_tg[s * self.ambient_tg..(s + 1) * self.ambient_tg];
                let v_tg = items.v_tg.unwrap();
                for i in self.n_items..total {
                    let row = &v_tg[i * self.ambient_tg..(i + 1) * self.ambient_tg];
                    self.radius_tg[s] = self.radius_tg[s].max(lorentz::distance(cent, row));
                }
            }
        }
        self.item_ids.extend(self.n_items as u32..total as u32);
        self.n_items = total;
        self.validate()?;
        Ok(n_new)
    }
}

/// Per-query routing statistics (also surfaced by serve telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Effective beam width used.
    pub beam: usize,
    /// Leaves selected by the router.
    pub leaves: usize,
    /// Items fused-scored (before seen-item exclusion).
    pub candidates: usize,
}

/// One intermediate node during construction.
struct BuildNode {
    level: usize,
    members: Vec<u32>,
    child_lo: u32,
    child_hi: u32,
}

/// The retrieval index: serializable structure ([`IndexParts`]) plus the
/// permuted item caches and centroid caches the fused kernels sweep.
pub struct TaxoIndex {
    parts: IndexParts,
    items_ir: BlockCache,
    items_tg: Option<BlockCache>,
    cent_ir: BlockCache,
    cent_tg: Option<BlockCache>,
}

impl TaxoIndex {
    /// Builds an index over the catalogue: taxonomy top-level grouping,
    /// recursive Poincaré k-means refinement, Einstein-midpoint
    /// centroids, radius bounds, and the permuted block caches.
    /// Deterministic for a fixed config.
    pub fn build(
        items: &ItemEmbeddings<'_>,
        taxonomy: Option<&Taxonomy>,
        item_tags: &[Vec<u32>],
        config: &IndexConfig,
    ) -> Result<Self, String> {
        items.check()?;
        let n = items.n_items();
        let max_leaf = config.max_leaf.max(1);
        let branch = config.branch.max(2);

        // k-means and centroids run in the Poincaré ball; convert once.
        let dim_ir = items.ambient_ir - 1;
        let mut poi_ir = vec![0.0; n * dim_ir];
        for i in 0..n {
            convert::lorentz_to_poincare(
                &items.v_ir[i * items.ambient_ir..(i + 1) * items.ambient_ir],
                &mut poi_ir[i * dim_ir..(i + 1) * dim_ir],
            );
        }

        // --- Tree construction (breadth-first ids). ---
        let mut nodes: Vec<BuildNode> = vec![BuildNode {
            level: 0,
            members: (0..n as u32).collect(),
            child_lo: NO_CHILD,
            child_hi: 0,
        }];
        let mut queue: VecDeque<usize> = VecDeque::new();
        match taxonomy.and_then(|t| taxonomy_groups(t, item_tags, n)) {
            Some(groups) => {
                nodes[0].child_lo = 1;
                nodes[0].child_hi = (1 + groups.len()) as u32;
                for members in groups {
                    queue.push_back(nodes.len());
                    nodes.push(BuildNode {
                        level: 1,
                        members,
                        child_lo: NO_CHILD,
                        child_hi: 0,
                    });
                }
            }
            None => queue.push_back(0),
        }
        while let Some(id) = queue.pop_front() {
            let size = nodes[id].members.len();
            let level = nodes[id].level;
            if size <= max_leaf || level >= INDEX_MAX_DEPTH {
                continue; // leaf
            }
            let k = branch.min(size);
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((id as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            );
            let res = poincare_kmeans(
                &poi_ir,
                dim_ir,
                &nodes[id].members,
                k,
                Seeding::PlusPlus,
                config.kmeans_iters.max(1),
                &mut rng,
            );
            let mut parts: Vec<Vec<u32>> = vec![Vec::new(); k];
            for (pos, &item) in nodes[id].members.iter().enumerate() {
                parts[res.assignment[pos]].push(item);
            }
            parts.retain(|p| !p.is_empty());
            if parts.len() <= 1 {
                continue; // no separation: keep as an oversized leaf
            }
            nodes[id].child_lo = nodes.len() as u32;
            nodes[id].child_hi = (nodes.len() + parts.len()) as u32;
            for members in parts {
                queue.push_back(nodes.len());
                nodes.push(BuildNode {
                    level: level + 1,
                    members,
                    child_lo: NO_CHILD,
                    child_hi: 0,
                });
            }
        }
        let n_nodes = nodes.len();

        // --- Depth-first slot assignment: contiguous ranges per node. ---
        let mut item_ids: Vec<u32> = Vec::with_capacity(n);
        let mut start = vec![0u32; n_nodes];
        let mut end = vec![0u32; n_nodes];
        assign_slots(&nodes, 0, &mut item_ids, &mut start, &mut end);
        debug_assert_eq!(item_ids.len(), n);

        // --- Centroids and radius bounds, one parallel job per node. ---
        let has_tg = items.v_tg.is_some();
        let dim_tg = if has_tg { items.ambient_tg - 1 } else { 0 };
        let mut poi_tg = vec![0.0; n * dim_tg];
        if let Some(v_tg) = items.v_tg {
            for i in 0..n {
                convert::lorentz_to_poincare(
                    &v_tg[i * items.ambient_tg..(i + 1) * items.ambient_tg],
                    &mut poi_tg[i * dim_tg..(i + 1) * dim_tg],
                );
            }
        }
        let summaries = taxorec_parallel::par_map("retrieval.build.centroids", n_nodes, |id| {
            let members = &nodes[id].members;
            let (c_ir, r_ir) = node_summary(members, &poi_ir, dim_ir, items.v_ir, items.ambient_ir);
            let (c_tg, r_tg) = match items.v_tg {
                Some(v_tg) => node_summary(members, &poi_tg, dim_tg, v_tg, items.ambient_tg),
                None => (Vec::new(), 0.0),
            };
            (c_ir, r_ir, c_tg, r_tg)
        });
        let mut cent_ir = Vec::with_capacity(n_nodes * items.ambient_ir);
        let mut cent_tg = Vec::with_capacity(if has_tg {
            n_nodes * items.ambient_tg
        } else {
            0
        });
        let mut radius_ir = Vec::with_capacity(n_nodes);
        let mut radius_tg = Vec::with_capacity(n_nodes);
        for (c_ir, r_ir, c_tg, r_tg) in summaries {
            cent_ir.extend_from_slice(&c_ir);
            cent_tg.extend_from_slice(&c_tg);
            radius_ir.push(r_ir);
            radius_tg.push(r_tg);
        }

        let n_leaves_built = nodes.iter().filter(|b| b.child_lo == NO_CHILD).count();
        let parts = IndexParts {
            config: IndexConfig {
                max_leaf,
                branch,
                beam: if config.beam == 0 {
                    n_leaves_built.div_ceil(16).max(8)
                } else {
                    config.beam
                },
                kmeans_iters: config.kmeans_iters.max(1),
                seed: config.seed,
            },
            n_items: n,
            ambient_ir: items.ambient_ir,
            ambient_tg: if has_tg { items.ambient_tg } else { 0 },
            child_lo: nodes.iter().map(|b| b.child_lo).collect(),
            child_hi: nodes.iter().map(|b| b.child_hi).collect(),
            start,
            end,
            level: nodes.iter().map(|b| b.level as u32).collect(),
            item_ids,
            cent_ir,
            cent_tg,
            radius_ir,
            radius_tg,
        };
        Self::from_parts(parts, items)
    }

    /// Rebuilds a queryable index from its serialized structure and the
    /// model's item embeddings (validates both before touching caches).
    pub fn from_parts(parts: IndexParts, items: &ItemEmbeddings<'_>) -> Result<Self, String> {
        items.check()?;
        parts.validate()?;
        if parts.n_items != items.n_items() {
            return Err(format!(
                "index was built for {} items but the model has {}",
                parts.n_items,
                items.n_items()
            ));
        }
        if parts.ambient_ir != items.ambient_ir {
            return Err("index ir dimension differs from the model".into());
        }
        let has_tg = parts.ambient_tg != 0;
        if has_tg && (items.v_tg.is_none() || parts.ambient_tg != items.ambient_tg) {
            return Err("index tag channel differs from the model".into());
        }
        let n = parts.n_items;
        let mut perm = vec![0.0; n * parts.ambient_ir];
        permute_rows(items.v_ir, parts.ambient_ir, &parts.item_ids, &mut perm);
        let items_ir = BlockCache::build(&perm, parts.ambient_ir);
        let items_tg = if has_tg {
            let v_tg = items.v_tg.expect("checked above");
            let mut perm = vec![0.0; n * parts.ambient_tg];
            permute_rows(v_tg, parts.ambient_tg, &parts.item_ids, &mut perm);
            Some(BlockCache::build(&perm, parts.ambient_tg))
        } else {
            None
        };
        let cent_ir = BlockCache::build(&parts.cent_ir, parts.ambient_ir);
        let cent_tg = if has_tg {
            Some(BlockCache::build(&parts.cent_tg, parts.ambient_tg))
        } else {
            None
        };
        Ok(Self {
            parts,
            items_ir,
            items_tg,
            cent_ir,
            cent_tg,
        })
    }

    /// The serializable structure.
    pub fn parts(&self) -> &IndexParts {
        &self.parts
    }

    /// Catalogue size.
    pub fn n_items(&self) -> usize {
        self.parts.n_items
    }

    /// Number of tree nodes.
    pub fn n_nodes(&self) -> usize {
        self.parts.n_nodes()
    }

    /// Number of leaves (also the beam width that guarantees coverage).
    pub fn n_leaves(&self) -> usize {
        self.parts.n_leaves()
    }

    /// Maximum node depth.
    pub fn depth(&self) -> usize {
        self.parts.depth()
    }

    /// Default beam width from the build config.
    pub fn default_beam(&self) -> usize {
        self.parts.config.beam
    }

    /// Whether the index routes and scores the tag channel.
    pub fn has_tag_channel(&self) -> bool {
        self.parts.ambient_tg != 0
    }

    /// Beam-search retrieval for one anchor: routes to the top-`beam`
    /// clusters, fused-scores their slot ranges, and returns the top `k`
    /// candidates (best first, ties → lower item id) with routing stats.
    /// `beam = 0` takes the index default; `tag` carries the user's
    /// tag-channel anchor and weight `α = gain·α_u` and must be `None`
    /// iff the index has no tag channel. Candidates for which `exclude`
    /// returns true are skipped.
    pub fn search(
        &self,
        anchor_ir: &[f64],
        tag: Option<(&[f64], f64)>,
        beam: usize,
        k: usize,
        exclude: &dyn Fn(u32) -> bool,
    ) -> (Vec<(u32, f64)>, SearchStats) {
        self.check_tag(tag.is_some());
        let beam = self.effective_beam(beam);
        let leaves = self.route(anchor_ir, tag, beam);
        let mut acc = TopKAccumulator::new(k);
        let mut scores = vec![0.0; FUSED_ITEM_CHUNK];
        let mut scratch = vec![0.0; if tag.is_some() { FUSED_ITEM_CHUNK } else { 0 }];
        let mut candidates = 0;
        for &leaf in &leaves {
            let (lo, hi) = (
                self.parts.start[leaf] as usize,
                self.parts.end[leaf] as usize,
            );
            candidates += hi - lo;
            self.score_range(
                anchor_ir,
                tag,
                lo,
                hi,
                &mut scores,
                &mut scratch,
                exclude,
                &mut acc,
            );
        }
        (
            acc.into_sorted(),
            SearchStats {
                beam,
                leaves: leaves.len(),
                candidates,
            },
        )
    }

    /// The exact escape hatch: fused-scores the *entire* catalogue
    /// through the index's permuted caches. Per-item arithmetic is
    /// position-independent, so the result equals the pre-index
    /// exhaustive path bit for bit — this is what the recall harness
    /// measures [`TaxoIndex::search`] against.
    pub fn search_exact(
        &self,
        anchor_ir: &[f64],
        tag: Option<(&[f64], f64)>,
        k: usize,
        exclude: &dyn Fn(u32) -> bool,
    ) -> Vec<(u32, f64)> {
        self.check_tag(tag.is_some());
        let mut acc = TopKAccumulator::new(k);
        let mut scores = vec![0.0; FUSED_ITEM_CHUNK];
        let mut scratch = vec![0.0; if tag.is_some() { FUSED_ITEM_CHUNK } else { 0 }];
        self.score_range(
            anchor_ir,
            tag,
            0,
            self.parts.n_items,
            &mut scores,
            &mut scratch,
            exclude,
            &mut acc,
        );
        acc.into_sorted()
    }

    /// Batched form of [`TaxoIndex::search`]: routes every anchor, then
    /// scores each selected leaf once for *all* anchors that chose it
    /// via `fused_scores_multi` (item panels stream once per leaf, not
    /// once per query). Results and stats are parallel to `anchors_ir`;
    /// each query's ranking is bit-identical to a lone `search` call.
    pub fn search_block(
        &self,
        anchors_ir: &[&[f64]],
        tag: Option<(&[&[f64]], &[f64])>,
        beam: usize,
        k: usize,
        exclude: &dyn Fn(usize, u32) -> bool,
    ) -> (Vec<Vec<(u32, f64)>>, Vec<SearchStats>) {
        self.check_tag(tag.is_some());
        let b = anchors_ir.len();
        if let Some((anchors_tg, alphas)) = tag {
            assert_eq!(anchors_tg.len(), b, "tag anchors/queries mismatch");
            assert_eq!(alphas.len(), b, "tag alphas/queries mismatch");
        }
        let beam = self.effective_beam(beam);
        let mut stats = vec![
            SearchStats {
                beam,
                ..SearchStats::default()
            };
            b
        ];
        // leaf id → positions of the queries that selected it. Leaves
        // are visited in ascending id order for determinism (the
        // accumulator does not care, but stable iteration keeps runs
        // reproducible to the byte under instrumentation).
        let mut by_leaf: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (q, &anchor) in anchors_ir.iter().enumerate() {
            let q_tag = tag.map(|(a, al)| (a[q], al[q]));
            for leaf in self.route(anchor, q_tag, beam) {
                stats[q].leaves += 1;
                stats[q].candidates += (self.parts.end[leaf] - self.parts.start[leaf]) as usize;
                by_leaf.entry(leaf).or_default().push(q);
            }
        }
        let mut accs: Vec<TopKAccumulator> = (0..b).map(|_| TopKAccumulator::new(k)).collect();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for (leaf, queries) in by_leaf {
            let sub_ir: Vec<&[f64]> = queries.iter().map(|&q| anchors_ir[q]).collect();
            let sub_tg: Option<(Vec<&[f64]>, Vec<f64>)> = tag.map(|(a, al)| {
                (
                    queries.iter().map(|&q| a[q]).collect(),
                    queries.iter().map(|&q| al[q]).collect(),
                )
            });
            let (lo, hi) = (
                self.parts.start[leaf] as usize,
                self.parts.end[leaf] as usize,
            );
            let mut c0 = lo;
            while c0 < hi {
                let c1 = (c0 + FUSED_ITEM_CHUNK).min(hi);
                let m = c1 - c0;
                out.resize(queries.len() * m, 0.0);
                let tag_multi = sub_tg.as_ref().map(|(anchors, alphas)| {
                    scratch.resize(queries.len() * m, 0.0);
                    TagChannelMulti {
                        cache: self.items_tg.as_ref().expect("tag cache present"),
                        anchors,
                        alphas,
                    }
                });
                fused_scores_multi(
                    &self.items_ir,
                    &sub_ir,
                    tag_multi,
                    c0,
                    c1,
                    &mut scratch,
                    &mut out[..queries.len() * m],
                );
                for (pos, &q) in queries.iter().enumerate() {
                    let row = &out[pos * m..(pos + 1) * m];
                    for (j, &score) in row.iter().enumerate() {
                        let orig = self.parts.item_ids[c0 + j];
                        if !exclude(q, orig) {
                            accs[q].push(orig, score);
                        }
                    }
                }
                c0 = c1;
            }
        }
        (accs.into_iter().map(|a| a.into_sorted()).collect(), stats)
    }

    fn effective_beam(&self, beam: usize) -> usize {
        if beam == 0 {
            self.parts.config.beam
        } else {
            beam
        }
    }

    fn check_tag(&self, have: bool) {
        assert_eq!(
            have,
            self.has_tag_channel(),
            "tag anchor must be supplied iff the index has a tag channel"
        );
    }

    /// Fused-scores the slot range `lo..hi` in cache-sized chunks and
    /// offers every candidate (by *original* item id) to the
    /// accumulator. Shared by the beam and exact paths, which is what
    /// makes their per-item scores identical.
    #[allow(clippy::too_many_arguments)]
    fn score_range(
        &self,
        anchor_ir: &[f64],
        tag: Option<(&[f64], f64)>,
        lo: usize,
        hi: usize,
        scores: &mut [f64],
        scratch: &mut [f64],
        exclude: &dyn Fn(u32) -> bool,
        acc: &mut TopKAccumulator,
    ) {
        let mut c0 = lo;
        while c0 < hi {
            let c1 = (c0 + FUSED_ITEM_CHUNK).min(hi);
            let m = c1 - c0;
            let tag_channel = tag.map(|(anchor, alpha)| TagChannel {
                cache: self.items_tg.as_ref().expect("tag cache present"),
                anchor,
                alpha,
            });
            fused_scores_block(
                &self.items_ir,
                anchor_ir,
                tag_channel,
                c0,
                c1,
                scratch,
                &mut scores[..m],
            );
            for (j, &score) in scores[..m].iter().enumerate() {
                let orig = self.parts.item_ids[c0 + j];
                if !exclude(orig) {
                    acc.push(orig, score);
                }
            }
            c0 = c1;
        }
    }

    /// Beam descent: returns the selected leaf ids, ascending. See the
    /// module docs for the bound formula and the `B ≥ n_leaves` coverage
    /// guarantee. `α` is clamped at 0 for the bound only — a negative
    /// channel weight would flip the triangle inequality.
    fn route(&self, anchor_ir: &[f64], tag: Option<(&[f64], f64)>, beam: usize) -> Vec<usize> {
        let p = &self.parts;
        let beam = beam.max(1);
        let mut frontier: Vec<(usize, f64)> = vec![(0, f64::INFINITY)];
        let mut scored: Vec<(usize, f64)> = Vec::new();
        let mut d_ir: Vec<f64> = Vec::new();
        let mut d_tg: Vec<f64> = Vec::new();
        while !frontier.iter().all(|&(n, _)| p.is_leaf(n)) {
            scored.clear();
            for &(n, bound) in &frontier {
                if p.is_leaf(n) {
                    scored.push((n, bound));
                    continue;
                }
                let (lo, hi) = (p.child_lo[n] as usize, p.child_hi[n] as usize);
                let m = hi - lo;
                if d_ir.len() < m {
                    d_ir.resize(m, 0.0);
                    d_tg.resize(m, 0.0);
                }
                self.cent_ir
                    .distance_block(anchor_ir, lo, hi, &mut d_ir[..m]);
                if let Some((anchor_tg, _)) = tag {
                    self.cent_tg
                        .as_ref()
                        .expect("tag centroid cache present")
                        .distance_block(anchor_tg, lo, hi, &mut d_tg[..m]);
                }
                for j in 0..m {
                    let c = lo + j;
                    let gap = (d_ir[j] - p.radius_ir[c]).max(0.0);
                    let mut g = gap * gap;
                    if let Some((_, alpha)) = tag {
                        let gap_tg = (d_tg[j] - p.radius_tg[c]).max(0.0);
                        g += alpha.max(0.0) * gap_tg * gap_tg;
                    }
                    scored.push((c, -g));
                }
            }
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            scored.truncate(beam);
            std::mem::swap(&mut frontier, &mut scored);
        }
        let mut leaves: Vec<usize> = frontier.iter().map(|&(n, _)| n).collect();
        leaves.sort_unstable();
        leaves
    }
}

/// Copies `src` rows into `dst` in permutation order:
/// `dst[slot] = src[item_ids[slot]]`.
fn permute_rows(src: &[f64], ambient: usize, item_ids: &[u32], dst: &mut [f64]) {
    for (slot, &item) in item_ids.iter().enumerate() {
        let i = item as usize;
        dst[slot * ambient..(slot + 1) * ambient]
            .copy_from_slice(&src[i * ambient..(i + 1) * ambient]);
    }
}

/// Einstein-midpoint centroid (lifted to the hyperboloid) and radius
/// bound of one node's member set in one channel.
fn node_summary(
    members: &[u32],
    poi: &[f64],
    dim: usize,
    lorentz_rows: &[f64],
    ambient: usize,
) -> (Vec<f64>, f64) {
    let refs: Vec<&[f64]> = members
        .iter()
        .map(|&v| &poi[v as usize * dim..(v as usize + 1) * dim])
        .collect();
    let weights = vec![1.0; refs.len()];
    let mut c_poi = vec![0.0; dim];
    poincare::einstein_centroid(&refs, &weights, &mut c_poi);
    let mut c_lor = vec![0.0; ambient];
    convert::poincare_to_lorentz(&c_poi, &mut c_lor);
    let radius = members
        .iter()
        .map(|&v| {
            lorentz::distance(
                &c_lor,
                &lorentz_rows[v as usize * ambient..(v as usize + 1) * ambient],
            )
        })
        .fold(0.0f64, f64::max);
    (c_lor, radius)
}

/// Depth-first slot assignment: leaves append their members (ascending
/// original id) to the permutation; every node's range spans exactly its
/// descendants' slots.
fn assign_slots(
    nodes: &[BuildNode],
    id: usize,
    item_ids: &mut Vec<u32>,
    start: &mut [u32],
    end: &mut [u32],
) {
    start[id] = item_ids.len() as u32;
    if nodes[id].child_lo == NO_CHILD {
        item_ids.extend_from_slice(&nodes[id].members);
    } else {
        for c in nodes[id].child_lo as usize..nodes[id].child_hi as usize {
            assign_slots(nodes, c, item_ids, start, end);
        }
    }
    end[id] = item_ids.len() as u32;
}

/// Top-level grouping by the trained taxonomy: each item goes to the
/// top-level branch housing its deepest-residing tag (ties → lower tag
/// id); untagged items and tags residing at the root fall into a final
/// catch-all group. Returns `None` when the taxonomy cannot split the
/// catalogue into at least two non-empty groups — the k-means recursion
/// then starts at the root instead.
fn taxonomy_groups(
    taxonomy: &Taxonomy,
    item_tags: &[Vec<u32>],
    n_items: usize,
) -> Option<Vec<Vec<u32>>> {
    let top: &[usize] = &taxonomy.nodes()[0].children;
    if top.len() < 2 || item_tags.is_empty() {
        return None;
    }
    let n_tags = item_tags
        .iter()
        .flat_map(|ts| ts.iter().copied())
        .max()
        .map(|t| t as usize + 1)?;
    // Per tag: (top-level group slot, residence depth).
    let mut tag_group: Vec<Option<(usize, usize)>> = vec![None; n_tags];
    for (t, slot) in tag_group.iter_mut().enumerate() {
        let res = taxonomy.residence(t as u32);
        if res == 0 {
            continue;
        }
        let depth = taxonomy.nodes()[res].level;
        let mut cur = res;
        while let Some(parent) = taxonomy.nodes()[cur].parent {
            if parent == 0 {
                break;
            }
            cur = parent;
        }
        if let Some(pos) = top.iter().position(|&c| c == cur) {
            *slot = Some((pos, depth));
        }
    }
    let misc = top.len();
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); top.len() + 1];
    for item in 0..n_items {
        let mut best: Option<(usize, usize)> = None; // (group, depth)
        for &t in item_tags.get(item).map(|v| v.as_slice()).unwrap_or(&[]) {
            if let Some(&Some((group, depth))) = tag_group.get(t as usize) {
                // Strict > keeps the first (lowest-id) tag on depth ties.
                if best.is_none_or(|(_, d)| depth > d) {
                    best = Some((group, depth));
                }
            }
        }
        groups[best.map_or(misc, |(g, _)| g)].push(item as u32);
    }
    groups.retain(|g| !g.is_empty());
    if groups.len() < 2 {
        return None;
    }
    Some(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four well-separated planted clusters in a 3-ambient (2-spatial)
    /// Lorentz space, `per` items each.
    fn planted(per: usize) -> (Vec<f64>, usize) {
        let centers = [[1.8, 0.0], [-1.8, 0.0], [0.0, 1.8], [0.0, -1.8]];
        let mut flat = Vec::new();
        for i in 0..4 * per {
            let c = centers[i % 4];
            // Deterministic low-discrepancy jitter.
            let a = ((i * 37) % 19) as f64 / 19.0 - 0.5;
            let b = ((i * 53) % 23) as f64 / 23.0 - 0.5;
            let p = lorentz::from_spatial(&[c[0] + 0.25 * a, c[1] + 0.25 * b]);
            flat.extend_from_slice(&p);
        }
        (flat, 3)
    }

    fn build_planted(per: usize, max_leaf: usize) -> (TaxoIndex, Vec<f64>) {
        let (flat, ambient) = planted(per);
        let items = ItemEmbeddings {
            v_ir: &flat,
            ambient_ir: ambient,
            v_tg: None,
            ambient_tg: 0,
        };
        let cfg = IndexConfig {
            max_leaf,
            branch: 4,
            beam: 2,
            kmeans_iters: 10,
            seed: 7,
        };
        let idx = TaxoIndex::build(&items, None, &[], &cfg).expect("build");
        (idx, flat)
    }

    #[test]
    fn build_validates_and_partitions() {
        let (idx, _) = build_planted(50, 20);
        assert_eq!(idx.n_items(), 200);
        assert!(idx.n_leaves() >= 4, "planted clusters should separate");
        idx.parts().validate().expect("valid parts");
        // Every leaf range is non-empty and the union covers the catalogue.
        let total: usize = (0..idx.n_nodes())
            .filter(|&n| idx.parts().is_leaf(n))
            .map(|n| (idx.parts().end[n] - idx.parts().start[n]) as usize)
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn full_beam_is_bit_identical_to_exact() {
        let (idx, _) = build_planted(50, 20);
        let anchor = lorentz::from_spatial(&[1.5, 0.3]);
        let exact = idx.search_exact(&anchor, None, 15, &|_| false);
        let (beamed, stats) = idx.search(&anchor, None, idx.n_leaves(), 15, &|_| false);
        assert_eq!(stats.candidates, 200, "full beam must cover everything");
        assert_eq!(beamed.len(), exact.len());
        for (a, b) in beamed.iter().zip(exact.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "scores must be bit-identical");
        }
    }

    #[test]
    fn exact_matches_unpermuted_exhaustive_scan() {
        let (idx, flat) = build_planted(40, 16);
        let anchor = lorentz::from_spatial(&[-1.2, 0.8]);
        // Ground truth straight off the original layout.
        let cache = BlockCache::build(&flat, 3);
        let mut scores = vec![0.0; idx.n_items()];
        fused_scores_block(
            &cache,
            &anchor,
            None,
            0,
            idx.n_items(),
            &mut [],
            &mut scores,
        );
        let expect = taxorec_data::select_top_k(&scores, 10, |i| i % 3 == 0);
        let got = idx.search_exact(&anchor, None, 10, &|v| v % 3 == 0);
        assert_eq!(got.len(), expect.len());
        for (a, b) in got.iter().zip(expect.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn narrow_beam_finds_the_anchor_cluster() {
        let (idx, _) = build_planted(50, 20);
        // Anchor inside planted cluster 0 (around [1.8, 0]): its nearest
        // neighbours are cluster members, ids ≡ 0 (mod 4).
        let anchor = lorentz::from_spatial(&[1.8, 0.05]);
        let (got, stats) = idx.search(&anchor, None, 2, 10, &|_| false);
        assert!(stats.candidates < 200, "narrow beam must prune");
        assert_eq!(got.len(), 10);
        for &(item, _) in &got {
            assert_eq!(item % 4, 0, "expected cluster-0 members, got item {item}");
        }
        // And it agrees with the exact top-10 here, since the target
        // cluster is well separated.
        let exact = idx.search_exact(&anchor, None, 10, &|_| false);
        assert_eq!(got, exact);
    }

    #[test]
    fn search_block_matches_individual_searches() {
        let (idx, _) = build_planted(30, 12);
        let anchors: Vec<Vec<f64>> = [[1.7, -0.1], [-1.9, 0.2], [0.1, 1.6]]
            .iter()
            .map(|c| lorentz::from_spatial(c))
            .collect();
        let refs: Vec<&[f64]> = anchors.iter().map(|a| a.as_slice()).collect();
        let exclude = |q: usize, v: u32| (v as usize + q).is_multiple_of(5);
        let (block, stats) = idx.search_block(&refs, None, 2, 8, &exclude);
        assert_eq!(block.len(), 3);
        for (q, got) in block.iter().enumerate() {
            let (want, solo_stats) = idx.search(&anchors[q], None, 2, 8, &|v| exclude(q, v));
            assert_eq!(got, &want, "query {q} diverged from solo search");
            assert_eq!(stats[q], solo_stats);
        }
    }

    #[test]
    fn append_items_patches_the_rightmost_spine() {
        let (idx, mut flat) = build_planted(50, 20);
        let mut parts = idx.parts().clone();
        let (n0, nodes0) = (parts.n_items, parts.n_nodes());
        // Three new items near cluster 1.
        for i in 0..3 {
            let p = lorentz::from_spatial(&[-1.8 + 0.05 * i as f64, 0.1]);
            flat.extend_from_slice(&p);
        }
        let items = ItemEmbeddings {
            v_ir: &flat,
            ambient_ir: 3,
            v_tg: None,
            ambient_tg: 0,
        };
        assert_eq!(parts.append_items(&items).unwrap(), 3);
        assert_eq!(parts.n_items, n0 + 3);
        assert_eq!(parts.n_nodes(), nodes0, "patch-in adds no nodes");
        parts.validate().expect("patched parts stay valid");
        assert_eq!(&parts.item_ids[n0..], &[200, 201, 202]);
        // The patched parts rebuild into a working index that can
        // return the new items, and a full beam stays exact.
        let patched = TaxoIndex::from_parts(parts.clone(), &items).expect("rebuild");
        let anchor = lorentz::from_spatial(&[-1.8, 0.1]);
        let (got, _) = idx_search_full(&patched, &anchor, 5);
        assert!(
            got.iter().any(|&(v, _)| v >= 200),
            "new items must be retrievable, got {got:?}"
        );
        let exact = patched.search_exact(&anchor, None, 5, &|_| false);
        assert_eq!(got, exact);
        // Appending zero items is a no-op.
        assert_eq!(parts.append_items(&items).unwrap(), 0);
    }

    fn idx_search_full(
        idx: &TaxoIndex,
        anchor: &[f64],
        k: usize,
    ) -> (Vec<(u32, f64)>, SearchStats) {
        idx.search(anchor, None, idx.n_leaves(), k, &|_| false)
    }

    #[test]
    fn append_items_rejects_mismatched_tables() {
        let (idx, flat) = build_planted(30, 12);
        let mut parts = idx.parts().clone();
        let snapshot = parts.clone();
        let short = ItemEmbeddings {
            v_ir: &flat[..30 * 3],
            ambient_ir: 3,
            v_tg: None,
            ambient_tg: 0,
        };
        assert!(parts.append_items(&short).unwrap_err().contains("fewer"));
        let wrong_dim = ItemEmbeddings {
            v_ir: &flat,
            ambient_ir: 4,
            v_tg: None,
            ambient_tg: 0,
        };
        assert!(parts.append_items(&wrong_dim).is_err());
        assert_eq!(parts, snapshot);
    }

    #[test]
    fn parts_round_trip_preserves_results() {
        let (idx, flat) = build_planted(30, 12);
        let items = ItemEmbeddings {
            v_ir: &flat,
            ambient_ir: 3,
            v_tg: None,
            ambient_tg: 0,
        };
        let rebuilt = TaxoIndex::from_parts(idx.parts().clone(), &items).expect("round trip");
        let anchor = lorentz::from_spatial(&[0.4, -1.5]);
        let (a, _) = idx.search(&anchor, None, 3, 12, &|_| false);
        let (b, _) = rebuilt.search(&anchor, None, 3, 12, &|_| false);
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_rejects_mismatched_model() {
        let (idx, flat) = build_planted(20, 8);
        let items = ItemEmbeddings {
            v_ir: &flat[..flat.len() - 3], // one item short
            ambient_ir: 3,
            v_tg: None,
            ambient_tg: 0,
        };
        assert!(TaxoIndex::from_parts(idx.parts().clone(), &items).is_err());
        let mut bad = idx.parts().clone();
        bad.item_ids[0] = bad.item_ids[1]; // no longer a permutation
        let items = ItemEmbeddings {
            v_ir: &flat,
            ambient_ir: 3,
            v_tg: None,
            ambient_tg: 0,
        };
        assert!(TaxoIndex::from_parts(bad, &items).is_err());
    }

    #[test]
    fn identical_points_terminate_and_stay_covered() {
        // All points identical: k-means has nothing to separate. The
        // build must still terminate (split sizes strictly decrease or
        // the node degrades to a leaf), keep a valid partition, and a
        // full-coverage search must break the all-ways score tie by
        // ascending item id.
        let p = lorentz::from_spatial(&[0.3, 0.3]);
        let flat: Vec<f64> = (0..64).flat_map(|_| p.clone()).collect();
        let items = ItemEmbeddings {
            v_ir: &flat,
            ambient_ir: 3,
            v_tg: None,
            ambient_tg: 0,
        };
        let cfg = IndexConfig {
            max_leaf: 8,
            ..IndexConfig::default()
        };
        let idx = TaxoIndex::build(&items, None, &[], &cfg).expect("build");
        idx.parts().validate().expect("valid parts");
        let (got, stats) = idx.search(&p, None, idx.n_leaves(), 5, &|_| false);
        assert_eq!(stats.candidates, 64);
        assert_eq!(
            got.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
    }
}
