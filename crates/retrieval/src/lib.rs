//! Hierarchical hyperbolic retrieval: sub-linear candidate generation
//! over the trained taxonomy.
//!
//! The exhaustive scoring path is `O(n_items)` per query no matter how
//! fast the fused kernels sweep. This crate turns the structure the
//! model already trains — a Poincaré taxonomy whose internal nodes
//! summarize coherent item clusters — into a serving data structure: a
//! [`TaxoIndex`] whose tree of Einstein-midpoint cluster centroids is
//! descended by a beam-search router, so only the items of the top-B
//! candidate clusters are fused-scored.
//!
//! Three properties anchor the design:
//!
//! 1. **Bit-compatible scoring.** Candidate items are scored by the same
//!    fused Lorentz kernels (`fused_scores_block` /
//!    `fused_scores_multi`) as the exhaustive path, over caches whose
//!    per-item arithmetic is position-independent, and merged through
//!    the order-independent `TopKAccumulator`. A beam wide enough to
//!    select every leaf therefore reproduces the exhaustive ranking
//!    *bit-identically* — the approximate path degrades coverage, never
//!    arithmetic.
//! 2. **Contiguity.** Items are permuted so every tree node owns one
//!    contiguous slot range, and node ids are breadth-first so every
//!    node's children are contiguous centroid rows: both the routing
//!    sweeps and the candidate sweeps run the block kernels over dense
//!    ranges instead of gathers.
//! 3. **Exact escape hatch.** [`RetrievalMode::Exact`] (and
//!    [`TaxoIndex::search_exact`]) fall back to the full exhaustive
//!    sweep, and the recall@K harness in `taxorec-eval` measures the
//!    approximate path against it.

pub mod index;

pub use index::{IndexConfig, IndexParts, ItemEmbeddings, SearchStats, TaxoIndex, INDEX_MAX_DEPTH};

/// How a consumer (serve, eval, bench) retrieves candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetrievalMode {
    /// Exhaustive fused sweep over the full catalogue (the default).
    Exact,
    /// Beam-search candidate generation with the given beam width.
    Beam(usize),
}

impl RetrievalMode {
    /// Parses the CLI surface shared by eval, serve, and the bench bin:
    /// `"exact"`, or `"beam:B"` with `B ≥ 1` (plain `"beam"` takes the
    /// index default at use-site, encoded here as `Beam(0)`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("exact") {
            return Ok(Self::Exact);
        }
        if s.eq_ignore_ascii_case("beam") {
            return Ok(Self::Beam(0));
        }
        if let Some(rest) = s.strip_prefix("beam:").or_else(|| s.strip_prefix("BEAM:")) {
            let b: usize = rest
                .parse()
                .map_err(|_| format!("invalid beam width {rest:?} (expected beam:B)"))?;
            if b == 0 {
                return Err("beam width must be >= 1".into());
            }
            return Ok(Self::Beam(b));
        }
        Err(format!(
            "unknown retrieval mode {s:?} (expected \"exact\" or \"beam:B\")"
        ))
    }

    /// Stable textual form (`"exact"` / `"beam:B"`), the inverse of
    /// [`RetrievalMode::parse`].
    pub fn label(&self) -> String {
        match self {
            Self::Exact => "exact".into(),
            Self::Beam(b) => format!("beam:{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_round_trips() {
        assert_eq!(RetrievalMode::parse("exact").unwrap(), RetrievalMode::Exact);
        assert_eq!(RetrievalMode::parse("EXACT").unwrap(), RetrievalMode::Exact);
        assert_eq!(
            RetrievalMode::parse("beam:8").unwrap(),
            RetrievalMode::Beam(8)
        );
        assert_eq!(
            RetrievalMode::parse("beam").unwrap(),
            RetrievalMode::Beam(0)
        );
        assert!(RetrievalMode::parse("beam:0").is_err());
        assert!(RetrievalMode::parse("beam:x").is_err());
        assert!(RetrievalMode::parse("annoy").is_err());
        assert_eq!(RetrievalMode::Beam(8).label(), "beam:8");
        assert_eq!(RetrievalMode::Exact.label(), "exact");
        assert_eq!(
            RetrievalMode::parse(&RetrievalMode::Beam(3).label()).unwrap(),
            RetrievalMode::Beam(3)
        );
    }
}
