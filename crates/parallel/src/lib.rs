//! # taxorec-parallel
//!
//! A zero-dependency scoped worker pool for the workspace's data-parallel
//! hot loops: k-means assignment, tag scoring, GCN propagation (`spmm`),
//! and per-user evaluation. Promoted and generalized from the ad-hoc pool
//! that used to live in `taxorec-bench`.
//!
//! ## Determinism contract
//!
//! Every entry point is **bit-deterministic with respect to the thread
//! count**: for any `TAXOREC_THREADS` value (including `1`, the exact
//! sequential path) the returned values are bit-identical, because
//!
//! * [`par_map`] / [`par_map_chunked`] compute each element independently
//!   and return results in index order — no cross-element arithmetic is
//!   reassociated;
//! * [`par_chunks`] hands each worker a disjoint slice whose position is
//!   fixed by its offset — per-chunk computation order is unchanged;
//! * [`par_reduce`] folds a *fixed* caller-chosen chunking sequentially
//!   within each chunk and combines the chunk results left-to-right in
//!   chunk order — the association pattern depends only on the chunk
//!   size, never on the number of workers.
//!
//! ## Thread count
//!
//! `TAXOREC_THREADS` controls the pool width (default:
//! `available_parallelism`; `1` = run inline on the caller's thread with
//! no pool machinery at all). The variable is re-read on every pool
//! launch so tests can flip it between runs.
//!
//! Nested pools degrade gracefully: a `par_*` call made from inside a
//! pool worker runs sequentially (same results, no thread explosion).
//!
//! ## Telemetry
//!
//! Each pool launch feeds the shared [`taxorec_telemetry`] registry:
//!
//! * `parallel.job.duration` — histogram of per-job (per-chunk) seconds,
//! * `parallel.jobs` — counter of completed jobs,
//! * `parallel.pool.threads` — gauge, workers used by the last pool,
//! * `parallel.pool.utilization` — gauge, busy time / (workers × wall).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    /// True while the current thread is a pool worker: nested `par_*`
    /// calls fall back to the sequential path instead of spawning.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Resolved pool width: `TAXOREC_THREADS` if set and ≥ 1, otherwise
/// `std::thread::available_parallelism()`. Re-read on every call.
pub fn thread_count() -> usize {
    if let Ok(s) = std::env::var("TAXOREC_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// True when called from inside a pool worker thread.
pub fn in_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Runs `work(0) .. work(n_jobs-1)` across the pool; jobs are claimed
/// through an atomic cursor so workers load-balance automatically. Falls
/// back to an inline sequential loop (identical invocation order) when the
/// pool width is 1, the job count is ≤ 1, or the caller is itself a pool
/// worker.
fn run_pool(label: &str, n_jobs: usize, work: &(dyn Fn(usize) + Sync)) {
    let job_hist = taxorec_telemetry::histogram("parallel.job.duration");
    let job_count = taxorec_telemetry::counter("parallel.jobs");
    let n_workers = thread_count().min(n_jobs.max(1));
    if n_workers <= 1 || n_jobs <= 1 || in_pool() {
        for i in 0..n_jobs {
            let t0 = Instant::now();
            work(i);
            job_hist.observe(t0.elapsed().as_secs_f64());
            job_count.inc(1);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let busy_ns = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                IN_POOL.with(|f| f.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    let t0 = Instant::now();
                    work(i);
                    let dt = t0.elapsed();
                    job_hist.observe(dt.as_secs_f64());
                    job_count.inc(1);
                    busy_ns.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let utilization = if wall > 0.0 {
        busy_ns.load(Ordering::Relaxed) as f64 / 1e9 / (wall * n_workers as f64)
    } else {
        0.0
    };
    taxorec_telemetry::gauge("parallel.pool.threads").set(n_workers as f64);
    taxorec_telemetry::gauge("parallel.pool.utilization").set(utilization);
    taxorec_telemetry::sink::debug(&format!(
        "{label}: {n_jobs} jobs on {n_workers} workers in {wall:.3}s \
         (utilization {:.0}%)",
        utilization * 100.0
    ));
}

/// Maps `f` over `0..n` and returns the results in index order.
///
/// Scheduling granularity is one item per pool job; prefer
/// [`par_map_chunked`] when individual items are cheap.
pub fn par_map<T, F>(label: &str, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_chunked(label, n, 1, f)
}

/// Like [`par_map`], but workers claim contiguous blocks of `chunk` items
/// at a time, amortizing the per-job bookkeeping over cheap items. The
/// chunk size affects scheduling and telemetry only — each item is still
/// computed independently, so results are bit-identical for any chunking
/// and thread count.
pub fn par_map_chunked<T, F>(label: &str, n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunk = chunk.max(1);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let n_chunks = n.div_ceil(chunk);
    run_pool(label, n_chunks, &|ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(n);
        for (i, slot) in slots.iter().enumerate().take(hi).skip(lo) {
            *slot.lock().unwrap() = Some(f(i));
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("pool job completed"))
        .collect()
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// one may be shorter) and calls `f(offset, chunk)` for each, in parallel.
/// Chunks are disjoint and their offsets are fixed, so any writes land
/// exactly where the sequential loop would put them.
pub fn par_chunks<T, F>(label: &str, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let chunks: Vec<Mutex<(usize, &mut [T])>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(ci, slice)| Mutex::new((ci * chunk_len, slice)))
        .collect();
    run_pool(label, chunks.len(), &|ci| {
        let mut guard = chunks[ci].lock().unwrap();
        let (offset, ref mut slice) = *guard;
        f(offset, slice);
    });
}

/// Order-deterministic chunked reduction: folds each fixed chunk
/// `lo..hi` of `0..n` with `fold(lo, hi)` (sequential within the chunk),
/// then combines the per-chunk accumulators **left-to-right in chunk
/// order** with `combine`. Returns `None` when `n == 0`.
///
/// Because the chunk boundaries depend only on `chunk` (never on the
/// worker count), the association pattern — and therefore every floating
/// point rounding — is identical for any `TAXOREC_THREADS`. Reductions
/// whose `combine` is exactly associative (integer-valued sums, max/min,
/// boolean or) are additionally bit-identical to the plain sequential
/// fold for any chunk size.
pub fn par_reduce<T, F, C>(label: &str, n: usize, chunk: usize, fold: F, combine: C) -> Option<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if n == 0 {
        return None;
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let partials = par_map(label, n_chunks, |ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(n);
        fold(lo, hi)
    });
    partials.into_iter().reduce(combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Restores the previous `TAXOREC_THREADS` value on drop.
    struct ThreadsGuard(Option<String>);

    impl ThreadsGuard {
        fn set(v: &str) -> Self {
            let prev = std::env::var("TAXOREC_THREADS").ok();
            std::env::set_var("TAXOREC_THREADS", v);
            Self(prev)
        }
    }

    impl Drop for ThreadsGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(v) => std::env::set_var("TAXOREC_THREADS", v),
                None => std::env::remove_var("TAXOREC_THREADS"),
            }
        }
    }

    /// Serializes tests that touch the process-global env var.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map("test.map", 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_chunked_matches_par_map() {
        let a = par_map("test.map", 37, |i| 3 * i + 1);
        let b = par_map_chunked("test.map", 37, 8, |i| 3 * i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map("test.map", 0, |i| i).is_empty());
        assert_eq!(par_map("test.map", 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_writes_every_offset() {
        let mut data = vec![0usize; 103];
        par_chunks("test.chunks", &mut data, 10, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = offset + i;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn par_reduce_integer_sum_matches_sequential() {
        let seq: u64 = (0..1000u64).sum();
        let par = par_reduce(
            "test.reduce",
            1000,
            64,
            |lo, hi| (lo as u64..hi as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(par, Some(seq));
        assert_eq!(
            par_reduce("test.reduce", 0, 8, |_, _| 0u64, |a, b| a + b),
            None
        );
    }

    #[test]
    fn sequential_path_is_bit_identical_to_parallel() {
        let _l = env_lock();
        let work = |i: usize| (i as f64 + 0.5).sin() * (i as f64).cos();
        let seq = {
            let _g = ThreadsGuard::set("1");
            par_map_chunked("test.det", 500, 16, work)
        };
        let par = {
            let _g = ThreadsGuard::set("4");
            par_map_chunked("test.det", 500, 16, work)
        };
        assert!(seq
            .iter()
            .zip(&par)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn par_reduce_deterministic_across_thread_counts() {
        let _l = env_lock();
        // Non-associative float sum: identical only because the chunking
        // is fixed.
        let fold = |lo: usize, hi: usize| (lo..hi).map(|i| 1.0 / (i as f64 + 1.0)).sum::<f64>();
        let a = {
            let _g = ThreadsGuard::set("1");
            par_reduce("test.reduce", 10_000, 128, fold, |x, y| x + y).unwrap()
        };
        let b = {
            let _g = ThreadsGuard::set("7");
            par_reduce("test.reduce", 10_000, 128, fold, |x, y| x + y).unwrap()
        };
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn thread_count_env_override() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("TAXOREC_THREADS", "0");
        assert_eq!(thread_count(), 1, "0 clamps to 1");
        std::env::set_var("TAXOREC_THREADS", "garbage");
        assert!(thread_count() >= 1);
    }

    #[test]
    fn nested_pools_fall_back_to_sequential() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("4");
        let out = par_map("test.outer", 8, |i| {
            assert!(in_pool() || thread_count() == 1);
            // Nested call must not deadlock or spawn; it runs inline.
            par_map("test.inner", 4, move |j| i * 10 + j)
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn pool_publishes_telemetry() {
        let _ = par_map("test.telemetry", 32, |i| i);
        assert!(taxorec_telemetry::counter("parallel.jobs").get() >= 32);
        assert!(taxorec_telemetry::histogram("parallel.job.duration").count() >= 1);
    }
}
