//! # taxorec-parallel
//!
//! A zero-dependency scoped worker pool for the workspace's data-parallel
//! hot loops: k-means assignment, tag scoring, GCN propagation (`spmm`),
//! and per-user evaluation. Promoted and generalized from the ad-hoc pool
//! that used to live in `taxorec-bench`.
//!
//! ## Determinism contract
//!
//! Every entry point is **bit-deterministic with respect to the thread
//! count**: for any `TAXOREC_THREADS` value (including `1`, the exact
//! sequential path) the returned values are bit-identical, because
//!
//! * [`par_map`] / [`par_map_chunked`] compute each element independently
//!   and return results in index order — no cross-element arithmetic is
//!   reassociated;
//! * [`par_chunks`] hands each worker a disjoint slice whose position is
//!   fixed by its offset — per-chunk computation order is unchanged;
//! * [`par_reduce`] folds a *fixed* caller-chosen chunking sequentially
//!   within each chunk and combines the chunk results left-to-right in
//!   chunk order — the association pattern depends only on the chunk
//!   size, never on the number of workers.
//!
//! ## Fault tolerance
//!
//! A panicking job no longer aborts the process. Each job runs under
//! `catch_unwind`; a panicked *pure* job (the `par_map` family, whose
//! only effect is filling its own result slot) is retried with bounded
//! exponential backoff (`TAXOREC_JOB_RETRIES` extra attempts, default 2).
//! In-place jobs ([`par_chunks`], which mutate caller slices and are not
//! safely re-runnable) are never retried. A job that still fails surfaces
//! as a structured [`PoolError`] — from the `try_*` entry points as a
//! `Result`, from the panicking convenience wrappers as a regular panic
//! on the *caller's* thread. The pool stops claiming new jobs after the
//! first definitive failure but lets in-flight jobs finish.
//!
//! Result slots use poison-tolerant locking throughout, so an unwound
//! job cannot wedge the pool, and a worker whose loop is somehow unwound
//! outside a job (e.g. a panicking telemetry hook) is logically respawned
//! rather than lost (`parallel.worker.respawns`).
//!
//! Fault injection: every job execution probes the `parallel.job` site,
//! so `TAXOREC_FAULT=panic@parallel.job:17` makes exactly the 17th job
//! panic — the retry path is deterministically testable.
//!
//! ## Thread count
//!
//! `TAXOREC_THREADS` controls the pool width (default:
//! `available_parallelism`; `1` = run inline on the caller's thread with
//! no pool machinery at all). The variable is re-read on every pool
//! launch so tests can flip it between runs.
//!
//! Nested pools degrade gracefully: a `par_*` call made from inside a
//! pool worker runs sequentially (same results, no thread explosion).
//!
//! ## Telemetry
//!
//! Each pool launch feeds the shared [`taxorec_telemetry`] registry:
//!
//! * `parallel.job.duration` — histogram of per-job (per-chunk) seconds,
//! * `parallel.jobs` — counter of completed jobs,
//! * `parallel.job.panics` / `parallel.job.retries` — caught panics and
//!   the retries they triggered,
//! * `parallel.pool.failed` — pools that returned a [`PoolError`],
//! * `parallel.worker.respawns` — workers logically respawned,
//! * `parallel.pool.threads` — gauge, workers used by the last pool,
//! * `parallel.pool.utilization` — gauge, busy time / (workers × wall).

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use taxorec_resilience::RetryPolicy;

thread_local! {
    /// True while the current thread is a pool worker: nested `par_*`
    /// calls fall back to the sequential path instead of spawning.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// A pool job failed definitively: it panicked on every allowed attempt
/// (or was not retryable), and the failure was isolated instead of
/// aborting the process.
#[derive(Clone, Debug)]
pub struct PoolError {
    /// The pool launch label the failure occurred under.
    pub label: String,
    /// Index of the failing job (chunk index for chunked entry points).
    pub job: usize,
    /// Attempts made before giving up.
    pub attempts: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool {:?}: job {} failed after {} attempt(s): {}",
            self.label, self.job, self.attempts, self.message
        )
    }
}

impl std::error::Error for PoolError {}

/// Locks a mutex, recovering the data from a poisoned lock — a panicked
/// job must not wedge every later reader of its slot.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolved pool width: `TAXOREC_THREADS` if set and ≥ 1, otherwise
/// `std::thread::available_parallelism()`. Re-read on every call.
pub fn thread_count() -> usize {
    if let Ok(s) = std::env::var("TAXOREC_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Extra attempts a panicked pure job gets: `TAXOREC_JOB_RETRIES`
/// (default 2, so 3 attempts total). Re-read per pool launch.
pub fn job_retries() -> usize {
    if let Ok(s) = std::env::var("TAXOREC_JOB_RETRIES") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n;
        }
    }
    2
}

/// True when called from inside a pool worker thread.
pub fn in_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Renders a panic payload for [`PoolError::message`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct JobFailure {
    job: usize,
    attempts: usize,
    message: String,
}

/// Runs job `i` under `catch_unwind`, retrying per `policy` when
/// `retryable`. Timing/counters are recorded for the successful attempt.
fn execute_job(
    label: &str,
    work: &(dyn Fn(usize) + Sync),
    i: usize,
    policy: &RetryPolicy,
    job_hist: &taxorec_telemetry::registry::Histogram,
    job_count: &taxorec_telemetry::registry::Counter,
) -> Result<std::time::Duration, JobFailure> {
    let attempts = policy.max_attempts.max(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            taxorec_telemetry::counter("parallel.job.retries").inc(1);
            std::thread::sleep(policy.backoff_for(attempt));
        }
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            taxorec_resilience::inject_panic("parallel.job");
            work(i)
        }));
        match result {
            Ok(()) => {
                let dt = t0.elapsed();
                job_hist.observe(dt.as_secs_f64());
                job_count.inc(1);
                return Ok(dt);
            }
            Err(payload) => {
                last = panic_message(payload);
                taxorec_telemetry::counter("parallel.job.panics").inc(1);
                taxorec_telemetry::sink::warn(&format!(
                    "{label}: job {i} panicked (attempt {}/{attempts}): {last}",
                    attempt + 1
                ));
            }
        }
    }
    Err(JobFailure {
        job: i,
        attempts,
        message: last,
    })
}

/// Runs `work(0) .. work(n_jobs-1)` across the pool; jobs are claimed
/// through an atomic cursor so workers load-balance automatically. Falls
/// back to an inline sequential loop (identical invocation order) when the
/// pool width is 1, the job count is ≤ 1, or the caller is itself a pool
/// worker. `retryable` gates the panic-retry path (pure jobs only).
fn run_pool(
    label: &str,
    n_jobs: usize,
    retryable: bool,
    work: &(dyn Fn(usize) + Sync),
) -> Result<(), PoolError> {
    let job_hist = taxorec_telemetry::histogram("parallel.job.duration");
    let job_count = taxorec_telemetry::counter("parallel.jobs");
    let policy = if retryable {
        RetryPolicy {
            max_attempts: 1 + job_retries(),
            ..RetryPolicy::default()
        }
    } else {
        RetryPolicy::none()
    };
    let fail = |f: JobFailure| {
        taxorec_telemetry::counter("parallel.pool.failed").inc(1);
        PoolError {
            label: label.to_string(),
            job: f.job,
            attempts: f.attempts,
            message: f.message,
        }
    };
    let n_workers = thread_count().min(n_jobs.max(1));
    if n_workers <= 1 || n_jobs <= 1 || in_pool() {
        for i in 0..n_jobs {
            execute_job(label, work, i, &policy, &job_hist, &job_count).map_err(fail)?;
        }
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let busy_ns = AtomicU64::new(0);
    let done: Vec<AtomicBool> = (0..n_jobs).map(|_| AtomicBool::new(false)).collect();
    let failure: Mutex<Option<JobFailure>> = Mutex::new(None);
    // The launcher's ambient trace context is re-installed in every
    // worker, so spans opened inside pool jobs parent into the request
    // or training run that fanned the work out (`Copy`, free to carry).
    let trace_ctx = taxorec_telemetry::trace::current();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| {
                IN_POOL.with(|f| f.set(true));
                let _trace_scope = taxorec_telemetry::trace::scope(trace_ctx);
                // The outer loop is the logical respawn: if anything
                // unwinds *outside* a job's own catch (telemetry hooks,
                // allocator shims), the worker restarts instead of dying
                // with work left on the queue.
                loop {
                    let survived = catch_unwind(AssertUnwindSafe(|| loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_jobs {
                            break;
                        }
                        match execute_job(label, work, i, &policy, &job_hist, &job_count) {
                            Ok(dt) => {
                                done[i].store(true, Ordering::Release);
                                busy_ns.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                            }
                            Err(f) => {
                                stop.store(true, Ordering::Relaxed);
                                let mut g = lock_ignore_poison(&failure);
                                if g.is_none() {
                                    *g = Some(f);
                                }
                                break;
                            }
                        }
                    }));
                    match survived {
                        Ok(()) => break,
                        Err(_) => {
                            taxorec_telemetry::counter("parallel.worker.respawns").inc(1);
                            taxorec_telemetry::sink::warn(&format!(
                                "{label}: worker unwound outside a job; respawning"
                            ));
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let utilization = if wall > 0.0 {
        busy_ns.load(Ordering::Relaxed) as f64 / 1e9 / (wall * n_workers as f64)
    } else {
        0.0
    };
    taxorec_telemetry::gauge("parallel.pool.threads").set(n_workers as f64);
    taxorec_telemetry::gauge("parallel.pool.utilization").set(utilization);
    taxorec_telemetry::sink::debug(&format!(
        "{label}: {n_jobs} jobs on {n_workers} workers in {wall:.3}s \
         (utilization {:.0}%)",
        utilization * 100.0
    ));
    if let Some(f) = lock_ignore_poison(&failure).take() {
        return Err(fail(f));
    }
    // With no recorded failure every job must have completed; a hole
    // means a worker lost a claimed job to an out-of-job unwind.
    if let Some(i) = done.iter().position(|d| !d.load(Ordering::Acquire)) {
        return Err(fail(JobFailure {
            job: i,
            attempts: 0,
            message: "job was claimed but never completed (worker lost it)".to_string(),
        }));
    }
    Ok(())
}

/// Maps `f` over `0..n` and returns the results in index order.
///
/// Scheduling granularity is one item per pool job; prefer
/// [`par_map_chunked`] when individual items are cheap.
///
/// # Panics
/// Panics on the caller's thread when a job fails all retry attempts;
/// use [`try_par_map`] for a `Result`.
pub fn par_map<T, F>(label: &str, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_map(label, n, f).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`par_map`]: a job that panics through its retry budget
/// yields a [`PoolError`] instead of unwinding.
pub fn try_par_map<T, F>(label: &str, n: usize, f: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_map_chunked(label, n, 1, f)
}

/// Like [`par_map`], but workers claim contiguous blocks of `chunk` items
/// at a time, amortizing the per-job bookkeeping over cheap items. The
/// chunk size affects scheduling and telemetry only — each item is still
/// computed independently, so results are bit-identical for any chunking
/// and thread count.
///
/// # Panics
/// Panics on the caller's thread when a job fails all retry attempts;
/// use [`try_par_map_chunked`] for a `Result`.
pub fn par_map_chunked<T, F>(label: &str, n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_map_chunked(label, n, chunk, f).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`par_map_chunked`]. Jobs are pure (each item only fills its
/// own slot), so a panicked chunk is retried — overwriting any slots the
/// failed attempt already filled with bit-identical values.
pub fn try_par_map_chunked<T, F>(
    label: &str,
    n: usize,
    chunk: usize,
    f: F,
) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunk = chunk.max(1);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let n_chunks = n.div_ceil(chunk);
    run_pool(label, n_chunks, true, &|ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(n);
        for (i, slot) in slots.iter().enumerate().take(hi).skip(lo) {
            *lock_ignore_poison(slot) = Some(f(i));
        }
    })?;
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .ok_or_else(|| PoolError {
                    label: label.to_string(),
                    job: i / chunk,
                    attempts: 0,
                    message: format!("result slot {i} empty after pool completion"),
                })
        })
        .collect()
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// one may be shorter) and calls `f(offset, chunk)` for each, in parallel.
/// Chunks are disjoint and their offsets are fixed, so any writes land
/// exactly where the sequential loop would put them.
///
/// # Panics
/// Panics on the caller's thread when a job panics (in-place jobs are
/// never retried — re-running a partial mutation is not safe in general);
/// use [`try_par_chunks`] for a `Result`.
pub fn par_chunks<T, F>(label: &str, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    try_par_chunks(label, data, chunk_len, f).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`par_chunks`]. On error the chunks before the failing one
/// hold their new values and the failing chunk may be partially written —
/// callers that need all-or-nothing semantics must snapshot first.
pub fn try_par_chunks<T, F>(
    label: &str,
    data: &mut [T],
    chunk_len: usize,
    f: F,
) -> Result<(), PoolError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let chunks: Vec<Mutex<(usize, &mut [T])>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(ci, slice)| Mutex::new((ci * chunk_len, slice)))
        .collect();
    run_pool(label, chunks.len(), false, &|ci| {
        let mut guard = lock_ignore_poison(&chunks[ci]);
        let (offset, ref mut slice) = *guard;
        f(offset, slice);
    })
}

/// Order-deterministic chunked reduction: folds each fixed chunk
/// `lo..hi` of `0..n` with `fold(lo, hi)` (sequential within the chunk),
/// then combines the per-chunk accumulators **left-to-right in chunk
/// order** with `combine`. Returns `None` when `n == 0`.
///
/// Because the chunk boundaries depend only on `chunk` (never on the
/// worker count), the association pattern — and therefore every floating
/// point rounding — is identical for any `TAXOREC_THREADS`. Reductions
/// whose `combine` is exactly associative (integer-valued sums, max/min,
/// boolean or) are additionally bit-identical to the plain sequential
/// fold for any chunk size.
///
/// # Panics
/// Panics on the caller's thread when a fold job fails all retry
/// attempts; use [`try_par_reduce`] for a `Result`.
pub fn par_reduce<T, F, C>(label: &str, n: usize, chunk: usize, fold: F, combine: C) -> Option<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    try_par_reduce(label, n, chunk, fold, combine).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`par_reduce`].
pub fn try_par_reduce<T, F, C>(
    label: &str,
    n: usize,
    chunk: usize,
    fold: F,
    combine: C,
) -> Result<Option<T>, PoolError>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if n == 0 {
        return Ok(None);
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let partials = try_par_map(label, n_chunks, |ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(n);
        fold(lo, hi)
    })?;
    Ok(partials.into_iter().reduce(combine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_resilience::{install, FaultSpec};

    /// Restores the previous `TAXOREC_THREADS` value on drop.
    struct ThreadsGuard(Option<String>);

    impl ThreadsGuard {
        fn set(v: &str) -> Self {
            let prev = std::env::var("TAXOREC_THREADS").ok();
            std::env::set_var("TAXOREC_THREADS", v);
            Self(prev)
        }
    }

    impl Drop for ThreadsGuard {
        fn drop(&mut self) {
            match &self.0 {
                Some(v) => std::env::set_var("TAXOREC_THREADS", v),
                None => std::env::remove_var("TAXOREC_THREADS"),
            }
        }
    }

    /// Serializes tests that touch the process-global env var or the
    /// fault-injection harness.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map("test.map", 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_chunked_matches_par_map() {
        let a = par_map("test.map", 37, |i| 3 * i + 1);
        let b = par_map_chunked("test.map", 37, 8, |i| 3 * i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map("test.map", 0, |i| i).is_empty());
        assert_eq!(par_map("test.map", 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_writes_every_offset() {
        let mut data = vec![0usize; 103];
        par_chunks("test.chunks", &mut data, 10, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = offset + i;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn par_reduce_integer_sum_matches_sequential() {
        let seq: u64 = (0..1000u64).sum();
        let par = par_reduce(
            "test.reduce",
            1000,
            64,
            |lo, hi| (lo as u64..hi as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(par, Some(seq));
        assert_eq!(
            par_reduce("test.reduce", 0, 8, |_, _| 0u64, |a, b| a + b),
            None
        );
    }

    #[test]
    fn sequential_path_is_bit_identical_to_parallel() {
        let _l = env_lock();
        let work = |i: usize| (i as f64 + 0.5).sin() * (i as f64).cos();
        let seq = {
            let _g = ThreadsGuard::set("1");
            par_map_chunked("test.det", 500, 16, work)
        };
        let par = {
            let _g = ThreadsGuard::set("4");
            par_map_chunked("test.det", 500, 16, work)
        };
        assert!(seq
            .iter()
            .zip(&par)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn par_reduce_deterministic_across_thread_counts() {
        let _l = env_lock();
        // Non-associative float sum: identical only because the chunking
        // is fixed.
        let fold = |lo: usize, hi: usize| (lo..hi).map(|i| 1.0 / (i as f64 + 1.0)).sum::<f64>();
        let a = {
            let _g = ThreadsGuard::set("1");
            par_reduce("test.reduce", 10_000, 128, fold, |x, y| x + y).unwrap()
        };
        let b = {
            let _g = ThreadsGuard::set("7");
            par_reduce("test.reduce", 10_000, 128, fold, |x, y| x + y).unwrap()
        };
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn thread_count_env_override() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("TAXOREC_THREADS", "0");
        assert_eq!(thread_count(), 1, "0 clamps to 1");
        std::env::set_var("TAXOREC_THREADS", "garbage");
        assert!(thread_count() >= 1);
    }

    #[test]
    fn nested_pools_fall_back_to_sequential() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("4");
        let out = par_map("test.outer", 8, |i| {
            assert!(in_pool() || thread_count() == 1);
            // Nested call must not deadlock or spawn; it runs inline.
            par_map("test.inner", 4, move |j| i * 10 + j)
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn pool_publishes_telemetry() {
        let _ = par_map("test.telemetry", 32, |i| i);
        assert!(taxorec_telemetry::counter("parallel.jobs").get() >= 32);
        assert!(taxorec_telemetry::histogram("parallel.job.duration").count() >= 1);
    }

    #[test]
    fn injected_job_panic_is_retried_and_the_run_completes() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("4");
        install(FaultSpec::parse("panic@parallel.job:17").unwrap());
        let before = taxorec_telemetry::counter("parallel.job.panics").get();
        let out = par_map("test.inject", 64, |i| i * 3);
        taxorec_resilience::disable();
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        assert!(
            taxorec_telemetry::counter("parallel.job.panics").get() > before,
            "the injected panic was actually caught"
        );
    }

    #[test]
    fn exhausted_retries_surface_a_pool_error_not_an_abort() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("4");
        taxorec_resilience::disable();
        // Job 13 panics on every attempt: retries exhaust, the pool
        // returns an error, the process survives.
        let r = try_par_map("test.fail", 40, |i| {
            if i == 13 {
                panic!("job 13 always dies");
            }
            i
        });
        let err = r.unwrap_err();
        assert_eq!(err.job, 13);
        assert!(err.attempts >= 1);
        assert!(err.message.contains("job 13 always dies"), "{err}");
        assert!(err.to_string().contains("test.fail"), "{err}");
    }

    #[test]
    fn sequential_path_also_isolates_panics() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("1");
        taxorec_resilience::disable();
        let r = try_par_map("test.seqfail", 8, |i| {
            if i == 5 {
                panic!("sequential boom");
            }
            i
        });
        assert_eq!(r.unwrap_err().job, 5);
    }

    #[test]
    fn flaky_job_succeeds_via_retry() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("2");
        taxorec_resilience::disable();
        // Panics on its first execution only; the retry succeeds and the
        // result is correct.
        let flaked = AtomicBool::new(false);
        let out = par_map("test.flaky", 16, |i| {
            if i == 7 && !flaked.swap(true, Ordering::SeqCst) {
                panic!("transient failure");
            }
            i + 100
        });
        assert_eq!(out, (100..116).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_panic_is_not_retried_but_surfaces_cleanly() {
        let _l = env_lock();
        let _g = ThreadsGuard::set("2");
        taxorec_resilience::disable();
        let panics_before = taxorec_telemetry::counter("parallel.job.panics").get();
        let mut data = vec![0usize; 50];
        let r = try_par_chunks("test.chunkfail", &mut data, 10, |offset, chunk| {
            if offset == 20 {
                panic!("in-place job died");
            }
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = offset + i;
            }
        });
        let err = r.unwrap_err();
        assert_eq!(err.job, 2);
        assert_eq!(err.attempts, 1, "in-place jobs are never retried");
        assert_eq!(
            taxorec_telemetry::counter("parallel.job.panics").get(),
            panics_before + 1
        );
    }

    #[test]
    fn job_retries_env_override() {
        let _l = env_lock();
        let prev = std::env::var("TAXOREC_JOB_RETRIES").ok();
        std::env::set_var("TAXOREC_JOB_RETRIES", "5");
        assert_eq!(job_retries(), 5);
        std::env::set_var("TAXOREC_JOB_RETRIES", "0");
        assert_eq!(job_retries(), 0);
        match prev {
            Some(v) => std::env::set_var("TAXOREC_JOB_RETRIES", v),
            None => std::env::remove_var("TAXOREC_JOB_RETRIES"),
        }
    }
}
