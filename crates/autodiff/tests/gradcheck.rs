//! Central finite-difference verification of every tape op's backward pass.
//!
//! Strategy: build a scalar loss `L(x) = sum(w ⊙ f(x))` with a fixed random
//! weighting `w` (so gradients of non-scalar outputs are exercised entry by
//! entry), then compare `∂L/∂x` from the tape against `(L(x+h) − L(x−h))/2h`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use taxorec_autodiff::{Csr, Matrix, Tape, Var};

/// Central finite-difference gradient of `loss_fn` with respect to the
/// entries of `x`.
fn fd_grad(x: &Matrix, loss_fn: &dyn Fn(&Matrix) -> f64, h: f64) -> Matrix {
    let mut g = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.data().len() {
        let mut xp = x.clone();
        xp.data_mut()[i] += h;
        let mut xm = x.clone();
        xm.data_mut()[i] -= h;
        g.data_mut()[i] = (loss_fn(&xp) - loss_fn(&xm)) / (2.0 * h);
    }
    g
}

fn rand_matrix(rng: &mut StdRng, rows: usize, cols: usize, scale: f64) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * scale)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// A random ball matrix: every row has norm < `max_norm`.
fn rand_ball_matrix(rng: &mut StdRng, rows: usize, cols: usize, max_norm: f64) -> Matrix {
    let mut m = rand_matrix(rng, rows, cols, 1.0);
    for r in 0..rows {
        let row = m.row_mut(r);
        let n = taxorec_geometry::vecops::norm(row);
        let target = rng.random::<f64>() * max_norm;
        if n > 1e-9 {
            for v in row.iter_mut() {
                *v *= target / n;
            }
        }
    }
    m
}

/// A random hyperboloid matrix (rows satisfy the Lorentz constraint).
fn rand_hyperboloid_matrix(rng: &mut StdRng, rows: usize, d: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, d + 1);
    for r in 0..rows {
        // Keep spatial parts away from zero so log_o stays differentiable.
        let spatial: Vec<f64> = (0..d)
            .map(|_| {
                let v: f64 = (rng.random::<f64>() - 0.5) * 2.0;
                v + 0.3 * v.signum()
            })
            .collect();
        let p = taxorec_geometry::lorentz::from_spatial(&spatial);
        m.row_mut(r).copy_from_slice(&p);
    }
    m
}

/// Asserts that the analytic gradient of `build(tape, x_var)` matches the
/// finite-difference gradient computed by replaying `build` on perturbed
/// inputs.
fn check_grad(x0: &Matrix, build: &dyn Fn(&mut Tape, Var) -> Var, tol: f64, h: f64) {
    let loss_of = |m: &Matrix| -> f64 {
        let mut t = Tape::new();
        let x = t.leaf(m.clone());
        let out = build(&mut t, x);
        t.value(out).as_scalar()
    };
    let mut t = Tape::new();
    let x = t.leaf(x0.clone());
    let out = build(&mut t, x);
    let grads = t.backward(out);
    let analytic = grads.wrt(x).expect("gradient must reach the input");
    let numeric = fd_grad(x0, &loss_of, h);
    for i in 0..analytic.data().len() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        assert!(
            (a - n).abs() <= tol * (1.0 + n.abs()),
            "entry {i}: analytic {a} vs numeric {n}"
        );
    }
}

/// Deterministic weighting matrix used to reduce matrix outputs to scalars.
fn weight_like(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    rand_matrix(rng, rows, cols, 1.0)
}

#[test]
fn grad_add_sub_neg_scale() {
    let mut rng = StdRng::seed_from_u64(1);
    let x0 = rand_matrix(&mut rng, 3, 2, 1.0);
    let w = weight_like(&mut rng, 3, 2);
    check_grad(
        &x0,
        &|t, x| {
            let w = t.leaf(w.clone());
            let a = t.scale(x, 2.5);
            let b = t.neg(x);
            let c = t.add(a, b);
            let d = t.sub(c, x);
            let e = t.hadamard(d, w);
            t.sum_all(e)
        },
        1e-6,
        1e-6,
    );
}

#[test]
fn grad_hadamard_aliased() {
    let mut rng = StdRng::seed_from_u64(2);
    let x0 = rand_matrix(&mut rng, 2, 3, 1.0);
    check_grad(
        &x0,
        &|t, x| {
            let sq = t.hadamard(x, x);
            let cube = t.hadamard(sq, x);
            t.sum_all(cube)
        },
        1e-5,
        1e-5,
    );
}

#[test]
fn grad_matmul_both_sides() {
    let mut rng = StdRng::seed_from_u64(3);
    let x0 = rand_matrix(&mut rng, 3, 4, 1.0);
    let other = rand_matrix(&mut rng, 4, 2, 1.0);
    let w = weight_like(&mut rng, 3, 2);
    check_grad(
        &x0,
        &|t, x| {
            let o = t.leaf(other.clone());
            let w = t.leaf(w.clone());
            let y = t.matmul(x, o);
            let yw = t.hadamard(y, w);
            t.sum_all(yw)
        },
        1e-6,
        1e-6,
    );
    // Right operand.
    let y0 = rand_matrix(&mut rng, 4, 2, 1.0);
    let left = rand_matrix(&mut rng, 3, 4, 1.0);
    let w2 = weight_like(&mut rng, 3, 2);
    check_grad(
        &y0,
        &|t, y| {
            let l = t.leaf(left.clone());
            let w = t.leaf(w2.clone());
            let z = t.matmul(l, y);
            let zw = t.hadamard(z, w);
            t.sum_all(zw)
        },
        1e-6,
        1e-6,
    );
}

#[test]
fn grad_spmm() {
    let mut rng = StdRng::seed_from_u64(4);
    let x0 = rand_matrix(&mut rng, 4, 3, 1.0);
    let m = Arc::new(Csr::from_triplets(
        3,
        4,
        &[
            (0, 0, 1.5),
            (0, 2, -0.5),
            (1, 1, 2.0),
            (2, 3, 0.7),
            (2, 0, 0.1),
        ],
    ));
    let w = weight_like(&mut rng, 3, 3);
    check_grad(
        &x0,
        &|t, x| {
            let y = t.spmm(&m, x);
            let w = t.leaf(w.clone());
            let yw = t.hadamard(y, w);
            t.sum_all(yw)
        },
        1e-6,
        1e-6,
    );
}

#[test]
fn grad_gather_and_slice_and_concat() {
    let mut rng = StdRng::seed_from_u64(5);
    let x0 = rand_matrix(&mut rng, 5, 2, 1.0);
    let idx = Arc::new(vec![4usize, 0, 4, 2]);
    let w = weight_like(&mut rng, 4, 2);
    check_grad(
        &x0,
        &|t, x| {
            let g = t.gather_rows(x, Arc::clone(&idx));
            let w = t.leaf(w.clone());
            let gw = t.hadamard(g, w);
            t.sum_all(gw)
        },
        1e-6,
        1e-6,
    );
    let w2 = weight_like(&mut rng, 7, 2);
    check_grad(
        &x0,
        &|t, x| {
            let s = t.slice_rows(x, 1, 2);
            let c = t.concat_rows(x, s);
            let w = t.leaf(w2.clone());
            let cw = t.hadamard(c, w);
            t.sum_all(cw)
        },
        1e-6,
        1e-6,
    );
}

#[test]
fn grad_activations() {
    let mut rng = StdRng::seed_from_u64(6);
    // Keep away from the ReLU kink.
    let mut x0 = rand_matrix(&mut rng, 3, 3, 1.0);
    for v in x0.data_mut() {
        if v.abs() < 0.05 {
            *v += 0.1;
        }
    }
    let w = weight_like(&mut rng, 3, 3);
    for op in 0..5usize {
        check_grad(
            &x0,
            &|t, x| {
                let y = match op {
                    0 => t.relu(x),
                    1 => t.leaky_relu(x, 0.2),
                    2 => t.sigmoid(x),
                    3 => t.softplus(x),
                    _ => t.tanh(x),
                };
                let w = t.leaf(w.clone());
                let yw = t.hadamard(y, w);
                t.sum_all(yw)
            },
            1e-5,
            1e-6,
        );
    }
}

#[test]
fn grad_sqrt() {
    let mut rng = StdRng::seed_from_u64(17);
    // Strictly positive inputs away from the clamp.
    let mut x0 = rand_matrix(&mut rng, 3, 3, 1.0);
    for v in x0.data_mut() {
        *v = v.abs() + 0.5;
    }
    let w = weight_like(&mut rng, 3, 3);
    check_grad(
        &x0,
        &|t, x| {
            let y = t.sqrt(x);
            let w = t.leaf(w.clone());
            let yw = t.hadamard(y, w);
            t.sum_all(yw)
        },
        1e-5,
        1e-6,
    );
}

#[test]
fn grad_row_reductions() {
    let mut rng = StdRng::seed_from_u64(7);
    let x0 = rand_matrix(&mut rng, 4, 3, 1.0);
    let other = rand_matrix(&mut rng, 4, 3, 1.0);
    let w = weight_like(&mut rng, 4, 1);
    check_grad(
        &x0,
        &|t, x| {
            let o = t.leaf(other.clone());
            let d = t.row_dot(x, o);
            let w = t.leaf(w.clone());
            let dw = t.hadamard(d, w);
            t.sum_all(dw)
        },
        1e-6,
        1e-6,
    );
    check_grad(
        &x0,
        &|t, x| {
            let n = t.row_sqnorm(x);
            let w = t.leaf(w.clone());
            let nw = t.hadamard(n, w);
            t.sum_all(nw)
        },
        1e-6,
        1e-6,
    );
    // Aliased row_dot(x, x) = row_sqnorm(x).
    check_grad(
        &x0,
        &|t, x| {
            let d = t.row_dot(x, x);
            t.sum_all(d)
        },
        1e-6,
        1e-6,
    );
}

#[test]
fn grad_mul_col_broadcast() {
    let mut rng = StdRng::seed_from_u64(8);
    let x0 = rand_matrix(&mut rng, 4, 3, 1.0);
    let s = rand_matrix(&mut rng, 4, 1, 1.0);
    let w = weight_like(&mut rng, 4, 3);
    check_grad(
        &x0,
        &|t, x| {
            let sv = t.leaf(s.clone());
            let y = t.mul_col_broadcast(x, sv);
            let w = t.leaf(w.clone());
            let yw = t.hadamard(y, w);
            t.sum_all(yw)
        },
        1e-6,
        1e-6,
    );
    // Gradient with respect to the broadcast vector.
    let s0 = rand_matrix(&mut rng, 4, 1, 1.0);
    let xfix = rand_matrix(&mut rng, 4, 3, 1.0);
    let w2 = weight_like(&mut rng, 4, 3);
    check_grad(
        &s0,
        &|t, s| {
            let xv = t.leaf(xfix.clone());
            let y = t.mul_col_broadcast(xv, s);
            let w = t.leaf(w2.clone());
            let yw = t.hadamard(y, w);
            t.sum_all(yw)
        },
        1e-6,
        1e-6,
    );
}

#[test]
fn grad_softmax_rows() {
    let mut rng = StdRng::seed_from_u64(9);
    let x0 = rand_matrix(&mut rng, 3, 4, 2.0);
    let w = weight_like(&mut rng, 3, 4);
    check_grad(
        &x0,
        &|t, x| {
            let s = t.softmax_rows(x);
            let w = t.leaf(w.clone());
            let sw = t.hadamard(s, w);
            t.sum_all(sw)
        },
        1e-5,
        1e-6,
    );
}

#[test]
fn grad_lorentz_exp_origin() {
    let mut rng = StdRng::seed_from_u64(10);
    let x0 = rand_matrix(&mut rng, 4, 3, 1.5);
    let w = weight_like(&mut rng, 4, 4);
    check_grad(
        &x0,
        &|t, x| {
            let y = t.lorentz_exp_origin(x);
            let w = t.leaf(w.clone());
            let yw = t.hadamard(y, w);
            t.sum_all(yw)
        },
        1e-5,
        1e-6,
    );
}

#[test]
fn grad_lorentz_log_origin() {
    let mut rng = StdRng::seed_from_u64(11);
    let x0 = rand_hyperboloid_matrix(&mut rng, 4, 3);
    let w = weight_like(&mut rng, 4, 3);
    check_grad(
        &x0,
        &|t, x| {
            let y = t.lorentz_log_origin(x);
            let w = t.leaf(w.clone());
            let yw = t.hadamard(y, w);
            t.sum_all(yw)
        },
        1e-4,
        1e-6,
    );
}

#[test]
fn grad_lorentz_dist_sq() {
    let mut rng = StdRng::seed_from_u64(12);
    let x0 = rand_hyperboloid_matrix(&mut rng, 4, 3);
    let y0 = rand_hyperboloid_matrix(&mut rng, 4, 3);
    let w = weight_like(&mut rng, 4, 1);
    check_grad(
        &x0,
        &|t, x| {
            let y = t.leaf(y0.clone());
            let d = t.lorentz_dist_sq(x, y);
            let w = t.leaf(w.clone());
            let dw = t.hadamard(d, w);
            t.sum_all(dw)
        },
        1e-4,
        1e-6,
    );
    // Second operand.
    check_grad(
        &y0,
        &|t, y| {
            let x = t.leaf(x0.clone());
            let d = t.lorentz_dist_sq(x, y);
            let w = t.leaf(w.clone());
            let dw = t.hadamard(d, w);
            t.sum_all(dw)
        },
        1e-4,
        1e-6,
    );
}

#[test]
fn grad_poincare_dist() {
    let mut rng = StdRng::seed_from_u64(13);
    let x0 = rand_ball_matrix(&mut rng, 4, 3, 0.7);
    let y0 = rand_ball_matrix(&mut rng, 4, 3, 0.7);
    let w = weight_like(&mut rng, 4, 1);
    check_grad(
        &x0,
        &|t, x| {
            let y = t.leaf(y0.clone());
            let d = t.poincare_dist(x, y);
            let w = t.leaf(w.clone());
            let dw = t.hadamard(d, w);
            t.sum_all(dw)
        },
        1e-4,
        1e-6,
    );
}

#[test]
fn grad_model_conversions() {
    let mut rng = StdRng::seed_from_u64(14);
    let p0 = rand_ball_matrix(&mut rng, 4, 3, 0.7);
    let w_same = weight_like(&mut rng, 4, 3);
    let w_plus = weight_like(&mut rng, 4, 4);
    check_grad(
        &p0,
        &|t, p| {
            let k = t.poincare_to_klein(p);
            let w = t.leaf(w_same.clone());
            let kw = t.hadamard(k, w);
            t.sum_all(kw)
        },
        1e-5,
        1e-6,
    );
    check_grad(
        &p0,
        &|t, k| {
            let p = t.klein_to_poincare(k);
            let w = t.leaf(w_same.clone());
            let pw = t.hadamard(p, w);
            t.sum_all(pw)
        },
        1e-5,
        1e-6,
    );
    check_grad(
        &p0,
        &|t, p| {
            let l = t.poincare_to_lorentz(p);
            let w = t.leaf(w_plus.clone());
            let lw = t.hadamard(l, w);
            t.sum_all(lw)
        },
        1e-4,
        1e-6,
    );
}

#[test]
fn grad_einstein_midpoint() {
    let mut rng = StdRng::seed_from_u64(15);
    // 5 tags in Klein coordinates, 3 items with varying tag sets.
    let tags0 = rand_ball_matrix(&mut rng, 5, 3, 0.6);
    let item_tag = Arc::new(Csr::from_triplets(
        3,
        5,
        &[
            (0, 0, 1.0),
            (0, 1, 1.0),
            (0, 4, 2.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 3, 1.0),
        ],
    ));
    let w = weight_like(&mut rng, 3, 3);
    check_grad(
        &tags0,
        &|t, tags| {
            let mu = t.einstein_midpoint(tags, &item_tag);
            let w = t.leaf(w.clone());
            let mw = t.hadamard(mu, w);
            t.sum_all(mw)
        },
        1e-4,
        1e-6,
    );
}

#[test]
fn grad_taxonomy_regularizer_path() {
    // The exact Eq. 8 tape chain of the model: cluster centers as a
    // row-normalized sparse average of tag embeddings
    // (`spmm_with_transpose`), then Poincaré distance between each tag and
    // its center, mean, and λ-scaling — checked with respect to the tag
    // embedding table `t_p`.
    let mut rng = StdRng::seed_from_u64(18);
    let t_p0 = rand_ball_matrix(&mut rng, 5, 3, 0.6);
    // Two taxonomy nodes averaging tags {0,1,4} and {2,3}; rows are
    // normalized, so centers are convex combinations and stay in the ball.
    let node_tags = Arc::new(Csr::from_triplets(
        2,
        5,
        &[
            (0, 0, 0.5),
            (0, 1, 0.25),
            (0, 4, 0.25),
            (1, 2, 0.6),
            (1, 3, 0.4),
        ],
    ));
    let node_tags_t = Arc::new(node_tags.transpose());
    // (tag, node) membership pairs of the regularizer sum.
    let term_tags = Arc::new(vec![0usize, 1, 4, 2, 3]);
    let term_rows = Arc::new(vec![0usize, 0, 0, 1, 1]);
    let lambda = 0.1;
    check_grad(
        &t_p0,
        &|t, t_p| {
            let centers = t.spmm_with_transpose(&node_tags, Arc::clone(&node_tags_t), t_p);
            let gt = t.gather_rows(t_p, Arc::clone(&term_tags));
            let gc = t.gather_rows(centers, Arc::clone(&term_rows));
            let dists = t.poincare_dist(gt, gc);
            let reg = t.mean_all(dists);
            t.scale(reg, lambda)
        },
        1e-4,
        1e-6,
    );
}

#[test]
fn grad_personalized_tag_weight_path() {
    // The Eq. 16 chain: tag-space Lorentz distances per (u, pos, neg)
    // triple, scaled per-row by the personalized weight α_u
    // (`mul_col_broadcast`), added to the interaction-space margin and
    // pushed through the hinge. Checked both with respect to the user tag
    // embeddings and with respect to α itself.
    let mut rng = StdRng::seed_from_u64(19);
    let n_triples = 4;
    let u_tg0 = rand_hyperboloid_matrix(&mut rng, 3, 2);
    let v_tg0 = rand_hyperboloid_matrix(&mut rng, 5, 2);
    let u_idx = Arc::new(vec![0usize, 1, 2, 0]);
    let p_idx = Arc::new(vec![0usize, 2, 4, 1]);
    let q_idx = Arc::new(vec![3usize, 1, 0, 4]);
    let alpha0 = Matrix::from_vec(n_triples, 1, vec![0.3, 0.8, 0.1, 0.55]);
    let base0 = rand_matrix(&mut rng, n_triples, 1, 0.5);
    let build = |t: &mut Tape, u_tg: Var, v_tg: Var, alpha: Var, base: Var| -> Var {
        let gu_t = t.gather_rows(u_tg, Arc::clone(&u_idx));
        let gp_t = t.gather_rows(v_tg, Arc::clone(&p_idx));
        let gq_t = t.gather_rows(v_tg, Arc::clone(&q_idx));
        let d_pos = t.lorentz_dist_sq(gu_t, gp_t);
        let d_neg = t.lorentz_dist_sq(gu_t, gq_t);
        let a_pos = t.mul_col_broadcast(d_pos, alpha);
        let a_neg = t.mul_col_broadcast(d_neg, alpha);
        let g_pos = t.add(base, a_pos);
        let margin = t.sub(g_pos, a_neg);
        let shifted = t.add_scalar(margin, 0.2);
        let hinge = t.relu(shifted);
        t.mean_all(hinge)
    };
    // With respect to the user tag embeddings.
    check_grad(
        &u_tg0,
        &|t, u_tg| {
            let v_tg = t.leaf(v_tg0.clone());
            let alpha = t.leaf(alpha0.clone());
            let base = t.leaf(base0.clone());
            build(t, u_tg, v_tg, alpha, base)
        },
        1e-4,
        1e-6,
    );
    // With respect to α itself.
    check_grad(
        &alpha0,
        &|t, alpha| {
            let u_tg = t.leaf(u_tg0.clone());
            let v_tg = t.leaf(v_tg0.clone());
            let base = t.leaf(base0.clone());
            build(t, u_tg, v_tg, alpha, base)
        },
        1e-4,
        1e-6,
    );
}

#[test]
fn grad_full_taxorec_like_pipeline() {
    // End-to-end chain close to the real model: Poincaré tags → Klein →
    // Einstein midpoint → Poincaré → Lorentz → log_o → propagation →
    // exp_o → distance → hinge loss.
    let mut rng = StdRng::seed_from_u64(16);
    let tags0 = rand_ball_matrix(&mut rng, 4, 2, 0.5);
    let item_tag = Arc::new(Csr::from_triplets(
        3,
        4,
        &[
            (0, 0, 1.0),
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (2, 0, 1.0),
        ],
    ));
    let adj = Arc::new(Csr::from_triplets(
        3,
        3,
        &[
            (0, 0, 1.0),
            (0, 1, 0.5),
            (1, 1, 1.0),
            (2, 2, 1.0),
            (2, 0, 0.3),
        ],
    ));
    let anchor0 = rand_hyperboloid_matrix(&mut rng, 3, 2);
    check_grad(
        &tags0,
        &|t, tags| {
            let k = t.poincare_to_klein(tags);
            let mu = t.einstein_midpoint(k, &item_tag);
            let p = t.klein_to_poincare(mu);
            let l = t.poincare_to_lorentz(p);
            let z = t.lorentz_log_origin(l);
            let z1 = t.spmm(&adj, z);
            let zs = t.add(z, z1);
            let back = t.lorentz_exp_origin(zs);
            let anchor = t.leaf(anchor0.clone());
            let d = t.lorentz_dist_sq(back, anchor);
            let dm = t.add_scalar(d, -0.5);
            let h = t.relu(dm);
            t.mean_all(h)
        },
        1e-3,
        1e-6,
    );
}
