//! A minimal dense row-major `f64` matrix.
//!
//! Kept deliberately small: the training code needs allocation-light
//! elementwise arithmetic, row access, and a plain triple-loop matmul (the
//! neural baselines use weight matrices of at most a few thousand entries).

use std::fmt;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Builds a `1×1` matrix holding a scalar.
    pub fn scalar(v: f64) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts the scalar of a `1×1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1×1`.
    pub fn as_scalar(&self) -> f64 {
        assert_eq!((self.rows, self.cols), (1, 1), "not a scalar matrix");
        self.data[0]
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += c * other`.
    pub fn axpy_assign(&mut self, c: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, c: f64) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Dense matmul `self (n×k) · other (k×m) → (n×m)`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dim mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (p, &a) in arow.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * m..(p + 1) * m];
                for j in 0..m {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for empty matrices).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > show {
            writeln!(f, "  ... ({} more rows)", self.rows - show)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_rejects_bad_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose().data(), a.data());
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-12);
        assert!(a.all_finite());
        let b = Matrix::from_vec(1, 1, vec![f64::NAN]);
        assert!(!b.all_finite());
    }

    #[test]
    fn arithmetic_assign() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.axpy_assign(0.5, &b);
        assert_eq!(a.data(), &[16.0, 32.0]);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[32.0, 64.0]);
    }
}
