//! Reverse-mode matrix automatic differentiation for TaxoRec.
//!
//! The paper's reference implementation relies on PyTorch; this crate is the
//! from-scratch substrate that replaces it. It provides:
//!
//! * [`Matrix`] — a minimal dense row-major `f64` matrix,
//! * [`Csr`] — compressed-sparse-row constants for graph propagation
//!   (paper Eq. 13) and item–tag weighting (Eq. 10),
//! * [`Tape`] / [`Var`] — an arena-based autodiff tape with elementwise,
//!   linear-algebra, reduction, and *hyperbolic composite* ops
//!   (Lorentz exp/log at the origin, Lorentz/Poincaré distances, model
//!   conversions, Einstein-midpoint aggregation) whose backward passes are
//!   hand-derived in [`hyper`] and finite-difference-verified in
//!   `tests/gradcheck.rs`.
//!
//! A typical training step builds a fresh tape per iteration:
//!
//! ```
//! use taxorec_autodiff::{Matrix, Tape};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_vec(1, 2, vec![0.5, -1.0]));
//! let sq = tape.hadamard(x, x);
//! let loss = tape.sum_all(sq);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.wrt(x).unwrap().data(), &[1.0, -2.0]);
//! ```

pub mod hyper;
pub mod matrix;
pub mod sparse;
pub mod tape;

pub use matrix::Matrix;
pub use sparse::Csr;
pub use tape::{Gradients, Tape, Var};
