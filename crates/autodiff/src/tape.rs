//! Reverse-mode automatic differentiation over dense matrices.
//!
//! A [`Tape`] is an append-only arena of computation nodes. Forward ops are
//! methods on the tape that record the op and its value; [`Tape::backward`]
//! walks the arena in reverse, accumulating gradients.
//!
//! Design notes:
//!
//! * **Values are eager** — each op computes its result immediately, so
//!   `tape.value(v)` is always available (used by the training loop for
//!   inference without a second code path).
//! * **Constants vs. parameters** — graph structure (adjacency, item–tag
//!   weights, gather indices) enters as `Arc`-shared constants inside ops;
//!   only dense matrices become differentiable [`Var`]s.
//! * **Binary ops with aliased parents** (e.g. `hadamard(x, x)`) are
//!   handled by accumulating each parent's contribution separately.
//! * The hyperbolic composite ops delegate to [`crate::hyper`]; everything
//!   is finite-difference-checked in `tests/gradcheck.rs`.

use std::sync::Arc;

use crate::hyper;
use crate::matrix::Matrix;
use crate::sparse::Csr;

/// Handle to a tape node. Cheap to copy; only valid for the tape that
/// created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Raw node index (for diagnostics).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded operation, with parent handles and any constant payloads.
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Neg(Var),
    Scale(Var, f64),
    AddScalar(Var),
    Hadamard(Var, Var),
    /// `(n×d) ⊙ broadcast (n×1)` column vector across columns.
    MulColBroadcast(Var, Var),
    MatMul(Var, Var),
    /// `y = M·x` with constant sparse `M`; `mt` caches `Mᵀ` for backward.
    Spmm {
        mt: Arc<Csr>,
        x: Var,
    },
    GatherRows {
        x: Var,
        idx: Arc<Vec<usize>>,
    },
    ConcatRows(Var, Var),
    SliceRows {
        x: Var,
        start: usize,
    },
    SumAll(Var),
    MeanAll(Var),
    Relu(Var),
    LeakyRelu(Var, f64),
    Sigmoid(Var),
    Softplus(Var),
    Sqrt(Var),
    Tanh(Var),
    RowDot(Var, Var),
    RowSqNorm(Var),
    SoftmaxRows(Var),
    LorentzExpO(Var),
    LorentzLogO(Var),
    LorentzDistSq(Var, Var),
    PoincareDist(Var, Var),
    PoincareToKlein(Var),
    KleinToPoincare(Var),
    PoincareToLorentz(Var),
    EinsteinMidpoint {
        tags: Var,
        item_tag: Arc<Csr>,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradient bundle returned by [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient with respect to `v`, if any gradient reached it.
    pub fn wrt(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `v` (zeros matrix if none
    /// reached it is *not* synthesized — returns `None`).
    pub fn take(&mut self, v: Var) -> Option<Matrix> {
        self.grads.get_mut(v.0).and_then(|g| g.take())
    }
}

/// Append-only autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Registers a leaf (parameter or input) matrix.
    pub fn leaf(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf)
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "add shape");
        let mut m = self.value(a).clone();
        m.add_assign(self.value(b));
        self.push(m, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "sub shape");
        let va = self.value(a);
        let vb = self.value(b);
        let data = va
            .data()
            .iter()
            .zip(vb.data())
            .map(|(x, y)| x - y)
            .collect();
        let m = Matrix::from_vec(va.rows(), va.cols(), data);
        self.push(m, Op::Sub(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let m = self.value(a).map(|x| -x);
        self.push(m, Op::Neg(a))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let m = self.value(a).map(|x| c * x);
        self.push(m, Op::Scale(a, c))
    }

    /// Addition of a constant scalar to every entry.
    pub fn add_scalar(&mut self, a: Var, c: f64) -> Var {
        let m = self.value(a).map(|x| x + c);
        self.push(m, Op::AddScalar(a))
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "hadamard shape"
        );
        let va = self.value(a);
        let vb = self.value(b);
        let data = va
            .data()
            .iter()
            .zip(vb.data())
            .map(|(x, y)| x * y)
            .collect();
        let m = Matrix::from_vec(va.rows(), va.cols(), data);
        self.push(m, Op::Hadamard(a, b))
    }

    /// Broadcast-multiplies each row of `x (n×d)` by the matching entry of
    /// the column vector `s (n×1)`.
    pub fn mul_col_broadcast(&mut self, x: Var, s: Var) -> Var {
        let (n, d) = self.value(x).shape();
        assert_eq!(self.value(s).shape(), (n, 1), "broadcast column shape");
        let mut m = self.value(x).clone();
        for r in 0..n {
            let c = self.value(s).get(r, 0);
            for j in 0..d {
                let cur = m.get(r, j);
                m.set(r, j, cur * c);
            }
        }
        self.push(m, Op::MulColBroadcast(x, s))
    }

    /// Dense matrix product `a·b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let m = self.value(a).matmul(self.value(b));
        self.push(m, Op::MatMul(a, b))
    }

    /// Sparse-constant × dense product `M·x` (graph propagation, Eq. 13).
    /// The transpose is computed once here and reused every backward pass.
    pub fn spmm(&mut self, m: &Arc<Csr>, x: Var) -> Var {
        let value = m.matmul(self.value(x));
        let mt = Arc::new(m.transpose());
        self.push(value, Op::Spmm { mt, x })
    }

    /// Like [`Tape::spmm`] but with a caller-precomputed transpose, avoiding
    /// the per-call transposition when the same matrix is reused.
    pub fn spmm_with_transpose(&mut self, m: &Arc<Csr>, mt: Arc<Csr>, x: Var) -> Var {
        let value = m.matmul(self.value(x));
        self.push(value, Op::Spmm { mt, x })
    }

    /// Row gather: `out[i] = x[idx[i]]`.
    pub fn gather_rows(&mut self, x: Var, idx: Arc<Vec<usize>>) -> Var {
        let vx = self.value(x);
        let d = vx.cols();
        let mut m = Matrix::zeros(idx.len(), d);
        for (i, &r) in idx.iter().enumerate() {
            m.row_mut(i).copy_from_slice(vx.row(r));
        }
        self.push(m, Op::GatherRows { x, idx })
    }

    /// Vertical concatenation (`a` on top of `b`). Column counts must match.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        assert_eq!(va.cols(), vb.cols(), "concat_rows column mismatch");
        let mut data = Vec::with_capacity(va.data().len() + vb.data().len());
        data.extend_from_slice(va.data());
        data.extend_from_slice(vb.data());
        let m = Matrix::from_vec(va.rows() + vb.rows(), va.cols(), data);
        self.push(m, Op::ConcatRows(a, b))
    }

    /// Contiguous row slice `x[start..start+len]`.
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let vx = self.value(x);
        assert!(start + len <= vx.rows(), "slice_rows out of range");
        let d = vx.cols();
        let data = vx.data()[start * d..(start + len) * d].to_vec();
        let m = Matrix::from_vec(len, d, data);
        self.push(m, Op::SliceRows { x, start })
    }

    /// Sum of all entries → `1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let m = Matrix::scalar(self.value(a).sum());
        self.push(m, Op::SumAll(a))
    }

    /// Mean of all entries → `1×1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let n = (va.rows() * va.cols()) as f64;
        let m = Matrix::scalar(va.sum() / n);
        self.push(m, Op::MeanAll(a))
    }

    /// Elementwise `max(x, 0)` — the hinge of the LMNN loss (Eq. 18).
    pub fn relu(&mut self, a: Var) -> Var {
        let m = self.value(a).map(|x| x.max(0.0));
        self.push(m, Op::Relu(a))
    }

    /// Elementwise LeakyReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f64) -> Var {
        let m = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(m, Op::LeakyRelu(a, alpha))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let m = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(m, Op::Sigmoid(a))
    }

    /// Elementwise softplus `ln(1 + eˣ)`, computed stably as
    /// `max(x, 0) + ln(1 + e^(−|x|))`. `-softplus(-x)` is the BPR
    /// log-sigmoid objective.
    pub fn softplus(&mut self, a: Var) -> Var {
        let m = self.value(a).map(|x| x.max(0.0) + (-x.abs()).exp().ln_1p());
        self.push(m, Op::Softplus(a))
    }

    /// Elementwise square root of `max(x, 0)`; the gradient is clamped
    /// near zero (`1/(2·max(√x, 1e−6))`).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let m = self.value(a).map(|x| x.max(0.0).sqrt());
        self.push(m, Op::Sqrt(a))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let m = self.value(a).map(f64::tanh);
        self.push(m, Op::Tanh(a))
    }

    /// Rowwise dot product `(n×d, n×d) → (n×1)`.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "row_dot shape"
        );
        let va = self.value(a);
        let vb = self.value(b);
        let n = va.rows();
        let mut m = Matrix::zeros(n, 1);
        for r in 0..n {
            m.set(r, 0, taxorec_geometry::vecops::dot(va.row(r), vb.row(r)));
        }
        self.push(m, Op::RowDot(a, b))
    }

    /// Rowwise squared norm `(n×d) → (n×1)`.
    pub fn row_sqnorm(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let n = va.rows();
        let mut m = Matrix::zeros(n, 1);
        for r in 0..n {
            m.set(r, 0, taxorec_geometry::vecops::sqnorm(va.row(r)));
        }
        self.push(m, Op::RowSqNorm(a))
    }

    /// Rowwise softmax (max-shifted for stability).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let (n, d) = va.shape();
        let mut m = Matrix::zeros(n, d);
        for r in 0..n {
            let row = va.row(r);
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            let orow = m.row_mut(r);
            for j in 0..d {
                let e = (row[j] - mx).exp();
                orow[j] = e;
                z += e;
            }
            for o in orow.iter_mut() {
                *o /= z;
            }
        }
        self.push(m, Op::SoftmaxRows(a))
    }

    /// Lorentz exponential map at the origin (paper Eq. 15), rowwise.
    pub fn lorentz_exp_origin(&mut self, z: Var) -> Var {
        let m = hyper::lorentz_exp_origin_fwd(self.value(z));
        self.push(m, Op::LorentzExpO(z))
    }

    /// Lorentz logarithmic map at the origin (paper Eq. 12), rowwise.
    pub fn lorentz_log_origin(&mut self, x: Var) -> Var {
        let m = hyper::lorentz_log_origin_fwd(self.value(x));
        self.push(m, Op::LorentzLogO(x))
    }

    /// Rowwise squared Lorentz distance (paper Eq. 17 terms).
    pub fn lorentz_dist_sq(&mut self, x: Var, y: Var) -> Var {
        let m = hyper::lorentz_dist_sq_fwd(self.value(x), self.value(y));
        self.push(m, Op::LorentzDistSq(x, y))
    }

    /// Rowwise Poincaré distance (paper Eq. 8 terms).
    pub fn poincare_dist(&mut self, x: Var, y: Var) -> Var {
        let m = hyper::poincare_dist_fwd(self.value(x), self.value(y));
        self.push(m, Op::PoincareDist(x, y))
    }

    /// Poincaré → Klein conversion (paper Eq. 9), rowwise.
    pub fn poincare_to_klein(&mut self, p: Var) -> Var {
        let m = hyper::poincare_to_klein_fwd(self.value(p));
        self.push(m, Op::PoincareToKlein(p))
    }

    /// Klein → Poincaré conversion (inner map of paper Eq. 11), rowwise.
    pub fn klein_to_poincare(&mut self, k: Var) -> Var {
        let m = hyper::klein_to_poincare_fwd(self.value(k));
        self.push(m, Op::KleinToPoincare(k))
    }

    /// Poincaré → Lorentz lift (paper Eq. 3), rowwise.
    pub fn poincare_to_lorentz(&mut self, p: Var) -> Var {
        let m = hyper::poincare_to_lorentz_fwd(self.value(p));
        self.push(m, Op::PoincareToLorentz(p))
    }

    /// Weighted Einstein-midpoint aggregation of Klein tag embeddings into
    /// item embeddings (paper Eq. 10).
    pub fn einstein_midpoint(&mut self, tags: Var, item_tag: &Arc<Csr>) -> Var {
        let m = hyper::einstein_midpoint_fwd(self.value(tags), item_tag);
        self.push(
            m,
            Op::EinsteinMidpoint {
                tags,
                item_tag: Arc::clone(item_tag),
            },
        )
    }

    /// Runs reverse-mode accumulation from the scalar node `loss`
    /// (seeded with gradient 1).
    ///
    /// # Panics
    /// Panics if `loss` is not `1×1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward from non-scalar");
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            self.accumulate_parents(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        Gradients { grads }
    }

    /// Adds `contribution` into the gradient slot for `v`.
    fn add_grad(grads: &mut [Option<Matrix>], v: Var, contribution: Matrix) {
        match &mut grads[v.0] {
            Some(g) => g.add_assign(&contribution),
            slot @ None => *slot = Some(contribution),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn accumulate_parents(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                Self::add_grad(grads, *a, g.clone());
                Self::add_grad(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                Self::add_grad(grads, *a, g.clone());
                Self::add_grad(grads, *b, g.map(|x| -x));
            }
            Op::Neg(a) => Self::add_grad(grads, *a, g.map(|x| -x)),
            Op::Scale(a, c) => {
                let c = *c;
                Self::add_grad(grads, *a, g.map(|x| c * x));
            }
            Op::AddScalar(a) => Self::add_grad(grads, *a, g.clone()),
            Op::Hadamard(a, b) => {
                let (a, b) = (*a, *b);
                let mut ga = g.clone();
                ga.data_mut()
                    .iter_mut()
                    .zip(self.value(b).data())
                    .for_each(|(x, y)| *x *= y);
                let mut gb = g.clone();
                gb.data_mut()
                    .iter_mut()
                    .zip(self.value(a).data())
                    .for_each(|(x, y)| *x *= y);
                Self::add_grad(grads, a, ga);
                Self::add_grad(grads, b, gb);
            }
            Op::MulColBroadcast(x, s) => {
                let (x, s) = (*x, *s);
                let vx = self.value(x);
                let vs = self.value(s);
                let (n, d) = vx.shape();
                let mut gx = Matrix::zeros(n, d);
                let mut gs = Matrix::zeros(n, 1);
                for r in 0..n {
                    let c = vs.get(r, 0);
                    let grow = g.row(r);
                    let xrow = vx.row(r);
                    let gxr = gx.row_mut(r);
                    let mut acc = 0.0;
                    for j in 0..d {
                        gxr[j] = grow[j] * c;
                        acc += grow[j] * xrow[j];
                    }
                    gs.set(r, 0, acc);
                }
                Self::add_grad(grads, x, gx);
                Self::add_grad(grads, s, gs);
            }
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let ga = g.matmul(&self.value(b).transpose());
                let gb = self.value(a).transpose().matmul(g);
                Self::add_grad(grads, a, ga);
                Self::add_grad(grads, b, gb);
            }
            Op::Spmm { mt, x } => {
                let gx = mt.matmul(g);
                Self::add_grad(grads, *x, gx);
            }
            Op::GatherRows { x, idx } => {
                let vx = self.value(*x);
                let mut gx = Matrix::zeros(vx.rows(), vx.cols());
                for (i, &r) in idx.iter().enumerate() {
                    let grow = g.row(i);
                    let dst = gx.row_mut(r);
                    for (d, s) in dst.iter_mut().zip(grow) {
                        *d += s;
                    }
                }
                Self::add_grad(grads, *x, gx);
            }
            Op::ConcatRows(a, b) => {
                let (a, b) = (*a, *b);
                let na = self.value(a).rows();
                let d = g.cols();
                let ga = Matrix::from_vec(na, d, g.data()[..na * d].to_vec());
                let gb = Matrix::from_vec(g.rows() - na, d, g.data()[na * d..].to_vec());
                Self::add_grad(grads, a, ga);
                Self::add_grad(grads, b, gb);
            }
            Op::SliceRows { x, start } => {
                let vx = self.value(*x);
                let mut gx = Matrix::zeros(vx.rows(), vx.cols());
                for r in 0..g.rows() {
                    gx.row_mut(start + r).copy_from_slice(g.row(r));
                }
                Self::add_grad(grads, *x, gx);
            }
            Op::SumAll(a) => {
                let va = self.value(*a);
                Self::add_grad(grads, *a, Matrix::full(va.rows(), va.cols(), g.as_scalar()));
            }
            Op::MeanAll(a) => {
                let va = self.value(*a);
                let n = (va.rows() * va.cols()) as f64;
                Self::add_grad(
                    grads,
                    *a,
                    Matrix::full(va.rows(), va.cols(), g.as_scalar() / n),
                );
            }
            Op::Relu(a) => {
                let va = self.value(*a);
                let data = g
                    .data()
                    .iter()
                    .zip(va.data())
                    .map(|(&gi, &xi)| if xi > 0.0 { gi } else { 0.0 })
                    .collect();
                Self::add_grad(grads, *a, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::LeakyRelu(a, alpha) => {
                let va = self.value(*a);
                let alpha = *alpha;
                let data = g
                    .data()
                    .iter()
                    .zip(va.data())
                    .map(|(&gi, &xi)| if xi > 0.0 { gi } else { alpha * gi })
                    .collect();
                Self::add_grad(grads, *a, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Sigmoid(a) => {
                let out = &self.nodes[i].value;
                let data = g
                    .data()
                    .iter()
                    .zip(out.data())
                    .map(|(&gi, &s)| gi * s * (1.0 - s))
                    .collect();
                Self::add_grad(grads, *a, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Softplus(a) => {
                let va = self.value(*a);
                let data = g
                    .data()
                    .iter()
                    .zip(va.data())
                    .map(|(&gi, &x)| gi / (1.0 + (-x).exp()))
                    .collect();
                Self::add_grad(grads, *a, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Sqrt(a) => {
                let out = &self.nodes[i].value;
                let data = g
                    .data()
                    .iter()
                    .zip(out.data())
                    .map(|(&gi, &s)| gi / (2.0 * s.max(1e-6)))
                    .collect();
                Self::add_grad(grads, *a, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Tanh(a) => {
                let out = &self.nodes[i].value;
                let data = g
                    .data()
                    .iter()
                    .zip(out.data())
                    .map(|(&gi, &t)| gi * (1.0 - t * t))
                    .collect();
                Self::add_grad(grads, *a, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::RowDot(a, b) => {
                let (a, b) = (*a, *b);
                let va = self.value(a);
                let vb = self.value(b);
                let (n, d) = va.shape();
                let mut ga = Matrix::zeros(n, d);
                let mut gb = Matrix::zeros(n, d);
                for r in 0..n {
                    let c = g.get(r, 0);
                    let (ar, br) = (va.row(r), vb.row(r));
                    let gar = ga.row_mut(r);
                    for j in 0..d {
                        gar[j] = c * br[j];
                    }
                    let gbr = gb.row_mut(r);
                    for j in 0..d {
                        gbr[j] = c * ar[j];
                    }
                }
                Self::add_grad(grads, a, ga);
                Self::add_grad(grads, b, gb);
            }
            Op::RowSqNorm(a) => {
                let va = self.value(*a);
                let (n, d) = va.shape();
                let mut ga = Matrix::zeros(n, d);
                for r in 0..n {
                    let c = 2.0 * g.get(r, 0);
                    let ar = va.row(r);
                    let gr = ga.row_mut(r);
                    for j in 0..d {
                        gr[j] = c * ar[j];
                    }
                }
                Self::add_grad(grads, *a, ga);
            }
            Op::SoftmaxRows(a) => {
                let out = &self.nodes[i].value;
                let (n, d) = out.shape();
                let mut ga = Matrix::zeros(n, d);
                for r in 0..n {
                    let orow = out.row(r);
                    let grow = g.row(r);
                    let dotv = taxorec_geometry::vecops::dot(orow, grow);
                    let gr = ga.row_mut(r);
                    for j in 0..d {
                        gr[j] = orow[j] * (grow[j] - dotv);
                    }
                }
                Self::add_grad(grads, *a, ga);
            }
            Op::LorentzExpO(z) => {
                let vz = self.value(*z);
                let mut gz = Matrix::zeros(vz.rows(), vz.cols());
                hyper::lorentz_exp_origin_bwd(vz, g, &mut gz);
                Self::add_grad(grads, *z, gz);
            }
            Op::LorentzLogO(x) => {
                let vx = self.value(*x);
                let mut gx = Matrix::zeros(vx.rows(), vx.cols());
                hyper::lorentz_log_origin_bwd(vx, g, &mut gx);
                Self::add_grad(grads, *x, gx);
            }
            Op::LorentzDistSq(x, y) => {
                let (x, y) = (*x, *y);
                let vx = self.value(x);
                let vy = self.value(y);
                let mut gx = Matrix::zeros(vx.rows(), vx.cols());
                let mut gy = Matrix::zeros(vy.rows(), vy.cols());
                hyper::lorentz_dist_sq_bwd(vx, vy, g, &mut gx, &mut gy);
                Self::add_grad(grads, x, gx);
                Self::add_grad(grads, y, gy);
            }
            Op::PoincareDist(x, y) => {
                let (x, y) = (*x, *y);
                let vx = self.value(x);
                let vy = self.value(y);
                let mut gx = Matrix::zeros(vx.rows(), vx.cols());
                let mut gy = Matrix::zeros(vy.rows(), vy.cols());
                hyper::poincare_dist_bwd(vx, vy, g, &mut gx, &mut gy);
                Self::add_grad(grads, x, gx);
                Self::add_grad(grads, y, gy);
            }
            Op::PoincareToKlein(p) => {
                let vp = self.value(*p);
                let mut gp = Matrix::zeros(vp.rows(), vp.cols());
                hyper::poincare_to_klein_bwd(vp, g, &mut gp);
                Self::add_grad(grads, *p, gp);
            }
            Op::KleinToPoincare(k) => {
                let vk = self.value(*k);
                let mut gk = Matrix::zeros(vk.rows(), vk.cols());
                hyper::klein_to_poincare_bwd(vk, g, &mut gk);
                Self::add_grad(grads, *k, gk);
            }
            Op::PoincareToLorentz(p) => {
                let vp = self.value(*p);
                let mut gp = Matrix::zeros(vp.rows(), vp.cols());
                hyper::poincare_to_lorentz_bwd(vp, g, &mut gp);
                Self::add_grad(grads, *p, gp);
            }
            Op::EinsteinMidpoint { tags, item_tag } => {
                let vt = self.value(*tags);
                let out = &self.nodes[i].value;
                let mut gt = Matrix::zeros(vt.rows(), vt.cols());
                hyper::einstein_midpoint_bwd(vt, item_tag, out, g, &mut gt);
                Self::add_grad(grads, *tags, gt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_chain_gradient() {
        // f(x) = sum(3x + 2) over a 2×2 ⇒ df/dx = 3 everywhere.
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = t.scale(x, 3.0);
        let z = t.add_scalar(y, 2.0);
        let loss = t.sum_all(z);
        assert_eq!(t.value(loss).as_scalar(), 38.0);
        let g = t.backward(loss);
        assert_eq!(g.wrt(x).unwrap().data(), &[3.0; 4]);
    }

    #[test]
    fn hadamard_with_aliased_parents_gives_2x() {
        // f(x) = sum(x ⊙ x) ⇒ df/dx = 2x.
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        let sq = t.hadamard(x, x);
        let loss = t.sum_all(sq);
        let g = t.backward(loss);
        assert_eq!(g.wrt(x).unwrap().data(), &[2.0, -4.0, 1.0]);
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::scalar(1.0));
        let y = t.leaf(Matrix::scalar(2.0));
        let loss = t.sum_all(x);
        let g = t.backward(loss);
        assert!(g.wrt(y).is_none());
        assert!(g.wrt(x).is_some());
    }

    #[test]
    fn matmul_gradient_matches_known_formula() {
        // loss = sum(A·B): dA = 1·Bᵀ (row sums of B broadcast), dB = Aᵀ·1.
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = t.leaf(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = t.matmul(a, b);
        let loss = t.sum_all(c);
        let g = t.backward(loss);
        assert_eq!(g.wrt(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g.wrt(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let idx = Arc::new(vec![2usize, 0, 2]);
        let gthr = t.gather_rows(x, idx);
        assert_eq!(t.value(gthr).row(0), &[5.0, 6.0]);
        let loss = t.sum_all(gthr);
        let g = t.backward(loss);
        // Row 2 gathered twice ⇒ gradient 2; row 1 never ⇒ 0.
        assert_eq!(g.wrt(x).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn spmm_backward_uses_transpose() {
        let mut t = Tape::new();
        let m = Arc::new(Csr::from_triplets(2, 3, &[(0, 0, 2.0), (1, 2, 3.0)]));
        let x = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]));
        let y = t.spmm(&m, x);
        assert_eq!(t.value(y).data(), &[2.0, 3.0]);
        let loss = t.sum_all(y);
        let g = t.backward(loss);
        assert_eq!(g.wrt(x).unwrap().data(), &[2.0, 0.0, 3.0]);
    }

    #[test]
    fn concat_slice_roundtrip() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let c = t.concat_rows(a, b);
        let back = t.slice_rows(c, 1, 2);
        assert_eq!(t.value(back).data(), &[3.0, 4.0, 5.0, 6.0]);
        let loss = t.sum_all(back);
        let g = t.backward(loss);
        assert!(g.wrt(a).unwrap().data().iter().all(|&x| x == 0.0));
        assert!(g.wrt(b).unwrap().data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]));
        let y = t.relu(x);
        let loss = t.sum_all(y);
        let g = t.backward(loss);
        assert_eq!(g.wrt(x).unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad_sums_to_zero() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let s = t.softmax_rows(x);
        let total: f64 = t.value(s).data().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // loss = first component of softmax: gradient rows sum to ~0.
        let w = t.leaf(Matrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]));
        let h = t.hadamard(s, w);
        let loss = t.sum_all(h);
        let g = t.backward(loss);
        let gsum: f64 = g.wrt(x).unwrap().data().iter().sum();
        assert!(gsum.abs() < 1e-12);
    }

    #[test]
    fn mean_all_divides_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let loss = t.mean_all(x);
        assert_eq!(t.value(loss).as_scalar(), 2.5);
        let g = t.backward(loss);
        assert_eq!(g.wrt(x).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "backward from non-scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        let _ = t.backward(x);
    }
}
