//! Compressed sparse row (CSR) matrices for graph propagation.
//!
//! The GCN global-aggregation step of the paper (Eq. 13) multiplies a
//! normalized bipartite adjacency by dense embedding matrices every forward
//! pass; CSR × dense is the only sparse kernel required. Matrices here are
//! *constants* of the computation graph (graph structure and item–tag
//! weights), so no gradient flows into them — the tape only needs the
//! transpose for back-propagating through the dense operand.

use crate::matrix::Matrix;

/// Rows per parallel spmm job. Large enough to amortize job claiming,
/// small enough that skewed row lengths still load-balance.
const SPMM_ROW_BLOCK: usize = 64;

/// Immutable CSR matrix.
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, length = nnz.
    indices: Vec<u32>,
    /// Non-zero values, length = nnz.
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from unsorted `(row, col, value)` triplets.
    /// Duplicate coordinates are summed.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds {rows}x{cols}"
            );
        }
        let mut per_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            per_row[r].push((c as u32, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sum of values in row `r`.
    pub fn row_sum(&self, r: usize) -> f64 {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.values[lo..hi].iter().sum()
    }

    /// Sparse × dense product `self (n×k) · x (k×m) → (n×m)`.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.cols()`.
    ///
    /// Output rows are independent, so large products are computed across
    /// the [`taxorec_parallel`] pool in contiguous row blocks; each row's
    /// accumulation order is unchanged, so the result is bit-identical to
    /// the sequential loop for any `TAXOREC_THREADS`.
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.cols, "spmm inner dim mismatch");
        let m = x.cols();
        let mut out = Matrix::zeros(self.rows, m);
        let fill_row = |r: usize, orow: &mut [f64]| {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for p in lo..hi {
                let c = self.indices[p] as usize;
                let v = self.values[p];
                let xrow = x.row(c);
                for (o, xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        };
        // Pool spin-up only pays off for substantial products; the cutoff
        // affects scheduling, never values.
        let flops = self.nnz().saturating_mul(m);
        if self.rows >= 2 * SPMM_ROW_BLOCK && flops >= 1 << 15 {
            taxorec_parallel::par_chunks(
                "autodiff.spmm",
                out.data_mut(),
                SPMM_ROW_BLOCK * m,
                |offset, block| {
                    let r0 = offset / m;
                    for (i, orow) in block.chunks_mut(m).enumerate() {
                        fill_row(r0 + i, orow);
                    }
                },
            );
        } else {
            for r in 0..self.rows {
                fill_row(r, out.row_mut(r));
            }
        }
        out
    }

    /// Transposed copy (`CSR` of the transpose).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols];
        for &c in &self.indices {
            counts[c as usize] += 1;
        }
        let mut indptr = vec![0usize; self.cols + 1];
        for i in 0..self.cols {
            indptr[i + 1] = indptr[i] + counts[i];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = indptr.clone();
        for r in 0..self.rows {
            for p in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[p] as usize;
                let slot = next[c];
                indices[slot] = r as u32;
                values[slot] = self.values[p];
                next[c] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Row-normalizes in place: each row is divided by its sum (rows with a
    /// zero sum are left untouched). Produces the `1/|N_u|` mean-aggregation
    /// weights of paper Eq. 13.
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            let s = self.row_sum(r);
            if s.abs() < 1e-15 {
                continue;
            }
            for p in self.indptr[r]..self.indptr[r + 1] {
                self.values[p] /= s;
            }
        }
    }

    /// Converts to a dense matrix (tests / tiny inputs only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, out.get(r, c) + v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(3, 4, &[(0, 1, 2.0), (0, 3, 1.0), (2, 0, 5.0), (1, 2, -1.0)])
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_dense().get(0, 0), 3.5);
    }

    #[test]
    fn row_iter_sorted() {
        let m = sample();
        let row0: Vec<_> = m.row_iter(0).collect();
        assert_eq!(row0, vec![(1, 2.0), (3, 1.0)]);
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_iter(1).count(), 1);
    }

    #[test]
    fn matmul_matches_dense() {
        let m = sample();
        let x = Matrix::from_vec(4, 2, (1..=8).map(f64::from).collect());
        let sparse = m.matmul(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse.data(), dense.data());
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(
            m.transpose().to_dense().data(),
            m.to_dense().transpose().data()
        );
        assert_eq!(m.transpose().rows(), 4);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let i = Csr::identity(3);
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(i.matmul(&x).data(), x.data());
    }

    #[test]
    fn normalize_rows_makes_row_sums_one() {
        let mut m = sample();
        m.normalize_rows();
        assert!((m.row_sum(0) - 1.0).abs() < 1e-12);
        assert!((m.row_sum(1) - 1.0).abs() < 1e-12); // single −1 entry → −1/−1 = 1
        assert!((m.row_sum(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = Csr::from_triplets(3, 3, &[(0, 0, 1.0)]);
        assert_eq!(m.row_iter(1).count(), 0);
        let x = Matrix::zeros(3, 2);
        let y = m.matmul(&x);
        assert_eq!(y.shape(), (3, 2));
    }
}
