//! Forward/backward kernels of the rowwise hyperbolic composite ops.
//!
//! Each function pair implements one differentiable building block of the
//! TaxoRec computation graph with an analytically derived backward pass.
//! Treating these as single tape nodes (instead of chains of primitive ops)
//! keeps the tape small and lets each backward handle its own numerical
//! guards. Every derivation is verified against central finite differences
//! in `tests/gradcheck.rs`.
//!
//! Shape conventions: hyperboloid points carry `d+1` ambient columns (time
//! coordinate first); ball/Klein/tangent vectors carry `d` columns. All ops
//! act row by row.

use crate::matrix::Matrix;
use crate::sparse::Csr;
use taxorec_geometry::{arcosh, arcosh_grad, vecops, EPS_DIV, EPS_SMALL, MAX_BALL_NORM};

/// Numerically safe `sinh(r)/r`.
#[inline]
fn sinhc(r: f64) -> f64 {
    if r < EPS_SMALL {
        1.0 + r * r / 6.0
    } else {
        r.sinh() / r
    }
}

/// Numerically safe `(cosh(r)·r − sinh(r))/r³` (→ 1/3 as r→0).
#[inline]
fn coshc_residual(r: f64) -> f64 {
    if r < 1e-4 {
        1.0 / 3.0 + r * r / 30.0
    } else {
        (r.cosh() * r - r.sinh()) / (r * r * r)
    }
}

// ---------------------------------------------------------------------------
// exp_o : tangent (n×d) → hyperboloid (n×(d+1))   [paper Eq. 15]
// ---------------------------------------------------------------------------

/// Forward of the Lorentz exponential map at the origin.
pub fn lorentz_exp_origin_fwd(z: &Matrix) -> Matrix {
    let (n, d) = z.shape();
    let mut out = Matrix::zeros(n, d + 1);
    for r in 0..n {
        let zr = z.row(r);
        let rad = vecops::norm(zr);
        let orow = out.row_mut(r);
        orow[0] = rad.cosh();
        let f = sinhc(rad);
        for j in 0..d {
            orow[j + 1] = f * zr[j];
        }
    }
    out
}

/// Backward of [`lorentz_exp_origin_fwd`]:
/// `z̄ += ḡ₀·sinh(r)/r·z + sinh(r)/r·ḡ_s + (z·ḡ_s)·(cosh(r)r − sinh(r))/r³ · z`.
pub fn lorentz_exp_origin_bwd(z: &Matrix, grad_out: &Matrix, grad_z: &mut Matrix) {
    let (n, d) = z.shape();
    for r in 0..n {
        let zr = z.row(r);
        let g = grad_out.row(r);
        let rad = vecops::norm(zr);
        let s = sinhc(rad);
        let c = coshc_residual(rad);
        let g0 = g[0];
        let gs = &g[1..];
        let zg = vecops::dot(zr, gs);
        let gz = grad_z.row_mut(r);
        for j in 0..d {
            gz[j] += g0 * s * zr[j] + s * gs[j] + zg * c * zr[j];
        }
    }
}

// ---------------------------------------------------------------------------
// log_o : hyperboloid (n×(d+1)) → tangent (n×d)   [paper Eq. 12 at o]
// ---------------------------------------------------------------------------

/// Forward of the Lorentz logarithmic map at the origin:
/// `z = arcosh(x₀)·x_s/‖x_s‖` per row.
pub fn lorentz_log_origin_fwd(x: &Matrix) -> Matrix {
    let (n, dc) = x.shape();
    let d = dc - 1;
    let mut out = Matrix::zeros(n, d);
    for r in 0..n {
        let xr = x.row(r);
        let spatial = &xr[1..];
        let nn = vecops::norm(spatial);
        if nn < EPS_DIV {
            continue;
        }
        let f = arcosh(xr[0]) / nn;
        let orow = out.row_mut(r);
        for j in 0..d {
            orow[j] = f * spatial[j];
        }
    }
    out
}

/// Backward of [`lorentz_log_origin_fwd`]:
/// `x̄₀ += (ḡ·x_s/n)·arcosh'(x₀)`,
/// `x̄_s += (a/n)·ḡ − (a/n³)(x_s·ḡ)·x_s` with `a = arcosh(x₀)`, `n = ‖x_s‖`.
pub fn lorentz_log_origin_bwd(x: &Matrix, grad_out: &Matrix, grad_x: &mut Matrix) {
    let (nrows, dc) = x.shape();
    let d = dc - 1;
    for r in 0..nrows {
        let xr = x.row(r);
        let spatial = &xr[1..];
        let g = grad_out.row(r);
        let nn = vecops::norm(spatial);
        if nn < EPS_DIV {
            continue;
        }
        let a = arcosh(xr[0]);
        let sg = vecops::dot(spatial, g);
        let gx = grad_x.row_mut(r);
        gx[0] += (sg / nn) * arcosh_grad(xr[0]);
        let f1 = a / nn;
        let f2 = a / (nn * nn * nn) * sg;
        for j in 0..d {
            gx[j + 1] += f1 * g[j] - f2 * spatial[j];
        }
    }
}

// ---------------------------------------------------------------------------
// Squared Lorentz distance, rowwise: (n×(d+1), n×(d+1)) → (n×1) [Eq. 17]
// ---------------------------------------------------------------------------

/// Forward of the rowwise squared Lorentz distance
/// `D_r = arcosh(−⟨x_r, y_r⟩_L)²`.
pub fn lorentz_dist_sq_fwd(x: &Matrix, y: &Matrix) -> Matrix {
    assert_eq!(x.shape(), y.shape());
    let n = x.rows();
    let mut out = Matrix::zeros(n, 1);
    for r in 0..n {
        let s = -taxorec_geometry::lorentz::inner(x.row(r), y.row(r));
        let d = arcosh(s);
        out.set(r, 0, d * d);
    }
    out
}

/// Backward of [`lorentz_dist_sq_fwd`]: with `s = −⟨x,y⟩_L`,
/// `dD/ds = 2·arcosh(s)·arcosh'(s)`; `∂s/∂x = (y₀, −y₁, …, −y_d)` and
/// symmetrically for `y`.
pub fn lorentz_dist_sq_bwd(
    x: &Matrix,
    y: &Matrix,
    grad_out: &Matrix,
    grad_x: &mut Matrix,
    grad_y: &mut Matrix,
) {
    let (n, dc) = x.shape();
    for r in 0..n {
        let xr = x.row(r);
        let yr = y.row(r);
        let s = -taxorec_geometry::lorentz::inner(xr, yr);
        let dd_ds = 2.0 * arcosh(s) * arcosh_grad(s) * grad_out.get(r, 0);
        let gx = grad_x.row_mut(r);
        gx[0] += dd_ds * yr[0];
        for j in 1..dc {
            gx[j] -= dd_ds * yr[j];
        }
        let gy = grad_y.row_mut(r);
        gy[0] += dd_ds * xr[0];
        for j in 1..dc {
            gy[j] -= dd_ds * xr[j];
        }
    }
}

// ---------------------------------------------------------------------------
// Poincaré distance, rowwise: (n×d, n×d) → (n×1)   [Eq. 8 regularizer]
// ---------------------------------------------------------------------------

/// Forward of the rowwise Poincaré distance.
pub fn poincare_dist_fwd(x: &Matrix, y: &Matrix) -> Matrix {
    assert_eq!(x.shape(), y.shape());
    let n = x.rows();
    let mut out = Matrix::zeros(n, 1);
    for r in 0..n {
        out.set(
            r,
            0,
            taxorec_geometry::poincare::distance(x.row(r), y.row(r)),
        );
    }
    out
}

/// Backward of [`poincare_dist_fwd`] via
/// [`taxorec_geometry::poincare::distance_grad`].
pub fn poincare_dist_bwd(
    x: &Matrix,
    y: &Matrix,
    grad_out: &Matrix,
    grad_x: &mut Matrix,
    grad_y: &mut Matrix,
) {
    let n = x.rows();
    for r in 0..n {
        let w = grad_out.get(r, 0);
        if w == 0.0 {
            continue;
        }
        // distance_grad accumulates, matching our += convention. grad_x and
        // grad_y are always distinct buffers (the tape materializes per-
        // parent contributions separately), so the borrows are disjoint.
        let mut gx = vec![0.0; x.cols()];
        let mut gy = vec![0.0; y.cols()];
        taxorec_geometry::poincare::distance_grad(x.row(r), y.row(r), w, &mut gx, &mut gy);
        for (a, b) in grad_x.row_mut(r).iter_mut().zip(&gx) {
            *a += b;
        }
        for (a, b) in grad_y.row_mut(r).iter_mut().zip(&gy) {
            *a += b;
        }
    }
}

// ---------------------------------------------------------------------------
// Model conversions, rowwise
// ---------------------------------------------------------------------------

/// Forward of Poincaré → Klein (paper Eq. 9): `k = 2p/(1+‖p‖²)` per row.
pub fn poincare_to_klein_fwd(p: &Matrix) -> Matrix {
    let (n, d) = p.shape();
    let mut out = Matrix::zeros(n, d);
    for r in 0..n {
        taxorec_geometry::convert::poincare_to_klein(p.row(r), out.row_mut(r));
    }
    out
}

/// Backward of [`poincare_to_klein_fwd`]:
/// `p̄ += (2/q)ḡ − (4(ḡ·p)/q²)p` with `q = 1+‖p‖²`.
pub fn poincare_to_klein_bwd(p: &Matrix, grad_out: &Matrix, grad_p: &mut Matrix) {
    let (n, d) = p.shape();
    for r in 0..n {
        let pr = p.row(r);
        let g = grad_out.row(r);
        let q = 1.0 + vecops::sqnorm(pr);
        let gp = vecops::dot(g, pr);
        let gout = grad_p.row_mut(r);
        for j in 0..d {
            gout[j] += 2.0 * g[j] / q - 4.0 * gp * pr[j] / (q * q);
        }
    }
}

/// Forward of Klein → Poincaré (inner map of paper Eq. 11):
/// `p = k/(1+√(1−‖k‖²))` per row.
pub fn klein_to_poincare_fwd(k: &Matrix) -> Matrix {
    let (n, d) = k.shape();
    let mut out = Matrix::zeros(n, d);
    for r in 0..n {
        taxorec_geometry::convert::klein_to_poincare(k.row(r), out.row_mut(r));
    }
    out
}

/// Backward of [`klein_to_poincare_fwd`]:
/// `k̄ += ḡ/q + ((ḡ·k)/(βq²))·k` with `β = √(1−‖k‖²)`, `q = 1+β`.
pub fn klein_to_poincare_bwd(k: &Matrix, grad_out: &Matrix, grad_k: &mut Matrix) {
    let (n, d) = k.shape();
    for r in 0..n {
        let kr = k.row(r);
        let g = grad_out.row(r);
        let n2 = vecops::sqnorm(kr).min(MAX_BALL_NORM * MAX_BALL_NORM);
        let beta = (1.0 - n2).sqrt().max(EPS_SMALL);
        let q = 1.0 + beta;
        let gk = vecops::dot(g, kr);
        let gout = grad_k.row_mut(r);
        for j in 0..d {
            gout[j] += g[j] / q + gk * kr[j] / (beta * q * q);
        }
    }
}

/// Forward of Poincaré → Lorentz (paper Eq. 3), rowwise:
/// `x = ((1+‖p‖²), 2p)/(1−‖p‖²)`.
pub fn poincare_to_lorentz_fwd(p: &Matrix) -> Matrix {
    let (n, d) = p.shape();
    let mut out = Matrix::zeros(n, d + 1);
    for r in 0..n {
        taxorec_geometry::convert::poincare_to_lorentz(p.row(r), out.row_mut(r));
    }
    out
}

/// Backward of [`poincare_to_lorentz_fwd`]:
/// `p̄ += ḡ₀·(4/B²)p + (2/B)ḡ_s + (4(ḡ_s·p)/B²)p` with `B = 1−‖p‖²`.
pub fn poincare_to_lorentz_bwd(p: &Matrix, grad_out: &Matrix, grad_p: &mut Matrix) {
    let (n, d) = p.shape();
    for r in 0..n {
        let pr = p.row(r);
        let g = grad_out.row(r);
        let b = (1.0 - vecops::sqnorm(pr)).max(EPS_DIV);
        let g0 = g[0];
        let gs = &g[1..];
        let gp = vecops::dot(gs, pr);
        let gout = grad_p.row_mut(r);
        for j in 0..d {
            gout[j] += g0 * 4.0 * pr[j] / (b * b) + 2.0 * gs[j] / b + 4.0 * gp * pr[j] / (b * b);
        }
    }
}

// ---------------------------------------------------------------------------
// Einstein midpoint aggregation: (S×d Klein tags, item–tag CSR) → (n×d)
// [paper Eq. 10]
// ---------------------------------------------------------------------------

/// Forward of the weighted Einstein midpoint: row `v` of the output is the
/// midpoint of the Klein tag embeddings of item `v`, weighted by the
/// item–tag matrix `Ψ`. Items without tags map to the Klein origin.
pub fn einstein_midpoint_fwd(tags: &Matrix, item_tag: &Csr) -> Matrix {
    assert_eq!(item_tag.cols(), tags.rows(), "item-tag/tag-matrix mismatch");
    let d = tags.cols();
    let n = item_tag.rows();
    let mut out = Matrix::zeros(n, d);
    for v in 0..n {
        let mut wsum = 0.0;
        {
            let orow = out.row_mut(v);
            for (t, w) in item_tag.row_iter(v) {
                let tr = tags.row(t);
                let g = klein_gamma(tr) * w;
                for j in 0..d {
                    orow[j] += g * tr[j];
                }
                wsum += g;
            }
        }
        if wsum.abs() < EPS_DIV {
            out.row_mut(v).fill(0.0);
        } else {
            let orow = out.row_mut(v);
            for o in orow.iter_mut() {
                *o /= wsum;
            }
            vecops::clip_norm(orow, MAX_BALL_NORM);
        }
    }
    out
}

/// Lorentz factor of a Klein point with boundary clamping.
#[inline]
fn klein_gamma(x: &[f64]) -> f64 {
    let n2 = vecops::sqnorm(x).min(MAX_BALL_NORM * MAX_BALL_NORM);
    1.0 / (1.0 - n2).sqrt()
}

/// Backward of [`einstein_midpoint_fwd`]: for each item `v` with weight
/// `ψ_t` on tag `t`, `γ_t = 1/√(1−‖T_t‖²)`, `W = Σψγ`, `μ` the midpoint:
///
/// `T̄_t += ψ_t·(γ_t·μ̄ + γ_t³·(T_t·μ̄ − μ·μ̄)·T_t)/W`.
pub fn einstein_midpoint_bwd(
    tags: &Matrix,
    item_tag: &Csr,
    out: &Matrix,
    grad_out: &Matrix,
    grad_tags: &mut Matrix,
) {
    let d = tags.cols();
    let n = item_tag.rows();
    for v in 0..n {
        let g = grad_out.row(v);
        if g.iter().all(|&x| x == 0.0) {
            continue;
        }
        let mu = out.row(v);
        let mu_g = vecops::dot(mu, g);
        let mut wsum = 0.0;
        for (t, w) in item_tag.row_iter(v) {
            wsum += klein_gamma(tags.row(t)) * w;
        }
        if wsum.abs() < EPS_DIV {
            continue;
        }
        for (t, w) in item_tag.row_iter(v) {
            let tr = tags.row(t);
            let gamma = klein_gamma(tr);
            let t_g = vecops::dot(tr, g);
            let coef = w / wsum;
            let c1 = coef * gamma;
            let c2 = coef * gamma * gamma * gamma * (t_g - mu_g);
            let gt = grad_tags.row_mut(t);
            for j in 0..d {
                gt[j] += c1 * g[j] + c2 * tr[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinhc_series_matches() {
        assert!((sinhc(1e-8) - 1.0).abs() < 1e-12);
        assert!((sinhc(0.5) - 0.5f64.sinh() / 0.5).abs() < 1e-12);
    }

    #[test]
    fn coshc_residual_limit() {
        assert!((coshc_residual(1e-6) - 1.0 / 3.0).abs() < 1e-9);
        let r: f64 = 0.3;
        let exact = (r.cosh() * r - r.sinh()) / (r * r * r);
        assert!((coshc_residual(r) - exact).abs() < 1e-12);
    }

    #[test]
    fn exp_log_fwd_roundtrip() {
        let z = Matrix::from_vec(2, 3, vec![0.4, -0.2, 0.7, 0.0, 1.5, -0.9]);
        let x = lorentz_exp_origin_fwd(&z);
        let back = lorentz_log_origin_fwd(&x);
        for i in 0..6 {
            assert!((back.data()[i] - z.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn dist_sq_of_identical_rows_is_zero() {
        let z = Matrix::from_vec(1, 2, vec![0.3, -0.4]);
        let x = lorentz_exp_origin_fwd(&z);
        let d = lorentz_dist_sq_fwd(&x, &x);
        assert!(d.as_scalar() < 1e-9);
    }

    #[test]
    fn midpoint_matches_geometry_module() {
        // Two tags, one item with both tags, unit weights: compare against
        // the klein::einstein_midpoint reference path.
        let tags = Matrix::from_vec(2, 2, vec![0.5, 0.0, -0.3, 0.2]);
        let it = Csr::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let out = einstein_midpoint_fwd(&tags, &it);
        let mut expect = [0.0; 2];
        taxorec_geometry::klein::einstein_midpoint(
            &[tags.row(0), tags.row(1)],
            &[1.0, 1.0],
            &mut expect,
        );
        assert!((out.get(0, 0) - expect[0]).abs() < 1e-12);
        assert!((out.get(0, 1) - expect[1]).abs() < 1e-12);
    }

    #[test]
    fn midpoint_untagged_item_is_origin_with_zero_grad() {
        let tags = Matrix::from_vec(1, 2, vec![0.5, 0.1]);
        let it = Csr::from_triplets(2, 1, &[(0, 0, 1.0)]);
        let out = einstein_midpoint_fwd(&tags, &it);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        let go = Matrix::full(2, 2, 1.0);
        let mut gt = Matrix::zeros(1, 2);
        einstein_midpoint_bwd(&tags, &it, &out, &go, &mut gt);
        assert!(gt.all_finite());
    }
}
