//! Poincaré k-means (Algorithm 1, line 3).
//!
//! Clusters tag embeddings living in the Poincaré ball: assignment uses the
//! Poincaré distance; centroid updates use the Einstein midpoint (the
//! practical surrogate for the Fréchet mean — see
//! [`taxorec_geometry::poincare::einstein_centroid`]). Seeding is
//! k-means++ (with Poincaré distances), which the ablation benches compare
//! against uniform seeding.

use rand::rngs::StdRng;
use rand::RngExt;
use taxorec_geometry::poincare;

/// Points per parallel assignment job: node tag sets below this size run
/// inline (single job), larger ones fan out without per-point overhead.
const KMEANS_ASSIGN_CHUNK: usize = 256;

/// Seeding strategy for [`poincare_kmeans`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Seeding {
    /// k-means++: spread initial centroids by D² sampling (default).
    PlusPlus,
    /// Uniformly random distinct points (ablation baseline).
    Uniform,
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KmeansResult {
    /// `assignment[i]` = cluster of point `i` (`0..k`).
    pub assignment: Vec<usize>,
    /// Flattened centroids (`k × dim`).
    pub centroids: Vec<f64>,
    /// Number of full Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs Lloyd's algorithm with Poincaré distances over the embeddings of
/// the listed points.
///
/// * `emb`/`dim` — flat row-major embedding matrix (all tags),
/// * `points` — the tag ids to cluster (a node's tag set),
/// * `k` — number of clusters (reduced to `points.len()` if larger).
///
/// Empty clusters are re-seeded to the point currently farthest from its
/// centroid. Deterministic for a fixed RNG state.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn poincare_kmeans(
    emb: &[f64],
    dim: usize,
    points: &[u32],
    k: usize,
    seeding: Seeding,
    max_iters: usize,
    rng: &mut StdRng,
) -> KmeansResult {
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    assert!(k > 0, "k must be positive");
    let k = k.min(points.len());
    let row = |t: u32| -> &[f64] { &emb[t as usize * dim..(t as usize + 1) * dim] };

    let mut centroids = seed(emb, dim, points, k, seeding, rng);
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    let mut total_moves = 0u64;
    for _ in 0..max_iters {
        iterations += 1;
        // Assignment step: each point's nearest centroid is independent of
        // every other point's, so it parallelizes bit-identically; the
        // bookkeeping (changed / total_moves) is applied sequentially.
        let cents = &centroids;
        let nearest = taxorec_parallel::par_map_chunked(
            "taxo.kmeans.assign",
            points.len(),
            KMEANS_ASSIGN_CHUNK,
            |i| {
                let t = points[i];
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let d = poincare::distance(row(t), &cents[c * dim..(c + 1) * dim]);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                (best, best_d)
            },
        );
        let mut changed = false;
        let mut dists = vec![0.0f64; points.len()];
        for (i, &(best, best_d)) in nearest.iter().enumerate() {
            dists[i] = best_d;
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
                total_moves += 1;
            }
        }
        // Re-seed empty clusters to the farthest point. Points grabbed by
        // an earlier empty cluster this round are excluded, so several
        // simultaneously-empty clusters each get a distinct point instead
        // of fighting over the same argmax (which left all but the last
        // one still empty).
        let mut reseeded: Vec<usize> = Vec::new();
        for c in 0..k {
            if !assignment.contains(&c) {
                let far = dists
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !reseeded.contains(i))
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i);
                if let Some(far) = far {
                    assignment[far] = c;
                    reseeded.push(far);
                    changed = true;
                }
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        // Update step: Einstein centroid per cluster — clusters are
        // disjoint, so each is computed exactly as in the sequential loop.
        let assign = &assignment;
        let new_centroids = taxorec_parallel::par_map("taxo.kmeans.update", k, |c| {
            let members: Vec<&[f64]> = points
                .iter()
                .enumerate()
                .filter(|&(i, _)| assign[i] == c)
                .map(|(_, &t)| row(t))
                .collect();
            if members.is_empty() {
                return None;
            }
            let weights = vec![1.0; members.len()];
            let mut out = vec![0.0; dim];
            poincare::einstein_centroid(&members, &weights, &mut out);
            Some(out)
        });
        for (c, cent) in new_centroids.into_iter().enumerate() {
            if let Some(cent) = cent {
                centroids[c * dim..(c + 1) * dim].copy_from_slice(&cent);
            }
        }
    }
    taxorec_telemetry::histogram("taxo.kmeans.iters").observe(iterations as f64);
    // Churn: mean assignment flips per point over the whole run — high
    // values flag unstable clusterings (near-boundary embeddings).
    taxorec_telemetry::histogram("taxo.kmeans.churn")
        .observe(total_moves as f64 / points.len() as f64);
    KmeansResult {
        assignment,
        centroids,
        iterations,
    }
}

fn seed(
    emb: &[f64],
    dim: usize,
    points: &[u32],
    k: usize,
    seeding: Seeding,
    rng: &mut StdRng,
) -> Vec<f64> {
    let row = |t: u32| -> &[f64] { &emb[t as usize * dim..(t as usize + 1) * dim] };
    let mut centroids = Vec::with_capacity(k * dim);
    match seeding {
        Seeding::Uniform => {
            // Sample k distinct indices (points.len() ≥ k is guaranteed).
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < k {
                let i = rng.random_range(0..points.len());
                if !chosen.contains(&i) {
                    chosen.push(i);
                }
            }
            for i in chosen {
                centroids.extend_from_slice(row(points[i]));
            }
        }
        Seeding::PlusPlus => {
            let first = rng.random_range(0..points.len());
            centroids.extend_from_slice(row(points[first]));
            let mut d2 = vec![0.0f64; points.len()];
            while centroids.len() < k * dim {
                let n_cent = centroids.len() / dim;
                let mut total = 0.0;
                for (i, &t) in points.iter().enumerate() {
                    let mut best = f64::INFINITY;
                    for c in 0..n_cent {
                        let d = poincare::distance(row(t), &centroids[c * dim..(c + 1) * dim]);
                        best = best.min(d);
                    }
                    d2[i] = best * best;
                    total += d2[i];
                }
                let next = if total <= 1e-15 {
                    rng.random_range(0..points.len())
                } else {
                    let mut target = rng.random::<f64>() * total;
                    let mut pick = points.len() - 1;
                    for (i, &w) in d2.iter().enumerate() {
                        if target < w {
                            pick = i;
                            break;
                        }
                        target -= w;
                    }
                    pick
                };
                centroids.extend_from_slice(row(points[next]));
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Two tight groups of ball points around (±0.5, 0).
    fn two_blobs() -> (Vec<f64>, usize, Vec<u32>) {
        let mut emb = Vec::new();
        for i in 0..6 {
            let side = if i < 3 { 0.5 } else { -0.5 };
            emb.extend_from_slice(&[side + 0.02 * i as f64, 0.01 * i as f64]);
        }
        (emb, 2, (0..6).collect())
    }

    #[test]
    fn separates_two_blobs() {
        let (emb, dim, pts) = two_blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let r = poincare_kmeans(&emb, dim, &pts, 2, Seeding::PlusPlus, 50, &mut rng);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    fn uniform_seeding_also_converges() {
        let (emb, dim, pts) = two_blobs();
        let mut rng = StdRng::seed_from_u64(11);
        let r = poincare_kmeans(&emb, dim, &pts, 2, Seeding::Uniform, 50, &mut rng);
        assert_ne!(r.assignment[0], r.assignment[5]);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let emb = vec![0.1, 0.0, -0.1, 0.0];
        let mut rng = StdRng::seed_from_u64(1);
        let r = poincare_kmeans(&emb, 2, &[0, 1], 5, Seeding::PlusPlus, 10, &mut rng);
        assert!(r.assignment.iter().all(|&a| a < 2));
        assert_eq!(r.centroids.len(), 2 * 2);
    }

    #[test]
    fn single_point_single_cluster() {
        let emb = vec![0.3, -0.2];
        let mut rng = StdRng::seed_from_u64(1);
        let r = poincare_kmeans(&emb, 2, &[0], 1, Seeding::PlusPlus, 10, &mut rng);
        assert_eq!(r.assignment, vec![0]);
        assert!((r.centroids[0] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn identical_points_fill_all_clusters() {
        // Degenerate: every point identical; empty-cluster reseeding must
        // keep the algorithm finite and assignments valid.
        let emb = vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.2];
        let mut rng = StdRng::seed_from_u64(5);
        let r = poincare_kmeans(&emb, 2, &[0, 1, 2], 2, Seeding::PlusPlus, 20, &mut rng);
        assert!(r.assignment.iter().all(|&a| a < 2));
    }

    #[test]
    fn collapsed_assignment_reseeds_all_clusters_without_nan() {
        // Craft a total assignment collapse: every point identical, so all
        // distances tie and every point lands in cluster 0 each iteration,
        // leaving k−1 clusters empty simultaneously. Reseeding must hand
        // each empty cluster a *distinct* point (the old argmax-per-cluster
        // gave them all the same point, so only the last one filled) and
        // the resulting centroids must stay finite.
        let emb: Vec<f64> = (0..5).flat_map(|_| [0.25, -0.1]).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let r = poincare_kmeans(&emb, 2, &[0, 1, 2, 3, 4], 3, Seeding::Uniform, 8, &mut rng);
        for c in 0..3 {
            assert!(
                r.assignment.contains(&c),
                "cluster {c} empty after reseed: {:?}",
                r.assignment
            );
        }
        assert!(
            r.centroids.iter().all(|v| v.is_finite()),
            "non-finite centroid: {:?}",
            r.centroids
        );
    }

    #[test]
    fn reseed_handles_more_empty_clusters_than_points_gracefully() {
        // k is clamped to the point count, so k == points.len() with
        // identical points exercises the reseed path where every cluster
        // but one is empty and exactly enough points exist to fill them.
        let emb = vec![0.4, 0.0, 0.4, 0.0, 0.4, 0.0];
        let mut rng = StdRng::seed_from_u64(7);
        let r = poincare_kmeans(&emb, 2, &[0, 1, 2], 3, Seeding::PlusPlus, 10, &mut rng);
        let mut seen: Vec<usize> = r.assignment.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "each cluster owns exactly one point");
        assert!(r.centroids.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (emb, dim, pts) = two_blobs();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = poincare_kmeans(&emb, dim, &pts, 2, Seeding::PlusPlus, 50, &mut r1);
        let b = poincare_kmeans(&emb, dim, &pts, 2, Seeding::PlusPlus, 50, &mut r2);
        assert_eq!(a.assignment, b.assignment);
    }
}
