//! Automated tag taxonomy construction — the paper's Algorithm 1 plus the
//! recursive top-down driver.
//!
//! For one node with tag scope `T`:
//!
//! 1. `T_sub ← T`;
//! 2. repeat: Poincaré-k-means `T_sub` into `G_1..G_K`; score every tag of
//!    each `G_k` with the representation-aware score (Eq. 7); drop tags
//!    scoring below `δ` (they are "general" and stay at the parent);
//!    `T_sub ← ∪ G_k`; stop when nothing changes;
//! 3. the surviving `G_k` become children; recurse into each child that is
//!    still large enough and above the depth limit.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kmeans::{poincare_kmeans, Seeding};
use crate::scoring::{score, GroupStats};
use crate::tree::Taxonomy;

/// Configuration of the construction algorithm.
#[derive(Clone, Debug)]
pub struct ConstructConfig {
    /// Number of children per split, `K ∈ {2,3,4}` in the paper (§V-D).
    pub k: usize,
    /// Representativeness threshold `δ ∈ {0.25, 0.5, 0.75}` (§V-D).
    pub delta: f64,
    /// Stop splitting below this many tags.
    pub min_node_size: usize,
    /// Maximum tree depth (root = 0).
    pub max_depth: usize,
    /// k-means Lloyd iteration cap.
    pub kmeans_iters: usize,
    /// Centroid seeding strategy (ablation knob).
    pub seeding: Seeding,
    /// Adaptive-refinement iteration cap (Algorithm 1's `while True` is
    /// guaranteed to terminate, the cap is a defensive bound).
    pub refine_iters: usize,
    /// RNG seed for k-means.
    pub seed: u64,
}

impl Default for ConstructConfig {
    fn default() -> Self {
        Self {
            k: 3,
            delta: 0.25,
            min_node_size: 4,
            max_depth: 4,
            kmeans_iters: 30,
            seeding: Seeding::PlusPlus,
            refine_iters: 10,
            seed: 17,
        }
    }
}

/// Output of one Algorithm 1 invocation on a node.
#[derive(Clone, Debug)]
pub struct SplitResult {
    /// The children tag sets with per-tag scores (aligned).
    pub groups: Vec<(Vec<u32>, Vec<f64>)>,
    /// Tags pushed back up to the parent.
    pub general: Vec<u32>,
}

/// Algorithm 1: adaptive clustering of one tag set into at most `K`
/// refined children, returning the children and the pushed-up general
/// tags.
///
/// `emb`/`dim` is the flat Poincaré tag-embedding matrix; `item_tags` the
/// per-item tag lists (the matrix `Ψ`); `n_tags` the tag-universe size.
pub fn adaptive_split(
    emb: &[f64],
    dim: usize,
    tags: &[u32],
    item_tags: &[Vec<u32>],
    n_tags: usize,
    config: &ConstructConfig,
    rng: &mut StdRng,
) -> SplitResult {
    let mut t_sub: Vec<u32> = tags.to_vec();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for _ in 0..config.refine_iters {
        if t_sub.len() < 2 {
            groups = if t_sub.is_empty() {
                Vec::new()
            } else {
                vec![t_sub.clone()]
            };
            break;
        }
        // Line 3: Poincaré k-means over the current subset.
        let km = poincare_kmeans(
            emb,
            dim,
            &t_sub,
            config.k,
            config.seeding,
            config.kmeans_iters,
            rng,
        );
        let k = km.centroids.len() / dim;
        let mut candidate: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (i, &t) in t_sub.iter().enumerate() {
            candidate[km.assignment[i]].push(t);
        }
        candidate.retain(|g| !g.is_empty());
        // Lines 4–8: score every tag against its siblings; drop general
        // tags (score < δ).
        let stats = GroupStats::compute_all(&candidate, item_tags, n_tags);
        let mut refined: Vec<Vec<u32>> = Vec::with_capacity(candidate.len());
        for (gi, g) in candidate.iter().enumerate() {
            let kept: Vec<u32> = g
                .iter()
                .copied()
                .filter(|&t| score(t, gi, &stats) >= config.delta)
                .collect();
            refined.push(kept);
        }
        refined.retain(|g| !g.is_empty());
        // Line 9–12: converged when the union stops shrinking.
        let mut union: Vec<u32> = refined.iter().flatten().copied().collect();
        union.sort_unstable();
        let mut prev = t_sub.clone();
        prev.sort_unstable();
        groups = refined;
        if union == prev {
            break;
        }
        t_sub = union;
        if t_sub.is_empty() {
            groups = Vec::new();
            break;
        }
    }
    // Score the final groups once more for the regularizer weights.
    let stats = GroupStats::compute_all(&groups, item_tags, n_tags);
    let scored: Vec<(Vec<u32>, Vec<f64>)> = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let s: Vec<f64> = g.iter().map(|&t| score(t, gi, &stats)).collect();
            (g.clone(), s)
        })
        .collect();
    let in_groups: std::collections::HashSet<u32> =
        scored.iter().flat_map(|(g, _)| g.iter().copied()).collect();
    let general: Vec<u32> = tags
        .iter()
        .copied()
        .filter(|t| !in_groups.contains(t))
        .collect();
    SplitResult {
        groups: scored,
        general,
    }
}

/// Builds the full taxonomy by applying [`adaptive_split`] top-down from
/// the root (scope = all tags), recursing into children that are large
/// enough.
pub fn construct_taxonomy(
    emb: &[f64],
    dim: usize,
    n_tags: usize,
    item_tags: &[Vec<u32>],
    config: &ConstructConfig,
) -> Taxonomy {
    let _span = taxorec_telemetry::span!("taxo.rebuild");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let all: Vec<u32> = (0..n_tags as u32).collect();
    let mut taxo = Taxonomy::new_root(all);
    let mut stack = vec![0usize];
    while let Some(node_idx) = stack.pop() {
        let (scope, level) = {
            let n = &taxo.nodes()[node_idx];
            (n.tags.clone(), n.level)
        };
        if scope.len() < config.min_node_size.max(2) || level >= config.max_depth {
            continue;
        }
        let split = adaptive_split(emb, dim, &scope, item_tags, n_tags, config, &mut rng);
        // A split into a single child that keeps everything is a no-op.
        let moved: usize = split.groups.iter().map(|(g, _)| g.len()).sum();
        if split.groups.len() < 2 || moved == 0 {
            continue;
        }
        for (g, s) in split.groups {
            let child = taxo.add_child(node_idx, g, s);
            stack.push(child);
        }
        taxo.node_mut(node_idx).retained = split.general;
    }
    taxorec_telemetry::counter("taxo.rebuild.count").inc(1);
    taxorec_telemetry::gauge("taxo.rebuild.nodes").set(taxo.len() as f64);
    taxorec_telemetry::gauge("taxo.rebuild.depth").set(taxo.depth() as f64);
    debug_assert_eq!(taxo.validate(), Ok(()));
    taxo
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    /// Embeds tags using their planted tree: top-level tags near origin in
    /// K well-separated directions, children near their parents — an
    /// idealized "trained" embedding.
    fn oracle_embedding(d: &taxorec_data::Dataset, dim: usize) -> Vec<f64> {
        use std::f64::consts::TAU;
        let tree = d.taxonomy_truth.as_ref().unwrap();
        let mut emb = vec![0.0; d.n_tags * dim];
        for t in 0..d.n_tags as u32 {
            let depth = tree.depth(t);
            // Direction: hash of the tag's top ancestor + jitter by id.
            let mut top = t;
            while let Some(p) = tree.parent(top) {
                top = p;
            }
            let angle = (top as f64) * TAU / 7.3 + (t as f64) * 0.05;
            let radius = 0.25 + 0.22 * depth as f64;
            emb[t as usize * dim] = radius * angle.cos();
            emb[t as usize * dim + 1] = radius * angle.sin();
        }
        emb
    }

    #[test]
    fn split_pushes_up_ubiquitous_tag() {
        // Tag 2 co-occurs with everything (general); tags 0 and 1 are
        // concentrated; embeddings put 0/1 far apart and 2 in between, so
        // k-means first groups {0,2} vs {1}. The scoring function must rank
        // the general tag below the concentrated one in its host group;
        // with δ between the two scores, Algorithm 1 pushes it up.
        // Tags 0..3 each tag 30 items; tag 4 is on every item (general).
        let mut item_tags = Vec::new();
        for t in 0..4u32 {
            for _ in 0..30 {
                item_tags.push(vec![t, 4]);
            }
        }
        // Embeddings: {0,1} right, {2,3} left, 4 in between — k-means first
        // groups {0,1,4} vs {2,3}.
        let emb = vec![
            0.60, 0.00, //
            0.65, 0.05, //
            -0.60, 0.00, //
            -0.65, -0.05, //
            0.05, 0.30,
        ];
        // Self-calibrating δ: scoring ordering is asserted, then used.
        let stats = vec![
            GroupStats::compute(&[0, 1, 4], &item_tags, 5),
            GroupStats::compute(&[2, 3], &item_tags, 5),
        ];
        let s_general = score(4, 0, &stats);
        let s_concentrated = score(0, 0, &stats);
        assert!(
            s_general < s_concentrated,
            "general tag must score below concentrated ({s_general} vs {s_concentrated})"
        );
        let delta = 0.5 * (s_general + s_concentrated);
        let cfg = ConstructConfig {
            k: 2,
            delta,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let r = adaptive_split(&emb, 2, &[0, 1, 2, 3, 4], &item_tags, 5, &cfg, &mut rng);
        assert!(r.general.contains(&4), "general tag pushed up: {r:?}");
        // The refinement converged on non-empty fine-grained groups of
        // concentrated tags only.
        assert!(!r.groups.is_empty());
        let grouped: Vec<u32> = r
            .groups
            .iter()
            .flat_map(|(g, _)| g.iter().copied())
            .collect();
        assert!(!grouped.contains(&4));
        assert!(!grouped.is_empty());
    }

    #[test]
    fn split_terminates_on_degenerate_embeddings() {
        let item_tags = vec![vec![0], vec![1], vec![2]];
        let emb = vec![0.1; 6]; // all identical
        let cfg = ConstructConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let r = adaptive_split(&emb, 2, &[0, 1, 2], &item_tags, 3, &cfg, &mut rng);
        // No panic; outputs are structurally sane.
        let total: usize = r.groups.iter().map(|(g, _)| g.len()).sum();
        assert!(total + r.general.len() <= 3 + r.general.len());
    }

    #[test]
    fn construct_builds_multi_level_tree_with_oracle_embeddings() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let emb = oracle_embedding(&d, 2);
        let cfg = ConstructConfig {
            k: 4,
            delta: 0.2,
            min_node_size: 3,
            ..Default::default()
        };
        let taxo = construct_taxonomy(&emb, 2, d.n_tags, &d.item_tags, &cfg);
        assert!(taxo.depth() >= 1, "should split at least once");
        assert_eq!(taxo.validate(), Ok(()));
        // Every tag resides somewhere.
        for t in 0..d.n_tags as u32 {
            let _ = taxo.residence(t);
        }
    }

    #[test]
    fn construct_respects_max_depth() {
        let d = generate_preset(Preset::Yelp, Scale::Tiny);
        let emb = oracle_embedding(&d, 2);
        let cfg = ConstructConfig {
            max_depth: 1,
            delta: 0.2,
            ..Default::default()
        };
        let taxo = construct_taxonomy(&emb, 2, d.n_tags, &d.item_tags, &cfg);
        assert!(taxo.depth() <= 1);
    }

    #[test]
    fn construct_handles_tiny_tag_universe() {
        let item_tags = vec![vec![0], vec![1]];
        let emb = vec![0.3, 0.0, -0.3, 0.0];
        let cfg = ConstructConfig::default();
        let taxo = construct_taxonomy(&emb, 2, 2, &item_tags, &cfg);
        // min_node_size=4 > 2 tags ⇒ just a root.
        assert_eq!(taxo.len(), 1);
    }
}
