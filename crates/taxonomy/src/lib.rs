//! Automated tag taxonomy construction (paper §IV-C).
//!
//! Implements the representation-aware scoring function (Eqs. 4–7), the
//! Poincaré k-means / adaptive clustering of Algorithm 1, the resulting
//! [`Taxonomy`] tree over tag sets, the Eq. 8 regularization plan consumed
//! by the training loop, and quality metrics against a planted ground
//! truth.

pub mod attach;
pub mod construct;
pub mod kmeans;
pub mod metrics;
pub mod regularizer;
pub mod scoring;
pub mod tree;

pub use attach::{attach_tag, AttachReport, ATTACH_SLACK};
pub use construct::{adaptive_split, construct_taxonomy, ConstructConfig, SplitResult};
pub use kmeans::{poincare_kmeans, KmeansResult, Seeding};
pub use metrics::{
    ancestor_scores, random_coherence_baseline, random_pair_precision, sibling_coherence,
    AncestorScores,
};
pub use regularizer::RegularizerPlan;
pub use tree::{TaxoNode, Taxonomy};
