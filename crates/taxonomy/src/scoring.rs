//! The representation-aware scoring function (paper §IV-C.1, Eqs. 4–7).
//!
//! Given a parent node whose children are candidate tag sets
//! `G_1, …, G_K`, a tag's score in `G_k` combines:
//!
//! * **Context** (Eq. 4) — normalized frequency of the tag within the item
//!   set `E_k` induced by `G_k`;
//! * **Structure** (Eq. 5) — softmax over a BM25-style retrieval score
//!   (Eq. 6) of the tag against each sibling's item set, measuring how
//!   *concentrated* the tag is on this particular child.
//!
//! The final score is their geometric mean (Eq. 7). Representative
//! (fine-grained) tags score high in exactly one child; general tags score
//! low everywhere and are pushed back to the parent by Algorithm 1.

/// BM25 parameters fixed by the paper: `k₁ = 1.2`, `b = 0.5`.
pub const BM25_K1: f64 = 1.2;
/// See [`BM25_K1`].
pub const BM25_B: f64 = 0.5;

/// Items per [`GroupStats::compute`] reduction chunk. All partial sums are
/// integer-valued counts, so the chunked combine is exactly associative and
/// the result is bit-identical to a plain sequential pass.
const STATS_ITEM_CHUNK: usize = 1024;

/// Precomputed statistics of one candidate tag set `G_k`:
/// the induced item set `E_k` and its tag-frequency profile.
#[derive(Clone, Debug)]
pub struct GroupStats {
    /// `tf(t, E_k)` for every tag `t` (indexed by tag id): the number of
    /// items of `E_k` carrying tag `t`.
    pub tf: Vec<f64>,
    /// `tf(E_k)`: total number of tag occurrences across `E_k`.
    pub total_tf: f64,
    /// Number of items in `E_k`.
    pub n_items: usize,
    /// `avgdl`: mean number of tags per item of `E_k`.
    pub avgdl: f64,
}

impl GroupStats {
    /// Computes the statistics of the item set induced by `group` (all
    /// items carrying at least one tag of `group`), on the given item–tag
    /// lists.
    pub fn compute(group: &[u32], item_tags: &[Vec<u32>], n_tags: usize) -> Self {
        let mut in_group = vec![false; n_tags];
        for &t in group {
            in_group[t as usize] = true;
        }
        // Chunked reduction over items: every accumulator is an integer-
        // valued count, so merging partials is exact and the totals are
        // bit-identical to the sequential loop for any thread count.
        let partial = taxorec_parallel::par_reduce(
            "taxo.scoring.stats",
            item_tags.len(),
            STATS_ITEM_CHUNK,
            |lo, hi| {
                let mut tf = vec![0.0; n_tags];
                let mut total_tf = 0.0;
                let mut n_items = 0usize;
                for tags in &item_tags[lo..hi] {
                    if tags.iter().any(|&t| in_group[t as usize]) {
                        n_items += 1;
                        total_tf += tags.len() as f64;
                        for &t in tags {
                            tf[t as usize] += 1.0;
                        }
                    }
                }
                (tf, total_tf, n_items)
            },
            |(mut tf_a, tot_a, n_a), (tf_b, tot_b, n_b)| {
                for (a, b) in tf_a.iter_mut().zip(&tf_b) {
                    *a += b;
                }
                (tf_a, tot_a + tot_b, n_a + n_b)
            },
        );
        let (tf, total_tf, n_items) = partial.unwrap_or_else(|| (vec![0.0; n_tags], 0.0, 0usize));
        let avgdl = if n_items == 0 {
            0.0
        } else {
            total_tf / n_items as f64
        };
        Self {
            tf,
            total_tf,
            n_items,
            avgdl,
        }
    }

    /// [`GroupStats::compute`] for every candidate group at once, one pool
    /// job per group (the per-group item reduction then runs inline, so
    /// there is no nested fan-out). Results are in `groups` order.
    pub fn compute_all(groups: &[Vec<u32>], item_tags: &[Vec<u32>], n_tags: usize) -> Vec<Self> {
        taxorec_parallel::par_map("taxo.scoring.groups", groups.len(), |k| {
            Self::compute(&groups[k], item_tags, n_tags)
        })
    }

    /// Context factor `con(t, G_k)` (paper Eq. 4):
    /// `log(tf(t,E_k)+1) / log(tf(E_k))`, clamped into `[0, 1]`.
    pub fn context(&self, t: u32) -> f64 {
        // `ln(total_tf)` is the denominator: it must be strictly positive
        // and finite, which rules out `total_tf ≤ 1` (a single-occurrence
        // group has `ln(1) = 0` → 0/0 = NaN) and any degenerate stats.
        let denom = self.total_tf.ln();
        if !denom.is_finite() || denom <= 0.0 {
            return 0.0;
        }
        ((self.tf[t as usize] + 1.0).ln() / denom).clamp(0.0, 1.0)
    }

    /// Inverse document frequency `idf(t)` (paper §IV-C.1):
    /// `ln((tf(E_k) − tf(t,E_k) + 0.5)/(tf(t,E_k) + 0.5) + 1)`.
    pub fn idf(&self, t: u32) -> f64 {
        let tf_t = self.tf[t as usize];
        (((self.total_tf - tf_t + 0.5) / (tf_t + 0.5)) + 1.0).ln()
    }

    /// BM25-style retrieval rank `rank(t, E_k)` (paper Eq. 6).
    pub fn rank(&self, t: u32) -> f64 {
        let tf_t = self.tf[t as usize];
        if self.n_items == 0 || tf_t == 0.0 {
            return 0.0;
        }
        let len_norm = 1.0 - BM25_B + BM25_B * self.total_tf / self.avgdl.max(1e-9);
        self.idf(t) * tf_t * (BM25_K1 + 1.0) / (tf_t + BM25_K1 * len_norm)
    }
}

/// Structure factor `stru(t, G_k)` (paper Eq. 5): a softmax of the rank of
/// `t` on child `k` against all siblings,
/// `exp(rank(t,E_k)) / (1 + Σ_j exp(rank(t,E_j)))`.
///
/// Evaluated in log space (every exponent shifted by the running maximum
/// rank, with the implicit `1` in the denominator treated as `exp(0)`):
/// the ratio is algebraically unchanged, but no intermediate can overflow.
/// The previous `rank.min(50.0)` overflow clamp made every rank above 50
/// exponentiate identically, erasing the ordering between highly
/// concentrated siblings.
pub fn structure(t: u32, k: usize, groups: &[GroupStats]) -> f64 {
    let mut m = 0.0f64; // the denominator's +1 term is exp(0)
    for g in groups {
        m = m.max(g.rank(t));
    }
    let num = (groups[k].rank(t) - m).exp();
    let denom = (-m).exp() + groups.iter().map(|g| (g.rank(t) - m).exp()).sum::<f64>();
    num / denom
}

/// Representation-aware score `s(t, G_k)` (paper Eq. 7):
/// `sqrt(con(t,G_k) · stru(t,G_k))`.
pub fn score(t: u32, k: usize, groups: &[GroupStats]) -> f64 {
    (groups[k].context(t) * structure(t, k, groups)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Items: 0:{0}, 1:{0,1}, 2:{1}, 3:{2}, 4:{2,3}.
    fn item_tags() -> Vec<Vec<u32>> {
        vec![vec![0], vec![0, 1], vec![1], vec![2], vec![2, 3]]
    }

    #[test]
    fn group_stats_counts() {
        let g = GroupStats::compute(&[0, 1], &item_tags(), 4);
        // Items 0,1,2 are in E_k.
        assert_eq!(g.n_items, 3);
        assert_eq!(g.tf[0], 2.0);
        assert_eq!(g.tf[1], 2.0);
        assert_eq!(g.tf[2], 0.0);
        assert_eq!(g.total_tf, 4.0);
        assert!((g.avgdl - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_group_is_safe() {
        let g = GroupStats::compute(&[], &item_tags(), 4);
        assert_eq!(g.n_items, 0);
        assert_eq!(g.context(0), 0.0);
        assert_eq!(g.rank(0), 0.0);
    }

    #[test]
    fn context_increases_with_frequency() {
        let g = GroupStats::compute(&[0, 1, 2, 3], &item_tags(), 4);
        // Tag 0 appears twice, tag 3 once.
        assert!(g.context(0) > g.context(3));
        assert!(g.context(0) <= 1.0);
    }

    #[test]
    fn rank_zero_for_absent_tag() {
        let g = GroupStats::compute(&[0, 1], &item_tags(), 4);
        assert_eq!(g.rank(2), 0.0);
        assert!(g.rank(0) > 0.0);
    }

    #[test]
    fn structure_prefers_home_group() {
        // Two candidate children: {0,1} (items 0,1,2) and {2,3} (items 3,4).
        let groups = vec![
            GroupStats::compute(&[0, 1], &item_tags(), 4),
            GroupStats::compute(&[2, 3], &item_tags(), 4),
        ];
        // Tag 0 is concentrated in group 0.
        assert!(structure(0, 0, &groups) > structure(0, 1, &groups));
        // Tag 2 in group 1.
        assert!(structure(2, 1, &groups) > structure(2, 0, &groups));
    }

    #[test]
    fn structure_is_sub_normalized() {
        let groups = vec![
            GroupStats::compute(&[0, 1], &item_tags(), 4),
            GroupStats::compute(&[2, 3], &item_tags(), 4),
        ];
        for t in 0..4u32 {
            let total: f64 = (0..2).map(|k| structure(t, k, &groups)).sum();
            assert!(
                total < 1.0,
                "softmax with +1 in the denominator stays below 1"
            );
        }
    }

    #[test]
    fn score_is_geometric_mean() {
        let groups = vec![
            GroupStats::compute(&[0, 1], &item_tags(), 4),
            GroupStats::compute(&[2, 3], &item_tags(), 4),
        ];
        let s = score(0, 0, &groups);
        let expected = (groups[0].context(0) * structure(0, 0, &groups)).sqrt();
        assert!((s - expected).abs() < 1e-12);
        assert!(s > 0.0 && s <= 1.0);
    }

    /// Synthetic stats with one tag occurring once and an adjustable
    /// total occurrence count — `avgdl = total_tf` pins the BM25 length
    /// normalization at 1, so `rank ≈ idf = ln((total_tf − 0.5)/1.5 + 1)`
    /// and the rank can be dialed arbitrarily high via `total_tf`.
    fn stats_with_total(total_tf: f64) -> GroupStats {
        GroupStats {
            tf: vec![1.0],
            total_tf,
            n_items: 1,
            avgdl: total_tf,
        }
    }

    #[test]
    fn context_is_finite_for_single_occurrence_groups() {
        // One item carrying the group's only tag: total_tf == 1, so the
        // ln-denominator of Eq. 4 is exactly zero.
        let items = vec![vec![0u32]];
        let groups = vec![GroupStats::compute(&[0], &items, 1)];
        assert_eq!(groups[0].total_tf, 1.0);
        assert_eq!(groups[0].context(0), 0.0);
        let s = score(0, 0, &groups);
        assert!(s.is_finite(), "score must stay finite, got {s}");
    }

    #[test]
    fn structure_distinguishes_ranks_beyond_the_old_clamp() {
        // Both ranks land well above 50, so the old `min(50.0)` clamp
        // exponentiated them identically and the softmax could not tell
        // the more concentrated sibling apart.
        let groups = vec![stats_with_total(1e40), stats_with_total(1e30)];
        let r_hi = groups[0].rank(0);
        let r_lo = groups[1].rank(0);
        assert!(r_hi > 55.0 && r_lo > 55.0, "ranks {r_hi}, {r_lo}");
        assert!(r_hi > r_lo + 5.0);
        let s_hi = structure(0, 0, &groups);
        let s_lo = structure(0, 1, &groups);
        assert!(
            s_hi > s_lo,
            "higher rank must win the softmax: {s_hi} vs {s_lo}"
        );
    }

    #[test]
    fn structure_survives_overflowing_ranks() {
        // rank ≈ 709 for each group: Σ exp(rank) overflows f64 without the
        // log-space evaluation.
        let groups: Vec<GroupStats> = (0..4).map(|_| stats_with_total(1.7e308)).collect();
        assert!(groups[0].rank(0) > 700.0);
        let mut sum = 0.0;
        for k in 0..groups.len() {
            let s = structure(0, k, &groups);
            assert!(s.is_finite() && s > 0.0 && s < 1.0, "structure {s}");
            sum += s;
        }
        // The +1 denominator term is exp(-m) ≈ 1e-308 here — far below one
        // ulp of the sum — so sub-normalization holds only up to rounding.
        assert!(sum <= 1.0, "softmax sum must not exceed 1, got {sum}");
    }

    #[test]
    fn general_tag_scores_low_everywhere() {
        // Tag 9 present on every item (a general tag), tags 0/1 split.
        let items = vec![vec![0u32, 9], vec![0, 9], vec![1, 9], vec![1, 9]];
        let groups = vec![
            GroupStats::compute(&[0], &items, 10),
            GroupStats::compute(&[1], &items, 10),
        ];
        // The general tag's structure factor is split across children while
        // a concentrated tag keeps its mass in one child.
        let g9 = structure(9, 0, &groups).max(structure(9, 1, &groups));
        let g0 = structure(0, 0, &groups);
        assert!(g0 > g9, "concentrated {g0} vs general {g9}");
    }
}
