//! Evolve-don't-rebuild: hyperbolic placement attachment of a new tag
//! onto an existing [`Taxonomy`] (HyperExpan-style, see PAPERS.md).
//!
//! Algorithm 1 is a batch procedure — it needs every tag embedding up
//! front and rebuilds the whole tree. For streaming ingestion that cost
//! (and the resulting node-id churn) is unacceptable per tag, so a
//! never-seen tag is instead *grafted*: we walk the tree top-down,
//! summarize each child's scope by the Einstein midpoint of its member
//! embeddings plus a max-distance radius (the same node summary the
//! retrieval index keeps per routing node), descend into the nearest
//! child while the new tag plausibly belongs inside it, and attach a
//! leaf at the stopping node. The caller keeps a drift counter; once
//! enough grafts accumulate, a full Algorithm-1 rebuild reconciles the
//! tree (see `serve`'s update loop and DESIGN.md §17).

use taxorec_geometry::poincare;

use crate::tree::Taxonomy;

/// A graft admits the tag into a child whose centroid distance is
/// within `radius · ATTACH_SLACK` — slack, because a genuinely new tag
/// should sit slightly outside the current member cloud.
pub const ATTACH_SLACK: f64 = 1.25;

/// Where a tag was grafted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttachReport {
    /// Node under which the new leaf hangs.
    pub node: usize,
    /// The new leaf's node index.
    pub leaf: usize,
    /// Level of the new leaf.
    pub depth: usize,
    /// Poincaré distance from the tag to its parent's scope centroid
    /// (`0` when the parent is the root of a previously empty tree).
    pub distance: f64,
}

/// Einstein-midpoint centroid and max-distance radius of a node's
/// scope. Returns `None` for an empty scope (nothing to summarize).
fn scope_summary(taxo: &Taxonomy, node: usize, emb: &[f64], dim: usize) -> Option<(Vec<f64>, f64)> {
    let tags = &taxo.nodes()[node].tags;
    let points: Vec<&[f64]> = tags
        .iter()
        .map(|&t| &emb[t as usize * dim..(t as usize + 1) * dim])
        .collect();
    if points.is_empty() {
        return None;
    }
    let weights = vec![1.0; points.len()];
    let mut centroid = vec![0.0; dim];
    poincare::einstein_centroid(&points, &weights, &mut centroid);
    let radius = points
        .iter()
        .map(|p| poincare::distance(&centroid, p))
        .fold(0.0, f64::max);
    Some((centroid, radius))
}

/// Grafts never-seen tag `tag` into `taxo` as a new leaf, guided by the
/// flattened Poincaré tag embeddings `emb` (row-major, `dim` columns,
/// which must cover row `tag`).
///
/// The tag is added to the scope of the stopping node and every
/// ancestor (keeping the children-partition invariant), then a
/// singleton child is appended there. `taxo.validate()` holds after a
/// successful graft; on error the taxonomy is unchanged.
///
/// # Errors
/// * `tag` already in the taxonomy's root scope (not never-seen);
/// * `emb`/`dim` don't cover row `tag`.
pub fn attach_tag(
    taxo: &mut Taxonomy,
    tag: u32,
    emb: &[f64],
    dim: usize,
) -> Result<AttachReport, String> {
    if dim == 0 || emb.len() < (tag as usize + 1) * dim {
        return Err(format!(
            "embedding table ({} values, dim {dim}) has no row for tag {tag}",
            emb.len()
        ));
    }
    if taxo.nodes()[0].tags.contains(&tag) {
        return Err(format!("tag {tag} is already in the taxonomy"));
    }
    let x = &emb[tag as usize * dim..(tag as usize + 1) * dim];

    // Top-down placement walk.
    let mut node = 0usize;
    let mut dist_here =
        scope_summary(taxo, 0, emb, dim).map_or(0.0, |(c, _)| poincare::distance(&c, x));
    loop {
        let children = taxo.nodes()[node].children.clone();
        let mut best: Option<(usize, f64, f64)> = None;
        for c in children {
            let Some((centroid, radius)) = scope_summary(taxo, c, emb, dim) else {
                continue;
            };
            let d = poincare::distance(&centroid, x);
            if best.is_none_or(|(_, bd, _)| d < bd) {
                best = Some((c, d, radius));
            }
        }
        match best {
            // Descend while the nearest child's scope plausibly contains
            // the tag: inside the (slack-inflated) member cloud, or at
            // least a better fit than the current node's own centroid.
            Some((c, d, radius)) if d <= radius * ATTACH_SLACK || d < dist_here => {
                node = c;
                dist_here = d;
            }
            _ => break,
        }
    }

    // Graft: admit the tag into the stopping node's scope and every
    // ancestor's (children must stay subsets of parents), then hang the
    // singleton leaf. `retained` sets are untouched — the new tag is
    // always accounted for by the new child below its parent — while
    // `scores` stays aligned with `tags` (the checkpoint round-trip
    // through `Taxonomy::from_nodes` enforces that alignment).
    let score = 1.0 / (1.0 + dist_here);
    let mut cur = Some(node);
    while let Some(i) = cur {
        taxo.node_mut(i).tags.push(tag);
        taxo.node_mut(i).scores.push(score);
        cur = taxo.nodes()[i].parent;
    }
    let leaf = taxo.add_child(node, vec![tag], vec![score]);
    debug_assert_eq!(taxo.validate(), Ok(()));
    taxorec_telemetry::counter("taxonomy.attached").inc(1);
    Ok(AttachReport {
        node,
        leaf,
        depth: taxo.nodes()[leaf].level,
        distance: dist_here,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct_taxonomy, ConstructConfig};

    /// Two well-separated clusters of tag embeddings in the ball, plus
    /// room for new tags appended later.
    fn clustered_embeddings(per_cluster: usize, dim: usize) -> Vec<f64> {
        let mut emb = Vec::new();
        for c in 0..2 {
            let sign = if c == 0 { 1.0 } else { -1.0 };
            for i in 0..per_cluster {
                for j in 0..dim {
                    let jitter = ((i * dim + j) as f64).sin() * 0.03;
                    emb.push(sign * 0.4 + jitter);
                }
            }
        }
        emb
    }

    fn built(per_cluster: usize, dim: usize) -> (Taxonomy, Vec<f64>) {
        let emb = clustered_embeddings(per_cluster, dim);
        let n_tags = per_cluster * 2;
        // Every item tagged with everything: scores are uniform, the
        // clustering drives the split.
        let item_tags: Vec<Vec<u32>> = (0..8).map(|_| (0..n_tags as u32).collect()).collect();
        let cfg = ConstructConfig {
            k: 2,
            min_node_size: 2,
            max_depth: 2,
            ..ConstructConfig::default()
        };
        let taxo = construct_taxonomy(&emb, dim, n_tags, &item_tags, &cfg);
        (taxo, emb)
    }

    #[test]
    fn graft_lands_in_the_matching_cluster_and_stays_valid() {
        let (mut taxo, mut emb) = built(6, 2);
        let before = taxo.len();
        let n_tags = 12u32;
        // New tag near cluster 0 (+0.4 corner).
        emb.extend_from_slice(&[0.41, 0.39]);
        let r = attach_tag(&mut taxo, n_tags, &emb, 2).unwrap();
        assert_eq!(taxo.len(), before + 1, "exactly one new node");
        assert_eq!(r.leaf, before);
        assert_eq!(taxo.validate(), Ok(()));
        assert_eq!(taxo.residence(n_tags), r.leaf);
        assert_eq!(taxo.nodes()[r.leaf].tags, vec![n_tags]);
        // It landed under a node whose members are cluster-0 tags.
        if r.node != 0 {
            let scope = &taxo.nodes()[r.node].tags;
            assert!(
                scope.iter().filter(|&&t| t < 6).count() > scope.len() / 2,
                "grafted into the wrong cluster: scope {scope:?}"
            );
        }
        // Prefix nodes are untouched apart from admitted scopes.
        assert_eq!(taxo.nodes()[r.leaf].parent, Some(r.node));
    }

    #[test]
    fn graft_is_deterministic() {
        let (taxo0, mut emb) = built(6, 2);
        emb.extend_from_slice(&[-0.38, -0.42]);
        let mut a = taxo0.clone();
        let mut b = taxo0.clone();
        let ra = attach_tag(&mut a, 12, &emb, 2).unwrap();
        let rb = attach_tag(&mut b, 12, &emb, 2).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_known_tags_and_missing_rows() {
        let (mut taxo, emb) = built(4, 2);
        let snapshot = taxo.clone();
        assert!(attach_tag(&mut taxo, 0, &emb, 2)
            .unwrap_err()
            .contains("already"));
        assert!(attach_tag(&mut taxo, 99, &emb, 2)
            .unwrap_err()
            .contains("no row"));
        assert_eq!(taxo, snapshot, "failed graft leaves the tree unchanged");
    }

    #[test]
    fn repeated_grafts_keep_the_tree_valid() {
        let (mut taxo, mut emb) = built(6, 2);
        for i in 0..10u32 {
            let v = if i % 2 == 0 { 0.35 } else { -0.35 };
            emb.extend_from_slice(&[v, v + 0.01 * i as f64]);
            attach_tag(&mut taxo, 12 + i, &emb, 2).unwrap();
            taxo.validate().unwrap();
        }
        assert_eq!(taxo.nodes()[0].tags.len(), 22);
    }
}
