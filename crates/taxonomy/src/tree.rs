//! The constructed tag taxonomy: a tree of tag-set nodes.
//!
//! Unlike the planted [`taxorec_data::TagTree`] (a tree over individual
//! tags), the constructed taxonomy follows the paper exactly: each node is
//! a *set of tags* (`G_k ∈ Taxo`, Eq. 8); splitting a node partitions a
//! subset of its tags into children while "general" tags stay behind at
//! the parent.

/// One node of the constructed taxonomy.
#[derive(Clone, Debug, PartialEq)]
pub struct TaxoNode {
    /// All tags in this node's scope (the `G_k` handed to Algorithm 1).
    pub tags: Vec<u32>,
    /// Tags that stayed at this node after its split (general tags), or
    /// all of `tags` for leaves.
    pub retained: Vec<u32>,
    /// Representation-aware scores `s(t, G_k)` aligned with `tags`
    /// (all 1.0 for the root, whose score is undefined — no siblings).
    pub scores: Vec<f64>,
    /// Child node indices.
    pub children: Vec<usize>,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Depth (root = 0).
    pub level: usize,
}

/// The constructed taxonomy. Node 0 is always the root (scope = all tags).
#[derive(Clone, Debug, PartialEq)]
pub struct Taxonomy {
    nodes: Vec<TaxoNode>,
}

impl Taxonomy {
    /// Creates a taxonomy holding just a root over `tags`.
    pub fn new_root(tags: Vec<u32>) -> Self {
        let n = tags.len();
        Self {
            nodes: vec![TaxoNode {
                retained: tags.clone(),
                tags,
                scores: vec![1.0; n],
                children: Vec::new(),
                parent: None,
                level: 0,
            }],
        }
    }

    /// Appends a child node under `parent`; returns its index.
    pub fn add_child(&mut self, parent: usize, tags: Vec<u32>, scores: Vec<f64>) -> usize {
        assert_eq!(tags.len(), scores.len(), "tags/scores length mismatch");
        let level = self.nodes[parent].level + 1;
        let idx = self.nodes.len();
        self.nodes.push(TaxoNode {
            retained: tags.clone(),
            tags,
            scores,
            children: Vec::new(),
            parent: Some(parent),
            level,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// All nodes (index 0 = root).
    pub fn nodes(&self) -> &[TaxoNode] {
        &self.nodes
    }

    /// Converts a planted [`taxorec_data::TagTree`] (a tree over
    /// individual tags) into the constructed-taxonomy shape: one node
    /// per tag whose scope is the tag's whole subtree, under a root
    /// scoping every tag. `residence(t)` on the result is exactly `t`'s
    /// node, so consumers written against trained taxonomies (the
    /// retrieval index's taxonomy-guided top level, the Fig. 6 harness)
    /// work unchanged on synthetic ground truth.
    pub fn from_tag_tree(tree: &taxorec_data::TagTree) -> Self {
        let n_tags = tree.n_tags();
        let children = tree.children();
        // Subtree tag sets, computable in one reverse pass because
        // parents always precede children in planted-tree id order.
        let mut subtree: Vec<Vec<u32>> = (0..n_tags as u32).map(|t| vec![t]).collect();
        for t in (0..n_tags as u32).rev() {
            for &c in &children[t as usize] {
                let sub = subtree[c as usize].clone();
                subtree[t as usize].extend_from_slice(&sub);
            }
            subtree[t as usize].sort_unstable();
        }
        let mut taxo = Self::new_root((0..n_tags as u32).collect());
        let mut node_of = vec![0usize; n_tags];
        // Tag ids are assigned level by level, so ascending id order
        // visits parents before children.
        for t in 0..n_tags as u32 {
            let parent_node = match tree.parent(t) {
                Some(p) => node_of[p as usize],
                None => 0,
            };
            let tags = std::mem::take(&mut subtree[t as usize]);
            let n = tags.len();
            node_of[t as usize] = taxo.add_child(parent_node, tags, vec![1.0; n]);
        }
        // Split-node invariant: retained = scope minus children's scopes
        // (the root keeps nothing; each tag node keeps exactly its own
        // tag; leaves keep their whole singleton scope).
        for idx in 0..taxo.len() {
            if taxo.nodes[idx].children.is_empty() {
                continue;
            }
            let in_children: std::collections::HashSet<u32> = taxo.nodes[idx]
                .children
                .clone()
                .into_iter()
                .flat_map(|c| taxo.nodes[c].tags.to_vec())
                .collect();
            taxo.nodes[idx].retained = taxo.nodes[idx]
                .tags
                .iter()
                .copied()
                .filter(|t| !in_children.contains(t))
                .collect();
        }
        taxo
    }

    /// Reconstructs a taxonomy from an explicit node list (index 0 must be
    /// the root). This is the deserialization entry point for checkpoint
    /// formats: the node list round-trips through [`Taxonomy::nodes`].
    ///
    /// All structural invariants are re-checked — cross-link indices in
    /// bounds, parent/child links mutually consistent, levels increasing,
    /// scores aligned with tags — so a corrupted artifact cannot produce a
    /// malformed tree.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn from_nodes(nodes: Vec<TaxoNode>) -> Result<Self, String> {
        if nodes.is_empty() {
            return Err("taxonomy must have at least a root node".into());
        }
        if nodes[0].parent.is_some() || nodes[0].level != 0 {
            return Err("node 0 must be a level-0 root without a parent".into());
        }
        for (i, n) in nodes.iter().enumerate() {
            if n.tags.len() != n.scores.len() {
                return Err(format!(
                    "node {i}: {} tags but {} scores",
                    n.tags.len(),
                    n.scores.len()
                ));
            }
            for &c in &n.children {
                if c >= nodes.len() {
                    return Err(format!("node {i}: child index {c} out of bounds"));
                }
            }
            if let Some(p) = n.parent {
                if p >= nodes.len() {
                    return Err(format!("node {i}: parent index {p} out of bounds"));
                }
                if !nodes[p].children.contains(&i) {
                    return Err(format!("node {i}: not listed among parent {p}'s children"));
                }
            } else if i != 0 {
                return Err(format!("node {i}: only the root may lack a parent"));
            }
        }
        let taxo = Self { nodes };
        taxo.validate()?;
        Ok(taxo)
    }

    /// Mutable node access (used by the builder to record retained sets).
    pub fn node_mut(&mut self, idx: usize) -> &mut TaxoNode {
        &mut self.nodes[idx]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (a taxonomy has at least a root).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maximum node level.
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// The deepest node whose scope contains `t` — where the tag "resides".
    pub fn residence(&self, t: u32) -> usize {
        let mut best = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.tags.contains(&t) && n.level >= self.nodes[best].level {
                best = i;
            }
        }
        best
    }

    /// True when node `a` is a strict ancestor of node `d`.
    pub fn node_is_ancestor(&self, a: usize, d: usize) -> bool {
        let mut cur = self.nodes[d].parent;
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.nodes[p].parent;
        }
        false
    }

    /// Pretty-prints the tree with tag names (used by the Fig. 6 harness).
    pub fn render(&self, tag_names: &[String], max_tags_per_node: usize) -> String {
        let mut out = String::new();
        self.render_node(0, tag_names, max_tags_per_node, &mut out);
        out
    }

    fn render_node(&self, idx: usize, tag_names: &[String], max_tags: usize, out: &mut String) {
        let node = &self.nodes[idx];
        let indent = "  ".repeat(node.level);
        let shown: Vec<&str> = node
            .retained
            .iter()
            .take(max_tags)
            .map(|&t| tag_names[t as usize].as_str())
            .collect();
        let suffix = if node.retained.len() > max_tags {
            format!(", ... ({} total)", node.retained.len())
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{indent}level-{} [{}{}]\n",
            node.level,
            shown
                .iter()
                .map(|s| format!("<{s}>"))
                .collect::<Vec<_>>()
                .join(", "),
            suffix
        ));
        for &c in &node.children {
            self.render_node(c, tag_names, max_tags, out);
        }
    }

    /// Validates structural invariants (children partition a subset of the
    /// parent scope; levels increase; retained ∪ children-scopes = scope).
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            let mut child_tags: Vec<u32> = Vec::new();
            for &c in &n.children {
                let ch = &self.nodes[c];
                if ch.parent != Some(i) {
                    return Err(format!("node {c} parent link broken"));
                }
                if ch.level != n.level + 1 {
                    return Err(format!("node {c} level is not parent+1"));
                }
                for &t in &ch.tags {
                    if !n.tags.contains(&t) {
                        return Err(format!("child {c} holds tag {t} outside parent {i} scope"));
                    }
                    child_tags.push(t);
                }
            }
            child_tags.sort_unstable();
            if child_tags.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("node {i}: children overlap"));
            }
            // retained = scope − child scopes.
            let mut expect: Vec<u32> = n
                .tags
                .iter()
                .copied()
                .filter(|t| child_tags.binary_search(t).is_err())
                .collect();
            expect.sort_unstable();
            let mut got = n.retained.clone();
            got.sort_unstable();
            if expect != got {
                return Err(format!("node {i}: retained set inconsistent"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Taxonomy {
        let mut t = Taxonomy::new_root(vec![0, 1, 2, 3, 4]);
        let a = t.add_child(0, vec![0, 1], vec![0.9, 0.8]);
        let _b = t.add_child(0, vec![2, 3], vec![0.7, 0.6]);
        t.node_mut(0).retained = vec![4];
        let _c = t.add_child(a, vec![1], vec![0.95]);
        t.node_mut(a).retained = vec![0];
        t
    }

    #[test]
    fn structure_is_valid() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn depth_and_levels() {
        let t = sample();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.nodes()[0].level, 0);
        assert_eq!(t.nodes()[3].level, 2);
    }

    #[test]
    fn residence_is_deepest_scope() {
        let t = sample();
        assert_eq!(t.residence(4), 0, "general tag stays at root");
        assert_eq!(t.residence(0), 1);
        assert_eq!(t.residence(1), 3, "fine tag resides in the leaf");
    }

    #[test]
    fn node_ancestry() {
        let t = sample();
        assert!(t.node_is_ancestor(0, 3));
        assert!(t.node_is_ancestor(1, 3));
        assert!(!t.node_is_ancestor(2, 3));
        assert!(!t.node_is_ancestor(3, 0));
    }

    #[test]
    fn render_contains_tag_names() {
        let t = sample();
        let names: Vec<String> = (0..5).map(|i| format!("tag{i}")).collect();
        let s = t.render(&names, 10);
        assert!(s.contains("<tag4>"));
        assert!(s.contains("level-2"));
    }

    #[test]
    fn from_nodes_round_trips() {
        let t = sample();
        let rebuilt = Taxonomy::from_nodes(t.nodes().to_vec()).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn from_nodes_rejects_bad_structures() {
        assert!(Taxonomy::from_nodes(Vec::new()).is_err());
        // Child index out of bounds.
        let mut t = sample();
        t.node_mut(0).children.push(99);
        assert!(Taxonomy::from_nodes(t.nodes().to_vec())
            .unwrap_err()
            .contains("out of bounds"));
        // Orphaned non-root node.
        let mut t = sample();
        t.node_mut(3).parent = None;
        assert!(Taxonomy::from_nodes(t.nodes().to_vec()).is_err());
        // Scores misaligned with tags.
        let mut t = sample();
        t.node_mut(1).scores.pop();
        assert!(Taxonomy::from_nodes(t.nodes().to_vec())
            .unwrap_err()
            .contains("scores"));
    }

    #[test]
    fn validate_catches_overlap() {
        let mut t = Taxonomy::new_root(vec![0, 1]);
        t.add_child(0, vec![0], vec![1.0]);
        t.add_child(0, vec![0], vec![1.0]);
        t.node_mut(0).retained = vec![1];
        assert!(t.validate().is_err());
    }

    #[test]
    fn from_tag_tree_preserves_structure() {
        // Planted shape [2, 2]: tags 0,1 top-level; 2,3 under 0; 4,5
        // under 1 (level-by-level id assignment).
        let tree = taxorec_data::TagTree::from_parents(vec![
            None,
            None,
            Some(0),
            Some(0),
            Some(1),
            Some(1),
        ]);
        let taxo = Taxonomy::from_tag_tree(&tree);
        assert_eq!(taxo.len(), 7, "root + one node per tag");
        assert_eq!(taxo.nodes()[0].children.len(), 2);
        // Each tag resides at its own node, whose scope is its subtree.
        for t in 0..6u32 {
            let node = taxo.residence(t);
            assert!(taxo.nodes()[node].tags.contains(&t));
        }
        let top0 = taxo.nodes()[0].children[0];
        assert_eq!(taxo.nodes()[top0].tags, vec![0, 2, 3]);
        assert_eq!(taxo.nodes()[top0].level, 1);
        let leaf = taxo.residence(3);
        assert_eq!(taxo.nodes()[leaf].tags, vec![3]);
        assert_eq!(taxo.nodes()[leaf].level, 2);
        assert!(taxo.node_is_ancestor(top0, leaf));
        taxo.validate().expect("converted taxonomy is valid");
    }
}
