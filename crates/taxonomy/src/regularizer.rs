//! Taxonomy-aware regularization targets (paper Eq. 8).
//!
//! For every node `G_k` of the constructed taxonomy, each member tag is
//! pulled toward the node's score-weighted center:
//!
//! `L_reg = Σ_{G_k} Σ_{t_i ∈ G_k} d_P(T_i, Σ_j s(t_j,G_k)·T_j / Σ_l s(t_l,G_k))`.
//!
//! This module flattens the taxonomy into `(tag, node)` pull terms plus a
//! sparse weight matrix that maps tag embeddings to node centers, so the
//! training loop can evaluate Eq. 8 with two tape ops (a weighted-average
//! `spmm` + a rowwise Poincaré distance). General tags appear in few
//! nodes, fine-grained tags in many — reproducing the paper's intended
//! depth-proportional regularization strength.

use crate::tree::Taxonomy;

/// Flattened Eq. 8: `terms[i] = (tag, node_row)` means tag `tag` is pulled
/// toward center row `node_row` of `center_weights · T^P`.
#[derive(Clone, Debug)]
pub struct RegularizerPlan {
    /// One `(tag, center_row)` pull per node membership.
    pub terms: Vec<(u32, usize)>,
    /// Sparse center map as triplets `(center_row, tag, weight)`; row
    /// weights sum to 1.
    pub center_weights: Vec<(usize, usize, f64)>,
    /// Number of center rows (= number of regularized nodes).
    pub n_centers: usize,
}

impl RegularizerPlan {
    /// Builds the plan from a taxonomy. The root is skipped: its scope is
    /// the whole tag universe and its scores are undefined (no siblings).
    /// Nodes with a zero score mass fall back to uniform weights.
    pub fn from_taxonomy(taxo: &Taxonomy) -> Self {
        let mut terms = Vec::new();
        let mut center_weights = Vec::new();
        let mut n_centers = 0usize;
        for node in taxo.nodes().iter().skip(1) {
            if node.tags.len() < 2 {
                continue;
            }
            let row = n_centers;
            n_centers += 1;
            let mass: f64 = node.scores.iter().sum();
            for (i, &t) in node.tags.iter().enumerate() {
                let w = if mass > 1e-12 {
                    node.scores[i] / mass
                } else {
                    1.0 / node.tags.len() as f64
                };
                center_weights.push((row, t as usize, w));
                terms.push((t, row));
            }
        }
        Self {
            terms,
            center_weights,
            n_centers,
        }
    }

    /// Number of pull terms (`Σ_k |G_k|` over regularized nodes).
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Per-tag membership counts — how many nodes regularize each tag.
    /// Fine-grained tags should have larger counts than general ones.
    pub fn membership_counts(&self, n_tags: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_tags];
        for &(t, _) in &self.terms {
            counts[t as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Taxonomy;

    fn sample() -> Taxonomy {
        // root{0..4} → a{0,1} (retained {0}, child c{1}), b{2,3}; root keeps 4.
        let mut t = Taxonomy::new_root(vec![0, 1, 2, 3, 4]);
        let a = t.add_child(0, vec![0, 1], vec![0.9, 0.8]);
        t.add_child(0, vec![2, 3], vec![0.5, 0.5]);
        t.node_mut(0).retained = vec![4];
        t.add_child(a, vec![1], vec![1.0]);
        t.node_mut(a).retained = vec![0];
        t
    }

    #[test]
    fn root_and_singletons_are_skipped() {
        let plan = RegularizerPlan::from_taxonomy(&sample());
        // Nodes: a{0,1}, b{2,3} regularized; singleton c{1} skipped.
        assert_eq!(plan.n_centers, 2);
        assert_eq!(plan.n_terms(), 4);
    }

    #[test]
    fn center_weights_normalized() {
        let plan = RegularizerPlan::from_taxonomy(&sample());
        let mut rowsum = vec![0.0; plan.n_centers];
        for &(r, _, w) in &plan.center_weights {
            rowsum[r] += w;
        }
        for s in rowsum {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn score_weighting_respected() {
        let plan = RegularizerPlan::from_taxonomy(&sample());
        // Node a: scores 0.9 / 0.8 ⇒ weights 9/17, 8/17.
        let w0 = plan
            .center_weights
            .iter()
            .find(|&&(r, t, _)| r == 0 && t == 0)
            .map(|&(_, _, w)| w)
            .unwrap();
        assert!((w0 - 0.9 / 1.7).abs() < 1e-12);
    }

    #[test]
    fn fine_tags_are_regularized_more() {
        let plan = RegularizerPlan::from_taxonomy(&sample());
        let counts = plan.membership_counts(5);
        // Tag 1 appears in node a (tag 4 only at root, never regularized).
        assert_eq!(counts[4], 0);
        assert!(counts[1] >= 1);
    }

    #[test]
    fn zero_scores_fall_back_to_uniform() {
        let mut t = Taxonomy::new_root(vec![0, 1]);
        t.add_child(0, vec![0, 1], vec![0.0, 0.0]);
        t.node_mut(0).retained = vec![];
        let plan = RegularizerPlan::from_taxonomy(&t);
        for &(_, _, w) in &plan.center_weights {
            assert!((w - 0.5).abs() < 1e-12);
        }
    }
}
