//! Taxonomy quality metrics against a planted ground truth (RQ4).
//!
//! The constructed taxonomy organizes *sets* of tags; the planted
//! [`TagTree`] relates individual tags. We bridge the two with the
//! *residence* of a tag (the deepest node whose scope contains it): the
//! construction predicts `a → d` (ancestor) whenever `a` resides at a
//! strict ancestor node of `d`'s residence. Precision/recall/F1 are then
//! computed over predicted vs. true ancestor pairs. A sibling-coherence
//! score additionally measures whether tags grouped together share a true
//! top-level ancestor.

use crate::tree::Taxonomy;
use taxorec_data::TagTree;

/// Ancestor-pair precision/recall/F1 of a constructed taxonomy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AncestorScores {
    /// Fraction of predicted ancestor pairs that are true.
    pub precision: f64,
    /// Fraction of true ancestor pairs that are predicted.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of predicted pairs.
    pub n_predicted: usize,
    /// Number of true pairs.
    pub n_true: usize,
}

/// Computes ancestor precision/recall/F1 of `taxo` against `truth`.
pub fn ancestor_scores(taxo: &Taxonomy, truth: &TagTree) -> AncestorScores {
    let n_tags = truth.n_tags();
    let residence: Vec<usize> = (0..n_tags as u32).map(|t| taxo.residence(t)).collect();
    let mut predicted: Vec<(u32, u32)> = Vec::new();
    for a in 0..n_tags as u32 {
        for d in 0..n_tags as u32 {
            if a != d && taxo.node_is_ancestor(residence[a as usize], residence[d as usize]) {
                predicted.push((a, d));
            }
        }
    }
    let truth_pairs: std::collections::HashSet<(u32, u32)> =
        truth.ancestor_pairs().into_iter().collect();
    let tp = predicted.iter().filter(|p| truth_pairs.contains(p)).count();
    let precision = if predicted.is_empty() {
        0.0
    } else {
        tp as f64 / predicted.len() as f64
    };
    let recall = if truth_pairs.is_empty() {
        0.0
    } else {
        tp as f64 / truth_pairs.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    AncestorScores {
        precision,
        recall,
        f1,
        n_predicted: predicted.len(),
        n_true: truth_pairs.len(),
    }
}

/// Mean sibling coherence: for every non-root node with ≥ 2 tags, the
/// fraction of member tags whose true top-level ancestor equals the node's
/// majority top-level ancestor. 1.0 = every node is pure.
pub fn sibling_coherence(taxo: &Taxonomy, truth: &TagTree) -> f64 {
    let top = |t: u32| -> u32 {
        let mut cur = t;
        while let Some(p) = truth.parent(cur) {
            cur = p;
        }
        cur
    };
    let mut total = 0.0;
    let mut count = 0usize;
    for node in taxo.nodes().iter().skip(1) {
        if node.tags.len() < 2 {
            continue;
        }
        let mut histogram: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for &t in &node.tags {
            *histogram.entry(top(t)).or_insert(0) += 1;
        }
        let max = histogram.values().copied().max().unwrap_or(0);
        total += max as f64 / node.tags.len() as f64;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Expected ancestor precision of a *random* taxonomy with the same node
/// structure — a baseline for interpreting [`ancestor_scores`]: the
/// density of true ancestor pairs among all ordered tag pairs.
pub fn random_pair_precision(truth: &TagTree) -> f64 {
    let n = truth.n_tags();
    if n < 2 {
        return 0.0;
    }
    truth.ancestor_pairs().len() as f64 / (n * (n - 1)) as f64
}

/// Baseline for [`sibling_coherence`]: the coherence a random grouping
/// converges to, i.e. the share of the largest top-level subtree.
pub fn random_coherence_baseline(truth: &TagTree) -> f64 {
    let n = truth.n_tags();
    if n == 0 {
        return 0.0;
    }
    let top = |t: u32| -> u32 {
        let mut cur = t;
        while let Some(p) = truth.parent(cur) {
            cur = p;
        }
        cur
    };
    let mut histogram: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for t in 0..n as u32 {
        *histogram.entry(top(t)).or_insert(0) += 1;
    }
    histogram.values().copied().max().unwrap_or(0) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Taxonomy;

    /// Truth: 0,1 top; 2,3 children of 0; 4 child of 2.
    fn truth() -> TagTree {
        TagTree::from_parents(vec![None, None, Some(0), Some(0), Some(2)])
    }

    /// Perfect-ish construction: root keeps {0,1}; child under root holds
    /// {2,3,4}; its child holds {4}.
    fn good_taxo() -> Taxonomy {
        let mut t = Taxonomy::new_root(vec![0, 1, 2, 3, 4]);
        let a = t.add_child(0, vec![2, 3, 4], vec![0.9, 0.9, 0.9]);
        t.node_mut(0).retained = vec![0, 1];
        t.add_child(a, vec![4], vec![1.0]);
        t.node_mut(a).retained = vec![2, 3];
        t
    }

    #[test]
    fn good_taxonomy_scores_high() {
        let s = ancestor_scores(&good_taxo(), &truth());
        // Predicted: 0→{2,3,4}, 1→{2,3,4}, 2→4, 3→4.
        // True: (0,2),(0,3),(0,4),(2,4) ⇒ tp = 4 of 8 predicted, 4 of 4 true.
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
        assert!(s.f1 > 0.6);
    }

    #[test]
    fn flat_taxonomy_scores_zero() {
        let t = Taxonomy::new_root(vec![0, 1, 2, 3, 4]);
        let s = ancestor_scores(&t, &truth());
        assert_eq!(s.n_predicted, 0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn coherence_of_pure_node_is_one() {
        let mut t = Taxonomy::new_root(vec![0, 1, 2, 3, 4]);
        t.add_child(0, vec![2, 3], vec![1.0, 1.0]); // both under top tag 0
        t.node_mut(0).retained = vec![0, 1, 4];
        assert!((sibling_coherence(&t, &truth()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coherence_of_mixed_node_is_fractional() {
        let mut t = Taxonomy::new_root(vec![0, 1, 2, 3, 4]);
        t.add_child(0, vec![1, 2], vec![1.0, 1.0]); // tops {1, 0} — mixed
        t.node_mut(0).retained = vec![0, 3, 4];
        assert!((sibling_coherence(&t, &truth()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_baseline_is_small() {
        let p = random_pair_precision(&truth());
        assert!((p - 4.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn coherence_baseline_is_largest_subtree_share() {
        // Truth: top tag 0 covers {0,2,3,4} (4 of 5); top tag 1 covers {1}.
        let b = random_coherence_baseline(&truth());
        assert!((b - 0.8).abs() < 1e-12);
    }
}
