//! Diffeomorphisms between the Poincaré, Lorentz, and Klein models.
//!
//! The paper's framework leans on the equivalence of the models (§III-B):
//! tag embeddings live in the Poincaré ball, are mapped to Klein coordinates
//! for the Einstein-midpoint aggregation (Eq. 9), and the aggregate is
//! lifted onto the hyperboloid for metric learning (Eq. 11 with Eq. 3).
//!
//! | map | paper eq. | function |
//! |---|---|---|
//! | Lorentz → Poincaré | Eq. 2 | [`lorentz_to_poincare`] |
//! | Poincaré → Lorentz | Eq. 3 | [`poincare_to_lorentz`] |
//! | Poincaré → Klein | Eq. 9 | [`poincare_to_klein`] |
//! | Klein → Poincaré | inside Eq. 11 | [`klein_to_poincare`] |

use crate::vecops::{clip_norm, sqnorm};
use crate::{EPS_DIV, MAX_BALL_NORM};

/// Lorentz → Poincaré (paper Eq. 2): `p(x₀, x_s) = x_s / (x₀ + 1)`.
///
/// `x` has `d+1` ambient coordinates, `out` has `d`.
pub fn lorentz_to_poincare(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len() + 1);
    let denom = (x[0] + 1.0).max(EPS_DIV);
    for (o, &v) in out.iter_mut().zip(&x[1..]) {
        *o = v / denom;
    }
    clip_norm(out, MAX_BALL_NORM);
}

/// Poincaré → Lorentz (paper Eq. 3):
/// `p⁻¹(x) = ((1 + ‖x‖²), 2x) / (1 − ‖x‖²)`.
///
/// `x` has `d` coordinates, `out` has `d+1`.
pub fn poincare_to_lorentz(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len() + 1, out.len());
    let n2 = sqnorm(x).min(MAX_BALL_NORM * MAX_BALL_NORM);
    let denom = (1.0 - n2).max(EPS_DIV);
    out[0] = (1.0 + n2) / denom;
    for (o, &v) in out[1..].iter_mut().zip(x) {
        *o = 2.0 * v / denom;
    }
    crate::lorentz::project_to_hyperboloid(out);
}

/// Poincaré → Klein (paper Eq. 9): `f(x) = 2x / (1 + ‖x‖²)`.
pub fn poincare_to_klein(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    let denom = 1.0 + sqnorm(x);
    for (o, &v) in out.iter_mut().zip(x) {
        *o = 2.0 * v / denom;
    }
    clip_norm(out, MAX_BALL_NORM);
}

/// Klein → Poincaré (the inner map of paper Eq. 11):
/// `x ↦ x / (1 + √(1 − ‖x‖²))`.
pub fn klein_to_poincare(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    let n2 = sqnorm(x).min(MAX_BALL_NORM * MAX_BALL_NORM);
    let denom = 1.0 + (1.0 - n2).sqrt();
    for (o, &v) in out.iter_mut().zip(x) {
        *o = v / denom;
    }
    clip_norm(out, MAX_BALL_NORM);
}

/// Klein → Lorentz composite (paper Eq. 11): maps an Einstein-midpoint
/// result straight onto the hyperboloid. `x` has `d` coordinates, `out` has
/// `d+1`.
pub fn klein_to_lorentz(x: &[f64], out: &mut [f64]) {
    let mut p = vec![0.0; x.len()];
    klein_to_poincare(x, &mut p);
    poincare_to_lorentz(&p, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lorentz;
    use crate::poincare;
    use crate::vecops::norm;

    #[test]
    fn poincare_lorentz_roundtrip() {
        let p = [0.3, -0.2, 0.55];
        let mut l = vec![0.0; 4];
        poincare_to_lorentz(&p, &mut l);
        assert!(lorentz::constraint_residual(&l) < 1e-9);
        let mut back = [0.0; 3];
        lorentz_to_poincare(&l, &mut back);
        for i in 0..3 {
            assert!((back[i] - p[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn lorentz_poincare_roundtrip() {
        let l = lorentz::from_spatial(&[1.2, -0.7]);
        let mut p = [0.0; 2];
        lorentz_to_poincare(&l, &mut p);
        assert!(norm(&p) < 1.0);
        let mut back = vec![0.0; 3];
        poincare_to_lorentz(&p, &mut back);
        for i in 0..3 {
            assert!((back[i] - l[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn poincare_klein_roundtrip() {
        let p = [0.45, 0.1, -0.3];
        let mut k = [0.0; 3];
        poincare_to_klein(&p, &mut k);
        assert!(norm(&k) < 1.0);
        let mut back = [0.0; 3];
        klein_to_poincare(&k, &mut back);
        for i in 0..3 {
            assert!((back[i] - p[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn distances_are_preserved_across_models() {
        // d_P(x, y) must equal d_H(p⁻¹(x), p⁻¹(y)) — the models are
        // isometric.
        let x = [0.2, 0.5];
        let y = [-0.3, -0.1];
        let dp = poincare::distance(&x, &y);
        let mut lx = vec![0.0; 3];
        let mut ly = vec![0.0; 3];
        poincare_to_lorentz(&x, &mut lx);
        poincare_to_lorentz(&y, &mut ly);
        let dl = lorentz::distance(&lx, &ly);
        assert!((dp - dl).abs() < 1e-7, "dp={dp} dl={dl}");
    }

    #[test]
    fn origin_maps_to_origin_everywhere() {
        let p = [0.0, 0.0];
        let mut l = vec![0.0; 3];
        poincare_to_lorentz(&p, &mut l);
        assert!((l[0] - 1.0).abs() < 1e-12 && l[1].abs() < 1e-12);
        let mut k = [0.0; 2];
        poincare_to_klein(&p, &mut k);
        assert_eq!(k, [0.0, 0.0]);
    }

    #[test]
    fn klein_to_lorentz_lands_on_hyperboloid() {
        let k = [0.6, -0.35];
        let mut l = vec![0.0; 3];
        klein_to_lorentz(&k, &mut l);
        assert!(lorentz::constraint_residual(&l) < 1e-9);
    }

    #[test]
    fn boundary_points_stay_finite() {
        let p = [0.999999, 0.0];
        let mut l = vec![0.0; 3];
        poincare_to_lorentz(&p, &mut l);
        assert!(l.iter().all(|v| v.is_finite()));
        let mut k = [0.0; 2];
        poincare_to_klein(&p, &mut k);
        assert!(k.iter().all(|v| v.is_finite()));
    }
}
