//! Fused batched Lorentz distance kernels.
//!
//! The scalar kernels in [`crate::lorentz`] compute one inner product at a
//! time over a row-major `(ambient)`-length slice. For an ambient dimension
//! around 32–64 that loop is *latency*-bound: every `s += x[i] * y[i]` step
//! depends on the previous one, so one distance costs a full chain of FMA
//! latencies regardless of how wide the CPU is. The hot paths of this repo
//! (scoring one user against every item, ranking for eval/serve) evaluate
//! the *same anchor* against thousands of contiguous rows, which admits a
//! much better schedule: iterate dimensions in the outer loop and items in
//! the inner loop, so the compiler vectorizes *across items* while each
//! individual item's accumulation chain keeps exactly the order of
//! [`crate::lorentz::inner`].
//!
//! That ordering constraint is load-bearing. The repo-wide determinism
//! contract (see `tests/parallel_determinism.rs`) requires the fused path
//! to be **bit-identical** to the scalar path, not merely close: for each
//! item `i` we evaluate
//!
//! ```text
//! acc_i = (-a[0]) * t_i;  acc_i += a[1]*v_i[1];  …;  acc_i += a[d]*v_i[d]
//! ```
//!
//! which is the same sequence of f64 additions and multiplications the
//! scalar kernel performs — only interleaved across items, which IEEE-754
//! does not observe.
//!
//! [`BlockCache`] holds the per-row precomputation: time components
//! (`x₀`), the spatial coordinates retiled into panel-major strips (all
//! dimensions of an 8-item strip contiguous → each strip is one short
//! sequential read), and spatial squared norms (cheap constraint
//! diagnostics). The cache is a
//! snapshot: it does **not** observe later mutation of the embedding
//! matrix it was built from. Owners must call [`BlockCache::rebuild`]
//! after every optimizer step that touches the rows — in this repo that is
//! `TaxoRec::finalize()`, which runs once per epoch after RSGD (see
//! DESIGN.md §12 for the full invalidation contract).

use crate::arcosh;

/// Precomputed per-row cache over a block of hyperboloid points, stored
/// in panel-major strips for fused anchor-vs-block kernels.
///
/// Built from a row-major flat matrix (`rows × ambient`, ambient ≥ 2).
/// [`BlockCache::rebuild`] reuses the existing allocations, so a cache
/// that is refreshed every epoch settles into zero steady-state
/// allocation.
#[derive(Clone, Debug, Default)]
pub struct BlockCache {
    rows: usize,
    ambient: usize,
    /// `time[i] = x_i[0]` — the hyperboloid time components.
    time: Vec<f64>,
    /// Spatial coordinates in panel-major tiles: rows are grouped into
    /// strips of [`STRIP`], and within a strip all `ambient − 1` spatial
    /// dimensions are contiguous —
    /// `spatial[(i/STRIP)·STRIP·(ambient−1) + (j−1)·STRIP + i%STRIP] = x_i[j]`.
    /// A full strip's working set is one short contiguous run, so the
    /// fused kernels stream it sequentially instead of hopping between
    /// `rows`-strided columns (the layout GEMM micro-kernels use). The
    /// final partial strip is zero-padded; padding is never read back.
    spatial: Vec<f64>,
    /// `‖x_i[1..]‖²` per row — used only for constraint diagnostics.
    spatial_sqnorm: Vec<f64>,
}

impl BlockCache {
    /// Builds a cache over `rows × ambient` row-major data.
    pub fn build(data: &[f64], ambient: usize) -> Self {
        let mut c = Self::default();
        c.rebuild(data, ambient);
        c
    }

    /// Rebuilds the cache in place from fresh row-major data, reusing the
    /// existing allocations. This is the **invalidation point**: call it
    /// after every mutation of the source matrix (per epoch, after RSGD).
    pub fn rebuild(&mut self, data: &[f64], ambient: usize) {
        assert!(ambient >= 2, "hyperboloid points need ambient dim >= 2");
        assert_eq!(
            data.len() % ambient,
            0,
            "data length {} not a multiple of ambient dim {}",
            data.len(),
            ambient
        );
        let rows = data.len() / ambient;
        self.rows = rows;
        self.ambient = ambient;
        self.time.clear();
        self.time.resize(rows, 0.0);
        let panel = STRIP * (ambient - 1);
        self.spatial.clear();
        self.spatial.resize(rows.div_ceil(STRIP) * panel, 0.0);
        self.spatial_sqnorm.clear();
        self.spatial_sqnorm.resize(rows, 0.0);
        for i in 0..rows {
            let row = &data[i * ambient..(i + 1) * ambient];
            self.time[i] = row[0];
            let base = (i / STRIP) * panel + i % STRIP;
            let mut sq = 0.0;
            for (j, &v) in row.iter().enumerate().skip(1) {
                self.spatial[base + (j - 1) * STRIP] = v;
                sq += v * v;
            }
            self.spatial_sqnorm[i] = sq;
        }
    }

    /// Number of cached rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Ambient dimension of the cached points.
    #[inline]
    pub fn ambient(&self) -> usize {
        self.ambient
    }

    /// True when the cache holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Worst hyperboloid-constraint drift over the cached rows:
    /// `max_i |‖x_i[1..]‖² − x_i[0]² + 1|`. Diagnostic only.
    pub fn max_constraint_residual(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            let r = (self.spatial_sqnorm[i] - self.time[i] * self.time[i] + 1.0).abs();
            worst = worst.max(r);
        }
        worst
    }

    /// Writes `−⟨anchor, x_i⟩_L` for `i in lo..hi` into `out`
    /// (`out.len() == hi − lo`), bit-identical per item to
    /// `-lorentz::inner(anchor, row_i)`.
    ///
    /// Strip-mined over the panel-major layout: see [`neg_inner_strips`]
    /// for the schedule and the bit-identity argument.
    pub fn neg_inner_block(&self, anchor: &[f64], lo: usize, hi: usize, out: &mut [f64]) {
        assert_eq!(anchor.len(), self.ambient, "anchor/cache dim mismatch");
        assert!(lo <= hi && hi <= self.rows, "block {lo}..{hi} out of range");
        assert_eq!(out.len(), hi - lo, "output length mismatch");
        // Runtime ISA dispatch: the AVX2 clone runs the *same* generic
        // body with 256-bit auto-vectorization (Rust never contracts
        // mul+add into FMA, so lane width cannot change any result bit);
        // the baseline build only assumes SSE2.
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: feature presence just checked.
                unsafe {
                    return neg_inner_strips_avx512(
                        &self.time,
                        &self.spatial,
                        self.ambient,
                        anchor,
                        lo,
                        out,
                    );
                }
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence just checked.
                unsafe {
                    return neg_inner_strips_avx2(
                        &self.time,
                        &self.spatial,
                        self.ambient,
                        anchor,
                        lo,
                        out,
                    );
                }
            }
        }
        neg_inner_strips(&self.time, &self.spatial, self.ambient, anchor, lo, out);
    }

    /// Multi-anchor variant of [`BlockCache::neg_inner_block`]: writes
    /// `−⟨anchor_u, x_i⟩_L` for every anchor `u` and `i in lo..hi` into
    /// `out`, user-major (`out[u·n + (i−lo)]`, `n = hi − lo`).
    ///
    /// Per `(anchor, item)` pair the arithmetic is exactly
    /// [`neg_inner_one`]'s, so each anchor's row is bit-identical to a
    /// separate [`BlockCache::neg_inner_block`] call. The point of the
    /// batched form is memory traffic: one pass streams each panel tile
    /// once for up to [`MULTI`] anchors, so a block of users amortizes
    /// the item-side reads that dominate single-anchor sweeps when the
    /// panel outgrows L2.
    pub fn neg_inner_block_multi(&self, anchors: &[&[f64]], lo: usize, hi: usize, out: &mut [f64]) {
        assert!(lo <= hi && hi <= self.rows, "block {lo}..{hi} out of range");
        let n = hi - lo;
        assert_eq!(out.len(), anchors.len() * n, "output length mismatch");
        self.neg_inner_multi_dispatch(anchors, lo, n, n, out);
    }

    /// Strided form of the multi-anchor sweep shared with
    /// [`fused_scores_multi`]'s chunked finisher: anchor `u`'s results
    /// land at `out[u·stride + i]` for `i in 0..n`, so a sub-range of
    /// items can be swept directly into rows of a larger user-major
    /// buffer. Performs the ISA dispatch for every multi-anchor entry
    /// point.
    fn neg_inner_multi_dispatch(
        &self,
        anchors: &[&[f64]],
        lo: usize,
        n: usize,
        stride: usize,
        out: &mut [f64],
    ) {
        assert!(n <= stride, "row stride shorter than range");
        assert!(lo + n <= self.rows, "block {lo}..{} out of range", lo + n);
        if let Some(last) = anchors.len().checked_sub(1) {
            assert!(last * stride + n <= out.len(), "output too short");
        }
        for a in anchors {
            assert_eq!(a.len(), self.ambient, "anchor/cache dim mismatch");
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: feature presence just checked.
                unsafe {
                    return neg_inner_strips_multi_avx512(
                        &self.time,
                        &self.spatial,
                        self.ambient,
                        anchors,
                        lo,
                        n,
                        stride,
                        out,
                    );
                }
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence just checked.
                unsafe {
                    return neg_inner_strips_multi_avx2(
                        &self.time,
                        &self.spatial,
                        self.ambient,
                        anchors,
                        lo,
                        n,
                        stride,
                        out,
                    );
                }
            }
        }
        neg_inner_strips_multi(
            &self.time,
            &self.spatial,
            self.ambient,
            anchors,
            lo,
            n,
            stride,
            out,
        );
    }

    /// Writes the geodesic distance `d_H(anchor, x_i)` for `i in lo..hi`
    /// into `out`, bit-identical per item to `lorentz::distance`.
    pub fn distance_block(&self, anchor: &[f64], lo: usize, hi: usize, out: &mut [f64]) {
        self.neg_inner_block(anchor, lo, hi, out);
        for o in out.iter_mut() {
            *o = arcosh(*o);
        }
    }

    /// Writes the squared geodesic distance `d_H(anchor, x_i)²` for
    /// `i in lo..hi` into `out`, bit-identical per item to
    /// `lorentz::distance_sq`.
    pub fn distance_sq_block(&self, anchor: &[f64], lo: usize, hi: usize, out: &mut [f64]) {
        self.distance_block(anchor, lo, hi, out);
        for o in out.iter_mut() {
            *o = *o * *o;
        }
    }
}

/// Strip width of the fused inner-product kernels: 8 f64 accumulators
/// give the compiler independent chains to hide FP-add latency while
/// fitting the vector register file on every supported tier.
const STRIP: usize = 32;

/// One item's negated Lorentz inner product against the anchor, read
/// from the panel-major layout — the scalar fallback for partial strips
/// at the edges of a query range. Accumulation order matches
/// [`crate::lorentz::inner`] exactly.
#[inline(always)]
fn neg_inner_one(
    time: &[f64],
    spatial: &[f64],
    ambient: usize,
    anchor: &[f64],
    na0: f64,
    idx: usize,
) -> f64 {
    let base = (idx / STRIP) * STRIP * (ambient - 1) + idx % STRIP;
    let mut acc = na0 * time[idx];
    for j in 1..ambient {
        acc += anchor[j] * spatial[base + (j - 1) * STRIP];
    }
    -acc
}

/// Generic strip-mined body of [`BlockCache::neg_inner_block`]: items in
/// strips of [`STRIP`] with register-resident accumulators over the
/// panel-major layout, so a whole strip's inputs are one contiguous
/// sequential read and `out` is written exactly once. Within a strip
/// each item accumulates its dimensions in the scalar kernel's exact
/// order: `acc = (−a₀)·tᵢ; acc += aⱼ·xᵢ[j] (j ascending); out = −acc` —
/// unary minus binds to the operand, so both sign flips are exact.
/// Partial strips at the range edges run [`neg_inner_one`] per item.
#[inline(always)]
fn neg_inner_strips(
    time: &[f64],
    spatial: &[f64],
    ambient: usize,
    anchor: &[f64],
    lo: usize,
    out: &mut [f64],
) {
    let na0 = -anchor[0];
    let n = out.len();
    let panel = STRIP * (ambient - 1);
    let mut i = 0;
    // Head: items before the first strip boundary.
    while i < n && !(lo + i).is_multiple_of(STRIP) {
        out[i] = neg_inner_one(time, spatial, ambient, anchor, na0, lo + i);
        i += 1;
    }
    // Aligned full strips: one contiguous panel each.
    while i + STRIP <= n {
        let t = &time[lo + i..lo + i + STRIP];
        let mut acc = [0.0f64; STRIP];
        for k in 0..STRIP {
            acc[k] = na0 * t[k];
        }
        let base = (lo + i) / STRIP * panel;
        let tile = &spatial[base..base + panel];
        for j in 1..ambient {
            let aj = anchor[j];
            let col = &tile[(j - 1) * STRIP..j * STRIP];
            for k in 0..STRIP {
                acc[k] += aj * col[k];
            }
        }
        for k in 0..STRIP {
            out[i + k] = -acc[k];
        }
        i += STRIP;
    }
    // Tail: the final partial strip.
    while i < n {
        out[i] = neg_inner_one(time, spatial, ambient, anchor, na0, lo + i);
        i += 1;
    }
}

/// [`neg_inner_strips`] compiled with AVX-512F enabled, selected at
/// runtime. Identical IEEE-754 operation sequence — only the vector
/// width differs.
///
/// # Safety
/// Caller must ensure the CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn neg_inner_strips_avx512(
    time: &[f64],
    spatial: &[f64],
    ambient: usize,
    anchor: &[f64],
    lo: usize,
    out: &mut [f64],
) {
    neg_inner_strips(time, spatial, ambient, anchor, lo, out);
}

/// [`neg_inner_strips`] compiled with AVX2 enabled, selected at runtime.
/// Identical IEEE-754 operation sequence — only the vector width differs.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn neg_inner_strips_avx2(
    time: &[f64],
    spatial: &[f64],
    ambient: usize,
    anchor: &[f64],
    lo: usize,
    out: &mut [f64],
) {
    neg_inner_strips(time, spatial, ambient, anchor, lo, out);
}

/// Anchors per register-blocked group of the multi-anchor kernels: the
/// widest block whose `MULTI × STRIP` accumulator tile still fits the
/// AVX-512 register file alongside the shared column loads.
const MULTI: usize = 4;

/// Generic body of [`BlockCache::neg_inner_block_multi`]: strips in the
/// outer loop, anchors in register-blocked groups of up to [`MULTI`] in
/// the inner loop. Each strip's panel tile is therefore read from
/// memory once per *block* of anchors — the first group pulls it in,
/// later groups hit L1 (a tile is `STRIP · (ambient−1)` doubles, ≤16 KiB
/// at ambient 65) — and every `col` load inside a group feeds [`MULTI`]
/// accumulator strips. Per `(anchor, item)` pair the operation sequence
/// is exactly the single-anchor kernel's — blocking only changes which
/// loads are shared, never the arithmetic.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn neg_inner_strips_multi(
    time: &[f64],
    spatial: &[f64],
    ambient: usize,
    anchors: &[&[f64]],
    lo: usize,
    n: usize,
    stride: usize,
    out: &mut [f64],
) {
    let panel = STRIP * (ambient - 1);
    let n_anchors = anchors.len();
    let mut i = 0;
    // Head: items before the first strip boundary.
    while i < n && !(lo + i).is_multiple_of(STRIP) {
        for (u, anchor) in anchors.iter().enumerate() {
            out[u * stride + i] = neg_inner_one(time, spatial, ambient, anchor, -anchor[0], lo + i);
        }
        i += 1;
    }
    // Aligned full strips: one tile read serves every anchor group.
    while i + STRIP <= n {
        let t = &time[lo + i..lo + i + STRIP];
        let base = (lo + i) / STRIP * panel;
        let tile = &spatial[base..base + panel];
        let mut a = 0;
        while a < n_anchors {
            let b = (n_anchors - a).min(MULTI);
            let group = &anchors[a..a + b];
            let mut acc = [[0.0f64; STRIP]; MULTI];
            for (u, accu) in acc.iter_mut().take(b).enumerate() {
                let na0 = -group[u][0];
                for k in 0..STRIP {
                    accu[k] = na0 * t[k];
                }
            }
            for j in 1..ambient {
                let col = &tile[(j - 1) * STRIP..j * STRIP];
                for (u, accu) in acc.iter_mut().take(b).enumerate() {
                    let aj = group[u][j];
                    for k in 0..STRIP {
                        accu[k] += aj * col[k];
                    }
                }
            }
            for (u, accu) in acc.iter().take(b).enumerate() {
                let dst = &mut out[(a + u) * stride + i..(a + u) * stride + i + STRIP];
                for k in 0..STRIP {
                    dst[k] = -accu[k];
                }
            }
            a += b;
        }
        i += STRIP;
    }
    // Tail: the final partial strip.
    while i < n {
        for (u, anchor) in anchors.iter().enumerate() {
            out[u * stride + i] = neg_inner_one(time, spatial, ambient, anchor, -anchor[0], lo + i);
        }
        i += 1;
    }
}

/// [`neg_inner_strips_multi`] compiled with AVX-512F enabled, selected
/// at runtime. Identical IEEE-754 operation sequence — only the vector
/// width differs.
///
/// # Safety
/// Caller must ensure the CPU supports AVX-512F.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn neg_inner_strips_multi_avx512(
    time: &[f64],
    spatial: &[f64],
    ambient: usize,
    anchors: &[&[f64]],
    lo: usize,
    n: usize,
    stride: usize,
    out: &mut [f64],
) {
    neg_inner_strips_multi(time, spatial, ambient, anchors, lo, n, stride, out);
}

/// [`neg_inner_strips_multi`] compiled with AVX2 enabled, selected at
/// runtime. Identical IEEE-754 operation sequence — only the vector
/// width differs.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn neg_inner_strips_multi_avx2(
    time: &[f64],
    spatial: &[f64],
    ambient: usize,
    anchors: &[&[f64]],
    lo: usize,
    n: usize,
    stride: usize,
    out: &mut [f64],
) {
    neg_inner_strips_multi(time, spatial, ambient, anchors, lo, n, stride, out);
}

/// Second distance channel of a fused two-channel score pass.
pub struct TagChannel<'a> {
    /// Cache over the tag-relevant item block.
    pub cache: &'a BlockCache,
    /// Tag-relevant anchor (same ambient dim as `cache`).
    pub anchor: &'a [f64],
    /// Channel weight: `gain · α_u` in paper Eq. 17.
    pub alpha: f64,
}

/// Fused two-channel preference scores for one anchor against the block
/// `lo..hi`:
///
/// `out[i] = −( d²(u_ir, v_ir_i) + α · d²(u_tg, v_tg_i) )`
///
/// with the tag term dropped when `tag` is `None`. `scratch` must be at
/// least `hi − lo` long when `tag` is present; its prior contents are
/// overwritten. The per-item arithmetic order matches the scalar scoring
/// loop (`d = arcosh(−⟨·,·⟩); g = d·d; g += α·(d_tg·d_tg); score = −g`),
/// so scores are bit-identical to the pre-fusion path. Both channels'
/// inner products run as batched sweeps, then one finisher pass applies
/// arcosh/square/combine per item — a single traversal instead of the
/// five separate map passes the composed `distance_sq_block` calls would
/// make.
pub fn fused_scores_block(
    ir: &BlockCache,
    u_ir: &[f64],
    tag: Option<TagChannel<'_>>,
    lo: usize,
    hi: usize,
    scratch: &mut [f64],
    out: &mut [f64],
) {
    ir.neg_inner_block(u_ir, lo, hi, out);
    match tag {
        Some(t) => {
            let n = hi - lo;
            assert!(scratch.len() >= n, "scratch too small for tag channel");
            let scratch = &mut scratch[..n];
            t.cache.neg_inner_block(t.anchor, lo, hi, scratch);
            let alpha = t.alpha;
            for (o, &ni_tg) in out.iter_mut().zip(scratch.iter()) {
                let d_ir = arcosh(*o);
                let mut g = d_ir * d_ir;
                let d_tg = arcosh(ni_tg);
                g += alpha * (d_tg * d_tg);
                *o = -g;
            }
        }
        None => {
            for o in out.iter_mut() {
                let d = arcosh(*o);
                *o = -(d * d);
            }
        }
    }
}

/// Second distance channel of a multi-anchor fused score pass: one tag
/// cache shared by a block of users, with per-user anchors and weights.
pub struct TagChannelMulti<'a> {
    /// Cache over the tag-relevant item block.
    pub cache: &'a BlockCache,
    /// Tag-relevant anchor of each user (parallel to the `u_irs` block).
    pub anchors: &'a [&'a [f64]],
    /// Channel weight of each user: `gain · α_u` in paper Eq. 17.
    pub alphas: &'a [f64],
}

/// Items per internal pass of [`fused_scores_multi`]: the sweep + finish
/// working set of one pass (score rows, tag scratch rows, and the panel
/// chunk) stays L2-resident, so the finisher reads scores the sweep just
/// wrote instead of re-streaming full-catalog buffers. Also the scratch
/// requirement of the tag channel: `u_irs.len() · min(n, FUSED_ITEM_CHUNK)`.
pub const FUSED_ITEM_CHUNK: usize = 512;

/// Multi-anchor variant of [`fused_scores_block`]: scores a block of
/// users against the items `lo..hi` in one pass, user-major into `out`
/// (`out[u·n + (i−lo)]`, `n = hi − lo`, `out.len() == u_irs.len() · n`).
/// `scratch` must be at least `u_irs.len() · min(n, FUSED_ITEM_CHUNK)`
/// long when `tag` is present; its prior contents are overwritten.
///
/// Each user's row is bit-identical to a single-anchor
/// [`fused_scores_block`] call — the batched inner-product sweeps keep
/// [`neg_inner_one`]'s per-pair arithmetic and the finisher applies the
/// same `d = arcosh(·); g = d·d; g += α·(d_tg·d_tg); score = −g`
/// sequence per item. Batching exists purely for memory traffic: the
/// item panels stream once per user *block* instead of once per user,
/// and the work proceeds in [`FUSED_ITEM_CHUNK`]-item passes so each
/// pass finishes its scores while they are still cache-hot.
pub fn fused_scores_multi(
    ir: &BlockCache,
    u_irs: &[&[f64]],
    tag: Option<TagChannelMulti<'_>>,
    lo: usize,
    hi: usize,
    scratch: &mut [f64],
    out: &mut [f64],
) {
    let n = hi - lo;
    let b = u_irs.len();
    assert_eq!(out.len(), b * n, "output length mismatch");
    if let Some(t) = &tag {
        assert_eq!(t.anchors.len(), b, "tag anchors/users mismatch");
        assert_eq!(t.alphas.len(), b, "tag alphas/users mismatch");
        assert!(
            scratch.len() >= b * n.min(FUSED_ITEM_CHUNK),
            "scratch too small for tag channel"
        );
    }
    let mut c0 = 0;
    while c0 < n {
        let c1 = (c0 + FUSED_ITEM_CHUNK).min(n);
        let m = c1 - c0;
        // ir sweep of this item chunk, strided straight into the full
        // user-major rows of `out`.
        ir.neg_inner_multi_dispatch(u_irs, lo + c0, m, n, &mut out[c0..]);
        match &tag {
            Some(t) => {
                let scr = &mut scratch[..b * m];
                t.cache
                    .neg_inner_multi_dispatch(t.anchors, lo + c0, m, m, scr);
                for u in 0..b {
                    let alpha = t.alphas[u];
                    let orow = &mut out[u * n + c0..u * n + c1];
                    let srow = &scr[u * m..(u + 1) * m];
                    for (o, &ni_tg) in orow.iter_mut().zip(srow.iter()) {
                        let d_ir = arcosh(*o);
                        let mut g = d_ir * d_ir;
                        let d_tg = arcosh(ni_tg);
                        g += alpha * (d_tg * d_tg);
                        *o = -g;
                    }
                }
            }
            None => {
                for u in 0..b {
                    for o in &mut out[u * n + c0..u * n + c1] {
                        let d = arcosh(*o);
                        *o = -(d * d);
                    }
                }
            }
        }
        c0 = c1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lorentz;

    fn flat(points: &[Vec<f64>]) -> Vec<f64> {
        points.iter().flat_map(|p| p.iter().copied()).collect()
    }

    fn sample_points() -> Vec<Vec<f64>> {
        vec![
            lorentz::from_spatial(&[0.0, 0.0, 0.0]),
            lorentz::from_spatial(&[0.5, -1.2, 3.0]),
            lorentz::from_spatial(&[1e-9, -1e-9, 1e-9]),
            lorentz::from_spatial(&[-4.0, 2.5, -1.0]),
            lorentz::from_spatial(&[0.3, 0.1, -0.2]),
        ]
    }

    #[test]
    fn cache_layout_round_trips() {
        let pts = sample_points();
        let c = BlockCache::build(&flat(&pts), 4);
        assert_eq!(c.rows(), pts.len());
        assert_eq!(c.ambient(), 4);
        assert!(!c.is_empty());
        assert!(c.max_constraint_residual() < 1e-9);
    }

    #[test]
    fn block_kernels_are_bit_identical_to_scalar() {
        let pts = sample_points();
        let c = BlockCache::build(&flat(&pts), 4);
        let anchor = lorentz::from_spatial(&[0.9, -0.4, 0.25]);
        let mut d = vec![0.0; pts.len()];
        c.distance_block(&anchor, 0, pts.len(), &mut d);
        let mut d2 = vec![0.0; pts.len()];
        c.distance_sq_block(&anchor, 0, pts.len(), &mut d2);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(
                d[i].to_bits(),
                lorentz::distance(&anchor, p).to_bits(),
                "distance row {i}"
            );
            assert_eq!(
                d2[i].to_bits(),
                lorentz::distance_sq(&anchor, p).to_bits(),
                "distance_sq row {i}"
            );
        }
    }

    #[test]
    fn sub_blocks_match_full_block() {
        let pts = sample_points();
        let c = BlockCache::build(&flat(&pts), 4);
        let anchor = lorentz::from_spatial(&[-0.3, 0.8, 0.1]);
        let mut full = vec![0.0; pts.len()];
        c.distance_sq_block(&anchor, 0, pts.len(), &mut full);
        let mut part = vec![0.0; 2];
        c.distance_sq_block(&anchor, 2, 4, &mut part);
        assert_eq!(part[0].to_bits(), full[2].to_bits());
        assert_eq!(part[1].to_bits(), full[3].to_bits());
    }

    #[test]
    fn rebuild_reuses_and_refreshes() {
        let pts = sample_points();
        let mut c = BlockCache::build(&flat(&pts), 4);
        let moved: Vec<Vec<f64>> = pts
            .iter()
            .map(|p| {
                let spatial: Vec<f64> = p[1..].iter().map(|v| v * 1.5 + 0.1).collect();
                lorentz::from_spatial(&spatial)
            })
            .collect();
        c.rebuild(&flat(&moved), 4);
        let anchor = lorentz::from_spatial(&[0.2, 0.2, 0.2]);
        let mut d = vec![0.0; moved.len()];
        c.distance_block(&anchor, 0, moved.len(), &mut d);
        for (i, p) in moved.iter().enumerate() {
            assert_eq!(d[i].to_bits(), lorentz::distance(&anchor, p).to_bits());
        }
    }

    #[test]
    fn fused_scores_match_scalar_two_channel_loop() {
        let ir_pts = sample_points();
        let tg_pts: Vec<Vec<f64>> = vec![
            lorentz::from_spatial(&[0.1, 0.0]),
            lorentz::from_spatial(&[-0.5, 0.4]),
            lorentz::from_spatial(&[2.0, -1.0]),
            lorentz::from_spatial(&[0.0, 0.0]),
            lorentz::from_spatial(&[-0.1, -0.3]),
        ];
        let ir = BlockCache::build(&flat(&ir_pts), 4);
        let tg = BlockCache::build(&flat(&tg_pts), 3);
        let u_ir = lorentz::from_spatial(&[0.4, 0.4, -0.9]);
        let u_tg = lorentz::from_spatial(&[-0.2, 0.6]);
        let alpha = 0.37;
        let n = ir_pts.len();
        let mut scratch = vec![0.0; n];
        let mut out = vec![0.0; n];
        fused_scores_block(
            &ir,
            &u_ir,
            Some(TagChannel {
                cache: &tg,
                anchor: &u_tg,
                alpha,
            }),
            0,
            n,
            &mut scratch,
            &mut out,
        );
        for i in 0..n {
            let mut g = lorentz::distance_sq(&u_ir, &ir_pts[i]);
            g += alpha * lorentz::distance_sq(&u_tg, &tg_pts[i]);
            assert_eq!(out[i].to_bits(), (-g).to_bits(), "row {i}");
        }
        // Single channel.
        fused_scores_block(&ir, &u_ir, None, 0, n, &mut scratch, &mut out);
        for i in 0..n {
            let g = lorentz::distance_sq(&u_ir, &ir_pts[i]);
            assert_eq!(out[i].to_bits(), (-g).to_bits(), "row {i} (single)");
        }
    }

    #[test]
    fn multi_anchor_rows_match_single_anchor_sweeps() {
        // 6 anchors exercises one full MULTI group plus a remainder; the
        // sub-range 1..4 exercises the unaligned head/tail per group.
        let pts = sample_points();
        let c = BlockCache::build(&flat(&pts), 4);
        let anchor_pts: Vec<Vec<f64>> = (0..6)
            .map(|a| {
                let s = a as f64 * 0.3 - 0.8;
                lorentz::from_spatial(&[s, -s * 0.5, 0.2 + s])
            })
            .collect();
        let anchors: Vec<&[f64]> = anchor_pts.iter().map(|p| p.as_slice()).collect();
        for (lo, hi) in [(0usize, pts.len()), (1, 4)] {
            let n = hi - lo;
            let mut multi = vec![0.0; anchors.len() * n];
            c.neg_inner_block_multi(&anchors, lo, hi, &mut multi);
            let mut single = vec![0.0; n];
            for (u, a) in anchors.iter().enumerate() {
                c.neg_inner_block(a, lo, hi, &mut single);
                for i in 0..n {
                    assert_eq!(
                        multi[u * n + i].to_bits(),
                        single[i].to_bits(),
                        "anchor {u} item {i} range {lo}..{hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_multi_scores_match_per_user_fused_blocks() {
        let ir_pts = sample_points();
        let tg_pts: Vec<Vec<f64>> = ir_pts
            .iter()
            .map(|p| lorentz::from_spatial(&[p[1] * 0.5, p[2] - 0.1]))
            .collect();
        let ir = BlockCache::build(&flat(&ir_pts), 4);
        let tg = BlockCache::build(&flat(&tg_pts), 3);
        let n = ir_pts.len();
        let b = 5usize; // one full MULTI group + remainder
        let u_ir_pts: Vec<Vec<f64>> = (0..b)
            .map(|u| lorentz::from_spatial(&[0.1 * u as f64, -0.4, 0.3]))
            .collect();
        let u_tg_pts: Vec<Vec<f64>> = (0..b)
            .map(|u| lorentz::from_spatial(&[0.2, 0.1 * u as f64 - 0.3]))
            .collect();
        let u_irs: Vec<&[f64]> = u_ir_pts.iter().map(|p| p.as_slice()).collect();
        let u_tgs: Vec<&[f64]> = u_tg_pts.iter().map(|p| p.as_slice()).collect();
        let alphas: Vec<f64> = (0..b).map(|u| 0.2 + 0.15 * u as f64).collect();
        let mut scratch = vec![0.0; b * n];
        let mut multi = vec![0.0; b * n];
        fused_scores_multi(
            &ir,
            &u_irs,
            Some(TagChannelMulti {
                cache: &tg,
                anchors: &u_tgs,
                alphas: &alphas,
            }),
            0,
            n,
            &mut scratch,
            &mut multi,
        );
        let mut single_scr = vec![0.0; n];
        let mut single = vec![0.0; n];
        for u in 0..b {
            fused_scores_block(
                &ir,
                u_irs[u],
                Some(TagChannel {
                    cache: &tg,
                    anchor: u_tgs[u],
                    alpha: alphas[u],
                }),
                0,
                n,
                &mut single_scr,
                &mut single,
            );
            for i in 0..n {
                assert_eq!(
                    multi[u * n + i].to_bits(),
                    single[i].to_bits(),
                    "user {u} item {i}"
                );
            }
        }
        // Single channel.
        fused_scores_multi(&ir, &u_irs, None, 0, n, &mut [], &mut multi);
        for u in 0..b {
            fused_scores_block(&ir, u_irs[u], None, 0, n, &mut [], &mut single);
            for i in 0..n {
                assert_eq!(
                    multi[u * n + i].to_bits(),
                    single[i].to_bits(),
                    "user {u} item {i} (single channel)"
                );
            }
        }
    }

    #[test]
    fn empty_cache_is_harmless() {
        let c = BlockCache::build(&[], 4);
        assert!(c.is_empty());
        assert_eq!(c.rows(), 0);
        let anchor = lorentz::origin(4);
        let mut out: Vec<f64> = vec![];
        c.distance_block(&anchor, 0, 0, &mut out);
    }
}
