//! The Lorentz (hyperboloid) model
//! `H^d = {x ∈ R^{d+1} : ⟨x,x⟩_L = −1, x₀ > 0}` (curvature −1).
//!
//! The paper performs all metric learning and Riemannian optimization here
//! because the hyperboloid "allows for an efficient closed-form computation
//! of the geodesics ... and can avoid numerical instabilities that arise
//! from the Poincaré distance" (§III-B). Implements the Lorentzian inner
//! product, distance, the exponential/logarithmic maps at the origin used by
//! the global aggregation (Eqs. 12, 15), the exponential map at arbitrary
//! points used by RSGD (Eq. 23), and tangent-space projection (Eq. 20's
//! hyperboloid analogue).
//!
//! Note on the sign convention: the paper's §III-B states the constraint as
//! `⟨x,x⟩_L = 1`, which is a typo — with the signature `diag(−1, 1, …, 1)`
//! the hyperboloid satisfies `⟨x,x⟩_L = −1` (as in Nickel & Kiela 2018,
//! which the paper follows). We use the standard convention.

use crate::vecops::norm;
use crate::{arcosh, EPS_DIV, EPS_SMALL};

/// Lorentzian scalar product `⟨x,y⟩_L = −x₀y₀ + Σ_{i≥1} x_i y_i`.
#[inline]
pub fn inner(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    debug_assert!(x.len() >= 2);
    let mut s = -x[0] * y[0];
    for i in 1..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// Geodesic distance on the hyperboloid: `d_H(x,y) = arcosh(−⟨x,y⟩_L)`.
#[inline]
pub fn distance(x: &[f64], y: &[f64]) -> f64 {
    arcosh(-inner(x, y))
}

/// Squared geodesic distance `d_H(x,y)²` — the quantity entering the
/// tag-enhanced similarity `g(u,v)` (paper Eq. 17).
#[inline]
pub fn distance_sq(x: &[f64], y: &[f64]) -> f64 {
    let d = distance(x, y);
    d * d
}

/// The hyperboloid origin `o = (1, 0, …, 0)` in `d+1` ambient dimensions.
pub fn origin(ambient_dim: usize) -> Vec<f64> {
    let mut o = vec![0.0; ambient_dim];
    o[0] = 1.0;
    o
}

/// Re-projects an ambient vector onto the hyperboloid by recomputing the
/// time coordinate: `x₀ ← √(1 + ‖x_{1:}‖²)`.
///
/// Run after every optimizer step; floating-point drift otherwise
/// accumulates in the constraint `⟨x,x⟩_L = −1`.
#[inline]
pub fn project_to_hyperboloid(x: &mut [f64]) {
    let mut s = 0.0;
    for &v in &x[1..] {
        s += v * v;
    }
    x[0] = (1.0 + s).sqrt();
}

/// Lifts a spatial vector `x_s ∈ R^d` onto the hyperboloid point
/// `(√(1+‖x_s‖²), x_s)`. Used to initialize parameters.
pub fn from_spatial(spatial: &[f64]) -> Vec<f64> {
    let mut x = Vec::with_capacity(spatial.len() + 1);
    x.push(0.0);
    x.extend_from_slice(spatial);
    project_to_hyperboloid(&mut x);
    x
}

/// Logarithmic map at the origin (paper Eq. 12 specialized to `o`):
/// maps a hyperboloid point `x` to the tangent space `T_o H^d`, returning
/// only the spatial `d` coordinates (the time coordinate of a tangent
/// vector at `o` is always 0).
///
/// Closed form: `log_o(x) = arcosh(x₀) · x_s / ‖x_s‖`.
pub fn log_map_origin(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len() + 1);
    let spatial = &x[1..];
    let n = norm(spatial);
    if n < EPS_DIV {
        out.fill(0.0);
        return;
    }
    let f = arcosh(x[0]) / n;
    for (o, &v) in out.iter_mut().zip(spatial) {
        *o = f * v;
    }
}

/// Exponential map at the origin (paper Eq. 15): maps a tangent vector
/// `z ∈ T_o H^d ≅ R^d` (spatial coordinates) to the hyperboloid:
///
/// `exp_o(z) = (cosh ‖z‖, sinh(‖z‖)·z/‖z‖)`.
pub fn exp_map_origin(z: &[f64], out: &mut [f64]) {
    debug_assert_eq!(z.len() + 1, out.len());
    let r = norm(z);
    if r < EPS_SMALL {
        // cosh r ≈ 1 + r²/2, sinh(r)/r ≈ 1 + r²/6.
        out[0] = 1.0 + r * r / 2.0;
        let f = 1.0 + r * r / 6.0;
        for (o, &v) in out[1..].iter_mut().zip(z) {
            *o = f * v;
        }
        return;
    }
    out[0] = r.cosh();
    let f = r.sinh() / r;
    for (o, &v) in out[1..].iter_mut().zip(z) {
        *o = f * v;
    }
}

/// Projects an ambient gradient `h` onto the tangent space at `x`:
/// `proj_x(h) = h + ⟨x,h⟩_L · x`.
///
/// This is the hyperboloid analogue of the paper's Eq. 20 projection.
pub fn project_to_tangent(x: &[f64], h: &mut [f64]) {
    let c = inner(x, h);
    for (hi, &xi) in h.iter_mut().zip(x) {
        *hi += c * xi;
    }
}

/// Converts a Euclidean ambient gradient into the Riemannian gradient:
/// apply the inverse metric tensor `g_L⁻¹ = diag(−1,1,…,1)` (flip the sign
/// of the time component) and project onto the tangent space at `x`.
pub fn riemannian_grad(x: &[f64], grad_e: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), grad_e.len());
    debug_assert_eq!(x.len(), out.len());
    out.copy_from_slice(grad_e);
    out[0] = -out[0];
    project_to_tangent(x, out);
}

/// Exponential map at an arbitrary hyperboloid point `x` (paper Eq. 23):
///
/// `exp_x(η) = cosh(‖η‖_L)·x + sinh(‖η‖_L)·η/‖η‖_L`,
///
/// where `‖η‖_L = √⟨η,η⟩_L` for a tangent vector `η` (non-negative on the
/// tangent space).
pub fn exp_map(x: &[f64], eta: &[f64], out: &mut [f64]) {
    let n2 = inner(eta, eta).max(0.0);
    let n = n2.sqrt();
    if n < EPS_SMALL {
        for i in 0..out.len() {
            out[i] = x[i] + eta[i];
        }
        project_to_hyperboloid(out);
        return;
    }
    let ch = n.cosh();
    let sh = n.sinh() / n;
    for i in 0..out.len() {
        out[i] = ch * x[i] + sh * eta[i];
    }
    project_to_hyperboloid(out);
}

/// One Riemannian SGD step: `x ← exp_x(−lr · grad_R(x))`, then re-project.
pub fn rsgd_step(x: &mut [f64], grad_e: &[f64], lr: f64) {
    let mut rg = vec![0.0; x.len()];
    let mut out = vec![0.0; x.len()];
    rsgd_step_buffered(x, grad_e, lr, &mut rg, &mut out);
}

/// [`rsgd_step`] with caller-provided buffers (`rg` and `out`, both of
/// `x.len()`) — the allocation-free form for optimizer loops that update
/// many rows. Arithmetic is identical to [`rsgd_step`].
pub fn rsgd_step_buffered(x: &mut [f64], grad_e: &[f64], lr: f64, rg: &mut [f64], out: &mut [f64]) {
    riemannian_grad(x, grad_e, rg);
    for g in rg.iter_mut() {
        *g *= -lr;
    }
    exp_map(x, rg, out);
    x.copy_from_slice(out);
}

/// Checks how far `x` drifts from the hyperboloid constraint; returns
/// `|⟨x,x⟩_L + 1|`. Useful in tests and debug assertions.
pub fn constraint_residual(x: &[f64]) -> f64 {
    (inner(x, x) + 1.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_on_hyperboloid() {
        let o = origin(4);
        assert!(constraint_residual(&o) < 1e-12);
        assert_eq!(distance(&o, &o), 0.0);
    }

    #[test]
    fn from_spatial_satisfies_constraint() {
        let x = from_spatial(&[0.5, -1.2, 3.0]);
        assert!(constraint_residual(&x) < 1e-12);
        assert!(x[0] >= 1.0);
    }

    #[test]
    fn distance_symmetry_and_identity() {
        let x = from_spatial(&[0.3, 0.1]);
        let y = from_spatial(&[-0.4, 0.9]);
        assert!(distance(&x, &x) < 1e-7);
        assert!((distance(&x, &y) - distance(&y, &x)).abs() < 1e-12);
        assert!(distance(&x, &y) > 0.0);
    }

    #[test]
    fn triangle_inequality() {
        let x = from_spatial(&[0.3, 0.1]);
        let y = from_spatial(&[-0.4, 0.9]);
        let z = from_spatial(&[1.0, -1.0]);
        assert!(distance(&x, &z) <= distance(&x, &y) + distance(&y, &z) + 1e-9);
    }

    #[test]
    fn exp_log_origin_roundtrip() {
        let z = [0.7, -0.3, 0.45];
        let mut x = vec![0.0; 4];
        exp_map_origin(&z, &mut x);
        assert!(constraint_residual(&x) < 1e-10);
        let mut back = [0.0; 3];
        log_map_origin(&x, &mut back);
        for i in 0..3 {
            assert!((back[i] - z[i]).abs() < 1e-9, "{} vs {}", back[i], z[i]);
        }
    }

    #[test]
    fn log_exp_origin_roundtrip() {
        let x = from_spatial(&[1.5, -0.2]);
        let mut z = [0.0; 2];
        log_map_origin(&x, &mut z);
        let mut back = vec![0.0; 3];
        exp_map_origin(&z, &mut back);
        for i in 0..3 {
            assert!((back[i] - x[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_to_origin_equals_tangent_norm() {
        // d_H(o, exp_o(z)) = ‖z‖.
        let z = [0.6, 0.8];
        let mut x = vec![0.0; 3];
        exp_map_origin(&z, &mut x);
        let o = origin(3);
        assert!((distance(&o, &x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exp_map_small_argument_series() {
        let x = from_spatial(&[0.2, 0.3]);
        let eta = [1e-9, 1e-9, 1e-9];
        let mut out = vec![0.0; 3];
        exp_map(&x, &eta, &mut out);
        assert!(constraint_residual(&out) < 1e-9);
        assert!((out[1] - x[1]).abs() < 1e-6);
    }

    #[test]
    fn tangent_projection_is_lorentz_orthogonal() {
        let x = from_spatial(&[0.4, -0.7]);
        let mut h = vec![0.3, 1.0, -0.5];
        project_to_tangent(&x, &mut h);
        assert!(inner(&x, &h).abs() < 1e-10);
    }

    #[test]
    fn rsgd_pulls_point_toward_target() {
        let target = from_spatial(&[0.8, -0.1]);
        let mut x = from_spatial(&[-0.5, 0.6]);
        let before = distance(&x, &target);
        for _ in 0..100 {
            // Euclidean grad of d² wrt x: 2 d · arcosh'(s) · ∂s/∂x with
            // s = −⟨x,t⟩_L, ∂s/∂x = (t₀, −t₁, …) = −J t.
            let s = -inner(&x, &target);
            let d = arcosh(s);
            let c = 2.0 * d * crate::arcosh_grad(s);
            let mut g = vec![0.0; 3];
            g[0] = c * target[0];
            for i in 1..3 {
                g[i] = -c * target[i];
            }
            rsgd_step(&mut x, &g, 0.05);
            assert!(constraint_residual(&x) < 1e-9);
        }
        let after = distance(&x, &target);
        assert!(after < before * 0.2, "before={before} after={after}");
    }
}
