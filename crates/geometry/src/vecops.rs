//! Small dense-vector helpers shared by every geometry module.
//!
//! These operate on plain `&[f64]` slices so that embedding matrices can be
//! stored flat (row-major) and individual rows passed in without copying.
//! All functions are `#[inline]`-small; the hot loops of the training code
//! compile down to straight-line vector code.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm `‖a‖²`.
#[inline]
pub fn sqnorm(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    sqnorm(a).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn sqdist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Writes `a + b` into `out`.
#[inline]
pub fn add(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// Writes `a − b` into `out`.
#[inline]
pub fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Writes `c·a` into `out`.
#[inline]
pub fn scale(a: &[f64], c: f64, out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len());
    for (o, x) in out.iter_mut().zip(a) {
        *o = c * x;
    }
}

/// In-place `a += c·b` (axpy).
#[inline]
pub fn axpy(a: &mut [f64], c: f64, b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += c * y;
    }
}

/// In-place scaling `a *= c`.
#[inline]
pub fn scale_in_place(a: &mut [f64], c: f64) {
    for x in a {
        *x *= c;
    }
}

/// Clips `a` in place so that `‖a‖ ≤ max_norm`, preserving direction.
///
/// Returns `true` if clipping was applied. Used to keep Poincaré-ball and
/// Klein points strictly inside the unit ball.
#[inline]
pub fn clip_norm(a: &mut [f64], max_norm: f64) -> bool {
    let n = norm(a);
    if n > max_norm {
        let f = max_norm / n;
        scale_in_place(a, f);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(sqnorm(&a), 25.0);
        assert_eq!(norm(&a), 5.0);
        assert_eq!(sqdist(&a, &[0.0, 0.0]), 25.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        let mut out = [0.0; 2];
        add(&a, &b, &mut out);
        assert_eq!(out, [11.0, 22.0]);
        sub(&b, &a, &mut out);
        assert_eq!(out, [9.0, 18.0]);
        scale(&a, 2.0, &mut out);
        assert_eq!(out, [2.0, 4.0]);
        let mut c = [1.0, 1.0];
        axpy(&mut c, 3.0, &a);
        assert_eq!(c, [4.0, 7.0]);
    }

    #[test]
    fn clip_norm_only_when_needed() {
        let mut a = [0.3, 0.4]; // norm 0.5
        assert!(!clip_norm(&mut a, 1.0));
        assert_eq!(a, [0.3, 0.4]);
        let mut b = [3.0, 4.0]; // norm 5
        assert!(clip_norm(&mut b, 1.0));
        assert!((norm(&b) - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((b[0] / b[1] - 0.75).abs() < 1e-12);
    }
}
