//! Hyperbolic geometry kernels for TaxoRec.
//!
//! This crate implements the three models of hyperbolic space used by the
//! paper *"Enhancing Recommendation with Automated Tag Taxonomy Construction
//! in Hyperbolic Space"* (ICDE 2022), all at constant curvature −1:
//!
//! * the **Poincaré ball** [`poincare`] — used for taxonomy construction
//!   and its regularization (paper §IV-C, Eqs. 8, 21–22),
//! * the **Lorentz / hyperboloid model** [`lorentz`] — used for metric
//!   learning and Riemannian optimization (paper §IV-D/E, Eqs. 12, 15, 17,
//!   23),
//! * the **Klein model** [`klein`] — used transiently for the Einstein
//!   midpoint aggregation of tag embeddings (paper Eqs. 1, 9–10).
//!
//! [`convert`] holds the diffeomorphisms between the models (paper Eqs. 2,
//! 3, 9, 11) and [`vecops`] the small dense-vector helpers everything else
//! is built on.
//!
//! # Numerical-safety policy
//!
//! Hyperbolic arithmetic is notoriously unstable near the boundary of the
//! ball and for nearly-coincident points. This crate applies, everywhere:
//!
//! * ball/Klein points are clipped to norm ≤ [`MAX_BALL_NORM`],
//! * `arcosh` arguments are clamped to ≥ 1 ([`arcosh`]),
//! * hyperboloid points are re-projected via
//!   [`lorentz::project_to_hyperboloid`],
//! * `sinh(r)/r`-style factors use series expansions below [`EPS_SMALL`].
//!
//! All functions operate on `&[f64]` slices so callers can store embeddings
//! in flat matrices without copies.

pub mod batch;
pub mod convert;
pub mod klein;
pub mod lorentz;
pub mod poincare;
pub mod vecops;

/// Maximum Euclidean norm allowed for a point of the Poincaré ball or the
/// Klein disk. Points are clipped to this radius to keep distances and
/// Lorentz factors finite.
pub const MAX_BALL_NORM: f64 = 1.0 - 1e-5;

/// Threshold below which `sinh(r)/r`-style expressions switch to their
/// Taylor expansion.
pub const EPS_SMALL: f64 = 1e-7;

/// Generic tiny constant guarding divisions by near-zero norms.
pub const EPS_DIV: f64 = 1e-12;

/// Inverse hyperbolic cosine with the argument clamped to the domain
/// `[1, ∞)`.
///
/// Floating-point noise routinely produces arguments like `1 − 1e−16` for
/// coincident points; clamping makes the distance exactly zero instead of
/// NaN.
#[inline]
pub fn arcosh(x: f64) -> f64 {
    x.max(1.0).acosh()
}

/// Derivative of [`arcosh`] at `x`, i.e. `1/sqrt(x² − 1)`, guarded so that
/// it stays finite as `x → 1⁺`.
///
/// The guard corresponds to clamping the derivative at the scale where the
/// forward value itself has been clamped; gradient-based callers rely on
/// this to avoid exploding steps for near-coincident points.
#[inline]
pub fn arcosh_grad(x: f64) -> f64 {
    let x = x.max(1.0);
    1.0 / (x * x - 1.0).sqrt().max(EPS_SMALL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcosh_clamps_below_domain() {
        assert_eq!(arcosh(0.5), 0.0);
        assert_eq!(arcosh(1.0), 0.0);
        assert!(arcosh(2.0) > 0.0);
    }

    #[test]
    fn arcosh_matches_std_in_domain() {
        for &x in &[1.0, 1.5, 2.0, 10.0, 1e6] {
            assert!((arcosh(x) - x.acosh()).abs() < 1e-12);
        }
    }

    #[test]
    fn arcosh_grad_is_finite_at_one() {
        assert!(arcosh_grad(1.0).is_finite());
        assert!(arcosh_grad(0.999).is_finite());
        let g = arcosh_grad(2.0);
        assert!((g - 1.0 / 3.0f64.sqrt()).abs() < 1e-12);
    }
}
