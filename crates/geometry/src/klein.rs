//! The Klein (Beltrami–Klein) model `K^d = {x ∈ R^d : ‖x‖ < 1}`.
//!
//! The paper routes tag embeddings through the Klein model only to compute
//! the **Einstein midpoint** (Eq. 1 / Eq. 10) — the hyperbolic analogue of a
//! weighted average — because in Klein coordinates the midpoint has the
//! simple closed form
//!
//! `HypAve(x₁,…,x_N) = Σ γᵢ wᵢ xᵢ / Σ γᵢ wᵢ`, with Lorentz factor
//! `γᵢ = 1/√(1 − ‖xᵢ‖²)`.

use crate::vecops::{clip_norm, sqnorm};
use crate::{EPS_DIV, MAX_BALL_NORM};

/// Lorentz factor `γ(x) = 1/√(1 − ‖x‖²)` of a Klein point.
///
/// The norm is clamped to [`MAX_BALL_NORM`] so γ stays finite for
/// boundary-grazing points.
#[inline]
pub fn lorentz_factor(x: &[f64]) -> f64 {
    let n2 = sqnorm(x).min(MAX_BALL_NORM * MAX_BALL_NORM);
    1.0 / (1.0 - n2).sqrt()
}

/// Weighted Einstein midpoint of Klein points (paper Eqs. 1 and 10).
///
/// `points` supplies each point as a slice; `weights` the per-point weights
/// `ψᵢ` (e.g. the rows of the item–tag matrix). Zero total weight yields the
/// origin. The result is clipped into the disk.
pub fn einstein_midpoint(points: &[&[f64]], weights: &[f64], out: &mut [f64]) {
    debug_assert_eq!(points.len(), weights.len());
    out.fill(0.0);
    let mut wsum = 0.0;
    for (p, &w) in points.iter().zip(weights) {
        if w == 0.0 {
            continue;
        }
        let g = lorentz_factor(p) * w;
        for (o, &v) in out.iter_mut().zip(*p) {
            *o += g * v;
        }
        wsum += g;
    }
    if wsum.abs() < EPS_DIV {
        out.fill(0.0);
        return;
    }
    for o in out.iter_mut() {
        *o /= wsum;
    }
    clip_norm(out, MAX_BALL_NORM);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::norm;

    #[test]
    fn lorentz_factor_at_origin_is_one() {
        assert_eq!(lorentz_factor(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn lorentz_factor_grows_toward_boundary() {
        assert!(lorentz_factor(&[0.9, 0.0]) > lorentz_factor(&[0.5, 0.0]));
        assert!(lorentz_factor(&[0.999999, 0.0]).is_finite());
    }

    #[test]
    fn midpoint_of_identical_points_is_the_point() {
        let p = [0.4, -0.2];
        let mut out = [0.0; 2];
        einstein_midpoint(&[&p, &p, &p], &[1.0, 2.0, 0.5], &mut out);
        assert!((out[0] - p[0]).abs() < 1e-12);
        assert!((out[1] - p[1]).abs() < 1e-12);
    }

    #[test]
    fn midpoint_respects_weights() {
        let a = [0.5, 0.0];
        let b = [-0.5, 0.0];
        let mut mid = [0.0; 2];
        einstein_midpoint(&[&a, &b], &[1.0, 1.0], &mut mid);
        assert!(
            norm(&mid) < 1e-12,
            "equal weights, symmetric points → origin"
        );
        einstein_midpoint(&[&a, &b], &[10.0, 1.0], &mut mid);
        assert!(mid[0] > 0.0, "heavier weight pulls the midpoint toward a");
    }

    #[test]
    fn midpoint_zero_weights_is_origin() {
        let a = [0.5, 0.1];
        let mut out = [9.0; 2];
        einstein_midpoint(&[&a], &[0.0], &mut out);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    fn midpoint_stays_in_disk() {
        let a = [0.99, 0.0];
        let b = [0.0, 0.99];
        let mut out = [0.0; 2];
        einstein_midpoint(&[&a, &b], &[1.0, 1.0], &mut out);
        assert!(norm(&out) < 1.0);
    }
}
