//! The Poincaré ball model `P^d = {x ∈ R^d : ‖x‖ < 1}` (curvature −1).
//!
//! The paper constructs the tag taxonomy here because the ball "provides an
//! intuitive way to layout the tags and thus is suitable for hierarchical
//! clustering" (§IV-B). Implements the distance metric (§III-B), Möbius
//! addition (Eq. 22), the Möbius exponential map used by Riemannian SGD on
//! tag embeddings (Eq. 21), and the Riemannian gradient rescaling.

use crate::vecops::{axpy, clip_norm, dot, norm, sqdist, sqnorm};
use crate::{arcosh, EPS_DIV, MAX_BALL_NORM};

/// Poincaré distance (paper §III-B):
///
/// `d_P(x, y) = arcosh(1 + 2‖x−y‖² / ((1−‖x‖²)(1−‖y‖²)))`.
///
/// Inputs are assumed to be inside the unit ball; denominators are guarded
/// so boundary-grazing points produce large-but-finite distances.
pub fn distance(x: &[f64], y: &[f64]) -> f64 {
    arcosh(distance_arg(x, y))
}

/// The argument `1 + 2‖x−y‖²/((1−‖x‖²)(1−‖y‖²))` passed to `arcosh` in the
/// Poincaré distance. Exposed separately for gradient computations.
pub fn distance_arg(x: &[f64], y: &[f64]) -> f64 {
    let a = sqdist(x, y);
    let b = (1.0 - sqnorm(x)).max(EPS_DIV);
    let c = (1.0 - sqnorm(y)).max(EPS_DIV);
    1.0 + 2.0 * a / (b * c)
}

/// Möbius addition `x ⊕ y` (paper Eq. 22):
///
/// `x ⊕ y = ((1 + 2⟨x,y⟩ + ‖y‖²) x + (1 − ‖x‖²) y) / (1 + 2⟨x,y⟩ + ‖x‖²‖y‖²)`.
pub fn mobius_add(x: &[f64], y: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), out.len());
    let xy = dot(x, y);
    let x2 = sqnorm(x);
    let y2 = sqnorm(y);
    let denom = (1.0 + 2.0 * xy + x2 * y2).max(EPS_DIV);
    let cx = (1.0 + 2.0 * xy + y2) / denom;
    let cy = (1.0 - x2) / denom;
    for i in 0..out.len() {
        out[i] = cx * x[i] + cy * y[i];
    }
    clip_norm(out, MAX_BALL_NORM);
}

/// Möbius exponential map at `x` applied to a tangent vector `η`
/// (paper Eq. 21):
///
/// `exp_x(η) = x ⊕ (tanh(‖η‖ / 2) · η/‖η‖)`.
///
/// Note the paper uses this simplified form (valid for the RSGD step after
/// the Riemannian gradient rescaling); for `η = 0` it returns `x`.
pub fn exp_map(x: &[f64], eta: &[f64], out: &mut [f64]) {
    let n = norm(eta);
    if n < EPS_DIV {
        out.copy_from_slice(x);
        clip_norm(out, MAX_BALL_NORM);
        return;
    }
    let f = (n / 2.0).tanh() / n;
    let mut y = vec![0.0; eta.len()];
    for (o, e) in y.iter_mut().zip(eta) {
        *o = f * e;
    }
    mobius_add(x, &y, out);
}

/// Rescales a Euclidean gradient at `x` into the Riemannian gradient of the
/// Poincaré metric: `grad_R = ((1 − ‖x‖²)² / 4) · grad_E`.
///
/// This is the conformal-factor correction used by Poincaré RSGD
/// (Nickel & Kiela 2017); the paper's Eq. 20 projection is for the sphere —
/// in the ball model the metric is conformal so only scaling is needed.
pub fn riemannian_grad(x: &[f64], grad_e: &[f64], out: &mut [f64]) {
    let f = (1.0 - sqnorm(x)).max(EPS_DIV);
    let s = f * f / 4.0;
    for (o, g) in out.iter_mut().zip(grad_e) {
        *o = s * g;
    }
}

/// One Riemannian SGD step on a ball point: `x ← exp_x(−lr · grad_R)`,
/// followed by re-clipping into the ball.
pub fn rsgd_step(x: &mut [f64], grad_e: &[f64], lr: f64) {
    let mut rg = vec![0.0; x.len()];
    let mut out = vec![0.0; x.len()];
    rsgd_step_buffered(x, grad_e, lr, &mut rg, &mut out);
}

/// [`rsgd_step`] with caller-provided buffers (`rg` and `out`, both of
/// `x.len()`) for optimizer loops that update many rows. Arithmetic is
/// identical to [`rsgd_step`].
pub fn rsgd_step_buffered(x: &mut [f64], grad_e: &[f64], lr: f64, rg: &mut [f64], out: &mut [f64]) {
    riemannian_grad(x, grad_e, rg);
    for g in rg.iter_mut() {
        *g *= -lr;
    }
    exp_map(x, rg, out);
    x.copy_from_slice(out);
    clip_norm(x, MAX_BALL_NORM);
}

/// Euclidean gradient of `d_P(x, y)` with respect to `x`, accumulated into
/// `gx` with weight `w`, and with respect to `y` into `gy`.
///
/// Derivation: with `s = 1 + 2A/(BC)`, `A = ‖x−y‖²`, `B = 1−‖x‖²`,
/// `C = 1−‖y‖²`:
/// `∂s/∂x = (4/(BC))(x−y) + (4A/(B²C)) x` and symmetrically for `y`;
/// `∂d/∂s = 1/√(s²−1)` (guarded).
pub fn distance_grad(x: &[f64], y: &[f64], w: f64, gx: &mut [f64], gy: &mut [f64]) {
    let a = sqdist(x, y);
    let b = (1.0 - sqnorm(x)).max(EPS_DIV);
    let c = (1.0 - sqnorm(y)).max(EPS_DIV);
    let s = 1.0 + 2.0 * a / (b * c);
    let dd_ds = crate::arcosh_grad(s) * w;
    let k1 = 4.0 / (b * c) * dd_ds;
    let k2x = 4.0 * a / (b * b * c) * dd_ds;
    let k2y = 4.0 * a / (b * c * c) * dd_ds;
    for i in 0..x.len() {
        let d = x[i] - y[i];
        gx[i] += k1 * d + k2x * x[i];
        gy[i] += -k1 * d + k2y * y[i];
    }
}

/// Projects a point into the open ball (clip at [`MAX_BALL_NORM`]).
pub fn project(x: &mut [f64]) {
    clip_norm(x, MAX_BALL_NORM);
}

/// Weighted Fréchet-style centroid approximation used by Poincaré k-means:
/// maps points to the Klein model, takes the Einstein midpoint, and maps
/// back. Exact Fréchet means have no closed form in the ball; the Einstein
/// midpoint is the standard practical surrogate (paper Eq. 1 / [23]).
pub fn einstein_centroid(points: &[&[f64]], weights: &[f64], out: &mut [f64]) {
    debug_assert_eq!(points.len(), weights.len());
    debug_assert!(!points.is_empty());
    let d = points[0].len();
    debug_assert_eq!(out.len(), d);
    let mut acc = vec![0.0; d];
    let mut wsum = 0.0;
    let mut k = vec![0.0; d];
    for (p, &w) in points.iter().zip(weights) {
        crate::convert::poincare_to_klein(p, &mut k);
        let gamma = crate::klein::lorentz_factor(&k);
        let g = gamma * w;
        axpy(&mut acc, g, &k);
        wsum += g;
    }
    if wsum.abs() < EPS_DIV {
        out.fill(0.0);
        return;
    }
    for a in acc.iter_mut() {
        *a /= wsum;
    }
    clip_norm(&mut acc, MAX_BALL_NORM);
    crate::convert::klein_to_poincare(&acc, out);
    clip_norm(out, MAX_BALL_NORM);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_distance_grad(x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h = 1e-6;
        let mut gx = vec![0.0; x.len()];
        let mut gy = vec![0.0; y.len()];
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            gx[i] = (distance(&xp, y) - distance(&xm, y)) / (2.0 * h);
        }
        for i in 0..y.len() {
            let mut yp = y.to_vec();
            let mut ym = y.to_vec();
            yp[i] += h;
            ym[i] -= h;
            gy[i] = (distance(x, &yp) - distance(x, &ym)) / (2.0 * h);
        }
        (gx, gy)
    }

    #[test]
    fn distance_axioms() {
        let x = [0.1, 0.2];
        let y = [-0.3, 0.4];
        let z = [0.0, -0.5];
        assert!(distance(&x, &x) < 1e-9);
        assert!((distance(&x, &y) - distance(&y, &x)).abs() < 1e-12);
        assert!(distance(&x, &y) > 0.0);
        // Triangle inequality.
        assert!(distance(&x, &z) <= distance(&x, &y) + distance(&y, &z) + 1e-12);
    }

    #[test]
    fn distance_from_origin_matches_closed_form() {
        // d(0, x) = 2 artanh(‖x‖)
        let x = [0.3, 0.4]; // norm 0.5
        let o = [0.0, 0.0];
        let expected = 2.0 * 0.5f64.atanh();
        assert!((distance(&o, &x) - expected).abs() < 1e-12);
    }

    #[test]
    fn mobius_add_identity_and_inverse() {
        let x = [0.2, -0.1];
        let zero = [0.0, 0.0];
        let mut out = [0.0; 2];
        mobius_add(&x, &zero, &mut out);
        assert!((out[0] - x[0]).abs() < 1e-12 && (out[1] - x[1]).abs() < 1e-12);
        // x ⊕ (−x) = 0
        let negx = [-0.2, 0.1];
        mobius_add(&x, &negx, &mut out);
        assert!(norm(&out) < 1e-12);
    }

    #[test]
    fn mobius_add_stays_in_ball() {
        let x = [0.9, 0.0];
        let y = [0.0, 0.9];
        let mut out = [0.0; 2];
        mobius_add(&x, &y, &mut out);
        assert!(norm(&out) < 1.0);
    }

    #[test]
    fn exp_map_zero_is_identity() {
        let x = [0.3, -0.2];
        let mut out = [0.0; 2];
        exp_map(&x, &[0.0, 0.0], &mut out);
        assert!((out[0] - x[0]).abs() < 1e-12);
    }

    #[test]
    fn exp_map_at_origin_direction() {
        // exp_0(η) = tanh(‖η‖/2) η/‖η‖ — collinear with η.
        let o = [0.0, 0.0];
        let eta = [0.6, 0.8];
        let mut out = [0.0; 2];
        exp_map(&o, &eta, &mut out);
        let n = norm(&out);
        assert!((n - (0.5f64).tanh()).abs() < 1e-12);
        assert!((out[0] / n - 0.6).abs() < 1e-9);
    }

    #[test]
    fn distance_grad_matches_finite_differences() {
        let x = [0.15, -0.35, 0.2];
        let y = [-0.4, 0.1, 0.05];
        let mut gx = vec![0.0; 3];
        let mut gy = vec![0.0; 3];
        distance_grad(&x, &y, 1.0, &mut gx, &mut gy);
        let (fx, fy) = fd_distance_grad(&x, &y);
        for i in 0..3 {
            assert!(
                (gx[i] - fx[i]).abs() < 1e-5,
                "gx[{i}]: {} vs {}",
                gx[i],
                fx[i]
            );
            assert!(
                (gy[i] - fy[i]).abs() < 1e-5,
                "gy[{i}]: {} vs {}",
                gy[i],
                fy[i]
            );
        }
    }

    #[test]
    fn rsgd_step_decreases_distance_to_target() {
        // Gradient descent on d_P(x, t)² should pull x toward t.
        let target = [0.5, 0.1];
        let mut x = vec![-0.3, -0.4];
        let before = distance(&x, &target);
        for _ in 0..50 {
            let mut gx = vec![0.0; 2];
            let mut gt = vec![0.0; 2];
            // d(d²)/dx = 2 d · dd/dx
            let d = distance(&x, &target);
            distance_grad(&x, &target, 2.0 * d, &mut gx, &mut gt);
            rsgd_step(&mut x, &gx, 0.05);
        }
        let after = distance(&x, &target);
        assert!(after < before * 0.5, "before={before} after={after}");
    }

    #[test]
    fn einstein_centroid_of_symmetric_points_is_origin() {
        let a = [0.4, 0.0];
        let b = [-0.4, 0.0];
        let mut out = [9.0, 9.0];
        einstein_centroid(&[&a, &b], &[1.0, 1.0], &mut out);
        assert!(norm(&out) < 1e-9);
    }

    #[test]
    fn einstein_centroid_single_point_is_identity() {
        let a = [0.3, -0.25];
        let mut out = [0.0, 0.0];
        einstein_centroid(&[&a], &[2.5], &mut out);
        assert!((out[0] - a[0]).abs() < 1e-9 && (out[1] - a[1]).abs() < 1e-9);
    }
}
