//! Property tests for the three hyperbolic model charts and their
//! conversions: random points of the Poincaré ball must survive
//! Poincaré ↔ Lorentz ↔ Klein round-trips (both the points themselves and
//! their pairwise distances, to 1e-9), Möbius addition must satisfy its
//! identity and left-cancellation laws, and the Einstein midpoint must
//! stay inside the Klein ball.
//!
//! Radii are capped at 0.9 so the generated points stay clear of the
//! `MAX_BALL_NORM` projection boundary — these laws are exact in the open
//! ball; clipping would silently repair violations.

use proptest::prelude::*;
use taxorec_geometry::{convert, klein, lorentz, poincare};

const DIM: usize = 3;
const TOL: f64 = 1e-9;

/// A point of the Poincaré ball with norm ≤ `max_radius`: a raw direction
/// from the cube is rescaled onto a sampled radius (degenerate directions
/// collapse to the origin, which every law must also satisfy).
fn ball_point(max_radius: f64) -> impl Strategy<Value = Vec<f64>> {
    (
        proptest::collection::vec(-1.0f64..1.0, DIM..(DIM + 1)),
        0.0f64..max_radius,
    )
        .prop_map(|(raw, radius)| {
            let norm = raw.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm < 1e-9 {
                vec![0.0; DIM]
            } else {
                raw.iter().map(|v| v / norm * radius).collect()
            }
        })
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn poincare_lorentz_round_trip_preserves_points(p in ball_point(0.9)) {
        let mut up = vec![0.0; DIM + 1];
        convert::poincare_to_lorentz(&p, &mut up);
        let mut back = vec![0.0; DIM];
        convert::lorentz_to_poincare(&up, &mut back);
        prop_assert!(
            max_abs_diff(&p, &back) < TOL,
            "poincare->lorentz->poincare drifted: {p:?} vs {back:?}"
        );
    }

    #[test]
    fn poincare_klein_round_trip_preserves_points(p in ball_point(0.9)) {
        let mut k = vec![0.0; DIM];
        convert::poincare_to_klein(&p, &mut k);
        let mut back = vec![0.0; DIM];
        convert::klein_to_poincare(&k, &mut back);
        prop_assert!(
            max_abs_diff(&p, &back) < TOL,
            "poincare->klein->poincare drifted: {p:?} vs {back:?}"
        );
    }

    #[test]
    fn full_chart_cycle_preserves_points(p in ball_point(0.9)) {
        // Poincaré → Lorentz → Klein (via the hyperboloid) → Poincaré.
        let mut up = vec![0.0; DIM + 1];
        convert::poincare_to_lorentz(&p, &mut up);
        let mut pk = vec![0.0; DIM];
        convert::lorentz_to_poincare(&up, &mut pk);
        let mut k = vec![0.0; DIM];
        convert::poincare_to_klein(&pk, &mut k);
        let mut up2 = vec![0.0; DIM + 1];
        convert::klein_to_lorentz(&k, &mut up2);
        let mut back = vec![0.0; DIM];
        convert::lorentz_to_poincare(&up2, &mut back);
        prop_assert!(
            max_abs_diff(&p, &back) < TOL,
            "full chart cycle drifted: {p:?} vs {back:?}"
        );
    }

    #[test]
    fn lorentz_distance_matches_poincare_distance(
        p in ball_point(0.9),
        q in ball_point(0.9),
    ) {
        let dp = poincare::distance(&p, &q);
        let mut up = vec![0.0; DIM + 1];
        let mut uq = vec![0.0; DIM + 1];
        convert::poincare_to_lorentz(&p, &mut up);
        convert::poincare_to_lorentz(&q, &mut uq);
        let dl = lorentz::distance(&up, &uq);
        prop_assert!(
            (dp - dl).abs() < TOL,
            "d_P = {dp} but d_L = {dl} after conversion"
        );
    }

    #[test]
    fn mobius_identity(p in ball_point(0.9)) {
        let zero = vec![0.0; DIM];
        let mut left = vec![0.0; DIM];
        let mut right = vec![0.0; DIM];
        poincare::mobius_add(&zero, &p, &mut left);
        poincare::mobius_add(&p, &zero, &mut right);
        prop_assert!(max_abs_diff(&left, &p) < TOL, "0 + p != p: {left:?}");
        prop_assert!(max_abs_diff(&right, &p) < TOL, "p + 0 != p: {right:?}");
    }

    #[test]
    fn mobius_left_cancellation(p in ball_point(0.65), q in ball_point(0.65)) {
        // (−p) ⊕ (p ⊕ q) = q — the gyrogroup left-cancellation law.
        let mut pq = vec![0.0; DIM];
        poincare::mobius_add(&p, &q, &mut pq);
        let neg_p: Vec<f64> = p.iter().map(|v| -v).collect();
        let mut back = vec![0.0; DIM];
        poincare::mobius_add(&neg_p, &pq, &mut back);
        prop_assert!(
            max_abs_diff(&back, &q) < TOL,
            "(-p) + (p + q) = {back:?} != q = {q:?}"
        );
    }

    #[test]
    fn mobius_inverse_is_zero(p in ball_point(0.9)) {
        let neg_p: Vec<f64> = p.iter().map(|v| -v).collect();
        let mut out = vec![0.0; DIM];
        poincare::mobius_add(&p, &neg_p, &mut out);
        prop_assert!(norm(&out) < TOL, "p + (-p) = {out:?} != 0");
    }

    #[test]
    fn einstein_midpoint_stays_inside_klein_ball(
        a in ball_point(0.9),
        b in ball_point(0.9),
        c in ball_point(0.9),
        w in (0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0),
    ) {
        // Convert the Poincaré samples into Klein coordinates (the chart
        // the Einstein midpoint is defined on), then average.
        let mut ka = vec![0.0; DIM];
        let mut kb = vec![0.0; DIM];
        let mut kc = vec![0.0; DIM];
        convert::poincare_to_klein(&a, &mut ka);
        convert::poincare_to_klein(&b, &mut kb);
        convert::poincare_to_klein(&c, &mut kc);
        let points: Vec<&[f64]> = vec![&ka, &kb, &kc];
        let weights = vec![w.0, w.1, w.2];
        let mut mid = vec![0.0; DIM];
        klein::einstein_midpoint(&points, &weights, &mut mid);
        let n = norm(&mid);
        prop_assert!(n < 1.0, "midpoint left the Klein ball: |m| = {n}");
        prop_assert!(mid.iter().all(|v| v.is_finite()), "midpoint not finite");
    }
}
