//! Property-based tests of the fused block kernels (`batch` module):
//! the batched Lorentz distance paths must agree with the scalar
//! reference — bit-for-bit on the shared summation order, and to 1e-12
//! in absolute terms — across the full numeric range the trainer
//! produces, including near-origin rows and rows at the radius clip.

use proptest::prelude::*;
use taxorec_geometry::batch::{
    fused_scores_block, fused_scores_multi, BlockCache, TagChannel, TagChannelMulti,
};
use taxorec_geometry::{lorentz, vecops};

/// Spatial part of the radius-clip boundary: training clips hyperboloid
/// rows to geodesic distance ≤ ~2.5 from the origin, i.e. spatial norm
/// up to `sinh(2.5) ≈ 6.05`.
const CLIP_SPATIAL_NORM: f64 = 6.05;

/// Strategy: one spatial point drawn from the trainer's numeric range —
/// uniform bulk points, near-origin points (norm ~1e-9), and points
/// sitting exactly on the radius-clip shell.
fn trainer_spatial(d: usize) -> impl Strategy<Value = Vec<f64>> {
    (0usize..3, proptest::collection::vec(-3.0f64..3.0, d)).prop_map(|(kind, bulk)| match kind {
        0 => bulk,
        1 => bulk.iter().map(|x| x * (1e-9 / 3.0)).collect(),
        _ => {
            let n = vecops::norm(&bulk);
            if n < 1e-9 {
                let mut v = vec![0.0; bulk.len()];
                v[0] = CLIP_SPATIAL_NORM;
                v
            } else {
                bulk.iter().map(|x| x / n * CLIP_SPATIAL_NORM).collect()
            }
        }
    })
}

/// Strategy: `rows` hyperboloid points, flattened row-major, covering
/// the same numeric range as [`trainer_spatial`].
fn lorentz_block(rows: usize, d: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(trainer_spatial(d), rows).prop_map(move |pts| {
        let mut flat = Vec::with_capacity(pts.len() * (d + 1));
        for p in &pts {
            flat.extend_from_slice(&lorentz::from_spatial(p));
        }
        flat
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn block_distances_match_scalar(
        anchor in trainer_spatial(6),
        block in lorentz_block(9, 6),
    ) {
        let ambient = 7;
        let rows = block.len() / ambient;
        let anchor = lorentz::from_spatial(&anchor);
        let cache = BlockCache::build(&block, ambient);

        let mut d = vec![0.0; rows];
        let mut dsq = vec![0.0; rows];
        cache.distance_block(&anchor, 0, rows, &mut d);
        cache.distance_sq_block(&anchor, 0, rows, &mut dsq);
        for i in 0..rows {
            let row = &block[i * ambient..(i + 1) * ambient];
            let sd = lorentz::distance(&anchor, row);
            let sdsq = lorentz::distance_sq(&anchor, row);
            // Same summation order per element ⇒ bit-identical, which
            // subsumes the 1e-12 tolerance the trainer relies on.
            prop_assert_eq!(d[i].to_bits(), sd.to_bits());
            prop_assert_eq!(dsq[i].to_bits(), sdsq.to_bits());
            prop_assert!((d[i] - sd).abs() <= 1e-12);
            prop_assert!(d[i].is_finite() && dsq[i] >= 0.0);
        }
    }

    #[test]
    fn fused_two_channel_scores_match_scalar(
        u_ir in trainer_spatial(6),
        u_tg in trainer_spatial(3),
        ir_block in lorentz_block(7, 6),
        tg_block in lorentz_block(7, 3),
        alpha in 0.0f64..2.0,
    ) {
        let rows = 7;
        let u_ir = lorentz::from_spatial(&u_ir);
        let u_tg = lorentz::from_spatial(&u_tg);
        let ir_cache = BlockCache::build(&ir_block, 7);
        let tg_cache = BlockCache::build(&tg_block, 4);

        let mut out = vec![0.0; rows];
        let mut scratch = vec![0.0; rows];
        fused_scores_block(
            &ir_cache,
            &u_ir,
            Some(TagChannel { cache: &tg_cache, anchor: &u_tg, alpha }),
            0,
            rows,
            &mut scratch,
            &mut out,
        );
        for i in 0..rows {
            let ir_row = &ir_block[i * 7..(i + 1) * 7];
            let tg_row = &tg_block[i * 4..(i + 1) * 4];
            let mut g = lorentz::distance_sq(&u_ir, ir_row);
            g += alpha * lorentz::distance_sq(&u_tg, tg_row);
            let expected = -g;
            prop_assert_eq!(out[i].to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn multi_anchor_fused_scores_match_scalar(
        u_irs in proptest::collection::vec(trainer_spatial(6), 6),
        u_tgs in proptest::collection::vec(trainer_spatial(3), 6),
        ir_block in lorentz_block(9, 6),
        tg_block in lorentz_block(9, 3),
        alpha0 in 0.0f64..2.0,
    ) {
        // 6 users exercises one full register-blocked group of 4 plus a
        // remainder of 2 inside the multi-anchor kernel.
        let rows = 9;
        let b = 6;
        let u_ir_pts: Vec<Vec<f64>> = u_irs.iter().map(|p| lorentz::from_spatial(p)).collect();
        let u_tg_pts: Vec<Vec<f64>> = u_tgs.iter().map(|p| lorentz::from_spatial(p)).collect();
        let anchors_ir: Vec<&[f64]> = u_ir_pts.iter().map(|p| p.as_slice()).collect();
        let anchors_tg: Vec<&[f64]> = u_tg_pts.iter().map(|p| p.as_slice()).collect();
        let alphas: Vec<f64> = (0..b).map(|u| alpha0 + 0.25 * u as f64).collect();
        let ir_cache = BlockCache::build(&ir_block, 7);
        let tg_cache = BlockCache::build(&tg_block, 4);

        let mut out = vec![0.0; b * rows];
        let mut scratch = vec![0.0; b * rows];
        fused_scores_multi(
            &ir_cache,
            &anchors_ir,
            Some(TagChannelMulti { cache: &tg_cache, anchors: &anchors_tg, alphas: &alphas }),
            0,
            rows,
            &mut scratch,
            &mut out,
        );
        for u in 0..b {
            for i in 0..rows {
                let ir_row = &ir_block[i * 7..(i + 1) * 7];
                let tg_row = &tg_block[i * 4..(i + 1) * 4];
                let mut g = lorentz::distance_sq(&u_ir_pts[u], ir_row);
                g += alphas[u] * lorentz::distance_sq(&u_tg_pts[u], tg_row);
                let expected = -g;
                prop_assert_eq!(out[u * rows + i].to_bits(), expected.to_bits());
                prop_assert!(out[u * rows + i].is_finite());
            }
        }
    }

    #[test]
    fn sub_block_ranges_match_scalar(
        anchor in trainer_spatial(4),
        block in lorentz_block(11, 4),
        split in 0usize..=11,
    ) {
        let ambient = 5;
        let anchor = lorentz::from_spatial(&anchor);
        let cache = BlockCache::build(&block, ambient);
        let mut lo_part = vec![0.0; split];
        let mut hi_part = vec![0.0; 11 - split];
        cache.distance_sq_block(&anchor, 0, split, &mut lo_part);
        cache.distance_sq_block(&anchor, split, 11, &mut hi_part);
        for (i, &v) in lo_part.iter().chain(hi_part.iter()).enumerate() {
            let row = &block[i * ambient..(i + 1) * ambient];
            prop_assert_eq!(v.to_bits(), lorentz::distance_sq(&anchor, row).to_bits());
        }
    }
}
