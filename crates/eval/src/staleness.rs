//! Quality-vs-staleness harness for the streaming-update loop
//! (DESIGN.md §17): prequential ("test, then learn") evaluation of a
//! model that is refreshed from an interaction stream every
//! `refresh_every` events.
//!
//! Each event is first *predicted* — does the current model generation
//! rank the observed item inside its top-K? — and only then becomes
//! training signal at the next refresh tick. Staleness at any event is
//! the number of events accepted since the generation answering the
//! query was built, which is exactly what the serving tier's
//! `serve.ingest.staleness` gauge measures: the harness quantifies the
//! recommendation-quality cost of letting that gauge grow.
//!
//! The harness is generic over the model through two closures, so it
//! drives anything from the in-process incremental fold
//! (`taxorec_core::incremental`) to a mock: `rank_for` queries the
//! current generation, `refresh` folds a slice of pending events into
//! the next one. `refresh_every = 0` disables refreshing — the
//! frozen-model baseline a streaming run is compared against.

/// One measurement bucket of a [`quality_vs_staleness`] run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StalenessPoint {
    /// Events evaluated up to and including this bucket.
    pub events: usize,
    /// Mean staleness (events accepted since the answering generation
    /// was built) over the bucket's queries.
    pub mean_staleness: f64,
    /// Events whose observed item the current generation ranked inside
    /// the top-K.
    pub hits: usize,
    /// Events it did not.
    pub misses: usize,
}

impl StalenessPoint {
    /// Fraction of this bucket's events the model ranked in its top-K.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The full trajectory of one prequential run.
#[derive(Clone, Debug)]
pub struct StalenessReport {
    /// Ranking cutoff used for hits.
    pub k: usize,
    /// Refresh tick in events (`0` = frozen model, never refreshed).
    pub refresh_every: usize,
    /// Per-bucket trajectory, in stream order.
    pub points: Vec<StalenessPoint>,
    /// Model refreshes performed.
    pub refreshes: usize,
}

impl StalenessReport {
    /// Hit rate over the whole stream.
    pub fn overall_hit_rate(&self) -> f64 {
        let (h, m) = self
            .points
            .iter()
            .fold((0usize, 0usize), |(h, m), p| (h + p.hits, m + p.misses));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// Runs `events` (stream-ordered `(user, item)` pairs) prequentially:
/// each event is scored against the *current* model generation via
/// `rank_for(user, k)` (a hit iff the observed item is in the returned
/// list), then — every `refresh_every` events — all pending events are
/// folded into the model via `refresh(pending)` and staleness resets.
/// Results are aggregated into `points` buckets of (roughly) equal
/// size.
///
/// `refresh_every = 0` never refreshes: the frozen baseline whose
/// staleness grows without bound. Comparing its report against a
/// refreshed run isolates the quality the incremental-update loop buys.
pub fn quality_vs_staleness<F, G>(
    events: &[(u32, u32)],
    k: usize,
    refresh_every: usize,
    points: usize,
    mut rank_for: F,
    mut refresh: G,
) -> StalenessReport
where
    F: FnMut(u32, usize) -> Vec<u32>,
    G: FnMut(&[(u32, u32)]),
{
    assert!(k > 0, "k must be positive");
    let bucket = (events.len() / points.max(1)).max(1);
    let mut report = StalenessReport {
        k,
        refresh_every,
        points: Vec::new(),
        refreshes: 0,
    };
    let mut pending_start = 0usize;
    let (mut hits, mut misses) = (0usize, 0usize);
    let mut staleness_sum = 0usize;
    for (i, &(user, item)) in events.iter().enumerate() {
        // Test…
        let top = rank_for(user, k);
        if top.iter().take(k).any(|&it| it == item) {
            hits += 1;
        } else {
            misses += 1;
        }
        staleness_sum += i - pending_start;
        // …then learn, on the tick.
        if refresh_every > 0 && (i + 1) % refresh_every == 0 {
            refresh(&events[pending_start..=i]);
            pending_start = i + 1;
            report.refreshes += 1;
        }
        let bucket_n = hits + misses;
        if bucket_n >= bucket || i + 1 == events.len() {
            report.points.push(StalenessPoint {
                events: i + 1,
                mean_staleness: staleness_sum as f64 / bucket_n.max(1) as f64,
                hits,
                misses,
            });
            hits = 0;
            misses = 0;
            staleness_sum = 0;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A drifting stream: each user's taste moves to a new item block
    /// halfway through, so a frozen model goes stale and a refreshed
    /// one follows.
    fn drifting_events() -> Vec<(u32, u32)> {
        let mut events = Vec::new();
        for round in 0..40u32 {
            for user in 0..5u32 {
                let block = if round < 20 { 0 } else { 100 };
                events.push((user, block + user * 3 + round % 3));
            }
        }
        events
    }

    /// The model under test: per-user recently-folded items, most
    /// recent first.
    fn harness(refresh_every: usize) -> impl FnMut(&[(u32, u32)]) -> StalenessReport {
        move |events: &[(u32, u32)]| {
            let prefs: std::rc::Rc<std::cell::RefCell<HashMap<u32, Vec<u32>>>> = Default::default();
            let prefs_q = std::rc::Rc::clone(&prefs);
            quality_vs_staleness(
                events,
                5,
                refresh_every,
                4,
                move |user, k| {
                    prefs_q
                        .borrow()
                        .get(&user)
                        .map(|v| v.iter().copied().take(k).collect())
                        .unwrap_or_default()
                },
                move |pending| {
                    let mut p = prefs.borrow_mut();
                    for &(user, item) in pending {
                        let v = p.entry(user).or_default();
                        v.retain(|&it| it != item);
                        v.insert(0, item);
                        v.truncate(8);
                    }
                },
            )
        }
    }

    #[test]
    fn refreshing_beats_the_frozen_baseline_on_a_drifting_stream() {
        let events = drifting_events();
        let frozen = harness(0)(&events);
        let fresh = harness(10)(&events);
        assert_eq!(frozen.refreshes, 0);
        assert_eq!(fresh.refreshes, events.len() / 10);
        assert_eq!(frozen.overall_hit_rate(), 0.0, "never learned anything");
        assert!(
            fresh.overall_hit_rate() > 0.5,
            "refreshed model should track the drift, got {}",
            fresh.overall_hit_rate()
        );
    }

    #[test]
    fn tighter_ticks_mean_lower_staleness_and_no_worse_quality() {
        let events = drifting_events();
        let coarse = harness(50)(&events);
        let tight = harness(5)(&events);
        let mean = |r: &StalenessReport| {
            r.points.iter().map(|p| p.mean_staleness).sum::<f64>() / r.points.len() as f64
        };
        assert!(
            mean(&tight) < mean(&coarse),
            "staleness should fall with the tick: {} vs {}",
            mean(&tight),
            mean(&coarse)
        );
        assert!(tight.overall_hit_rate() >= coarse.overall_hit_rate());
    }

    #[test]
    fn buckets_partition_the_stream_and_staleness_resets_on_refresh() {
        let events = drifting_events();
        let report = harness(10)(&events);
        let counted: usize = report.points.iter().map(|p| p.hits + p.misses).sum();
        assert_eq!(counted, events.len());
        assert!(report.points.iter().all(|p| p.mean_staleness < 10.0));
        let frozen = harness(0)(&events);
        let last = frozen.points.last().unwrap();
        assert!(
            last.mean_staleness > 100.0,
            "frozen staleness should keep growing, got {}",
            last.mean_staleness
        );
    }
}
