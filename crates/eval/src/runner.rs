//! Multi-seed experiment runner: trains a model several times with
//! different seeds on the same split and aggregates Recall/NDCG
//! mean ± std — the `x.xx±y.yy` cells of the paper's Table II.

use taxorec_data::{Dataset, Recommender, Split};

use crate::metrics::{evaluate, Evaluation};

/// Aggregated result of one (model, dataset) cell across seeds.
#[derive(Clone, Debug)]
pub struct CellStats {
    /// Model display name.
    pub model: String,
    /// Cutoffs.
    pub ks: Vec<usize>,
    /// Mean Recall@ks[i] across seeds (in percent).
    pub recall_mean: Vec<f64>,
    /// Std of Recall@ks[i] across seeds (in percent).
    pub recall_std: Vec<f64>,
    /// Mean NDCG@ks[i] across seeds (in percent).
    pub ndcg_mean: Vec<f64>,
    /// Std of NDCG@ks[i] across seeds (in percent).
    pub ndcg_std: Vec<f64>,
    /// Per-user evaluation of the *first* seed (for significance tests).
    pub first_eval: Evaluation,
    /// Mean `fit` wall time per seed, seconds.
    pub fit_secs_mean: f64,
    /// Mean evaluation wall time per seed, seconds.
    pub eval_secs_mean: f64,
}

impl CellStats {
    /// `recall±std` cell text (percent, 2 decimals) for cutoff index `i`.
    pub fn recall_cell(&self, i: usize) -> String {
        format!("{:.2}±{:.2}", self.recall_mean[i], self.recall_std[i])
    }

    /// `ndcg±std` cell text for cutoff index `i`.
    pub fn ndcg_cell(&self, i: usize) -> String {
        format!("{:.2}±{:.2}", self.ndcg_mean[i], self.ndcg_std[i])
    }
}

/// Trains `factory(seed)` for every seed, evaluates on the test split, and
/// aggregates.
pub fn run_cell(
    model_name: &str,
    factory: &dyn Fn(u64) -> Box<dyn Recommender>,
    dataset: &Dataset,
    split: &Split,
    ks: &[usize],
    seeds: &[u64],
) -> CellStats {
    assert!(!seeds.is_empty(), "need at least one seed");
    let fit_hist = taxorec_telemetry::histogram("eval.fit.duration");
    let eval_hist = taxorec_telemetry::histogram("eval.eval.duration");
    let mut recall_runs: Vec<Vec<f64>> = Vec::new();
    let mut ndcg_runs: Vec<Vec<f64>> = Vec::new();
    let mut first_eval = None;
    let mut fit_secs = 0.0;
    let mut eval_secs = 0.0;
    for &seed in seeds {
        let mut model = factory(seed);
        let t0 = std::time::Instant::now();
        model.fit(dataset, split);
        let fit_t = t0.elapsed().as_secs_f64();
        fit_hist.observe(fit_t);
        fit_secs += fit_t;
        let t1 = std::time::Instant::now();
        let eval = evaluate(model.as_ref(), split, ks);
        let eval_t = t1.elapsed().as_secs_f64();
        eval_hist.observe(eval_t);
        eval_secs += eval_t;
        taxorec_telemetry::sink::info(&format!(
            "{model_name} on {} seed {seed}: fit {fit_t:.2}s eval {eval_t:.2}s",
            dataset.name
        ));
        recall_runs.push((0..ks.len()).map(|i| 100.0 * eval.mean_recall(i)).collect());
        ndcg_runs.push((0..ks.len()).map(|i| 100.0 * eval.mean_ndcg(i)).collect());
        if first_eval.is_none() {
            first_eval = Some(eval);
        }
    }
    let (recall_mean, recall_std) = mean_std(&recall_runs, ks.len());
    let (ndcg_mean, ndcg_std) = mean_std(&ndcg_runs, ks.len());
    let stats = CellStats {
        model: model_name.to_string(),
        ks: ks.to_vec(),
        recall_mean,
        recall_std,
        ndcg_mean,
        ndcg_std,
        first_eval: first_eval.expect("at least one seed ran"),
        fit_secs_mean: fit_secs / seeds.len() as f64,
        eval_secs_mean: eval_secs / seeds.len() as f64,
    };
    emit_cell_summary(&stats, &dataset.name, seeds.len());
    stats
}

/// One JSONL line summarizing the whole cell (all seeds): model, dataset,
/// metric means, and wall time — the machine-readable counterpart of a
/// Table II cell.
fn emit_cell_summary(stats: &CellStats, dataset: &str, n_seeds: usize) {
    let mut line = String::with_capacity(192);
    line.push_str("{\"kind\":\"summary\",\"name\":\"eval.cell\",\"ts_ms\":");
    line.push_str(&taxorec_telemetry::sink::unix_ms().to_string());
    line.push_str(",\"model\":");
    taxorec_telemetry::json::push_str_escaped(&mut line, &stats.model);
    line.push_str(",\"dataset\":");
    taxorec_telemetry::json::push_str_escaped(&mut line, dataset);
    line.push_str(",\"n_seeds\":");
    line.push_str(&n_seeds.to_string());
    line.push_str(",\"ks\":[");
    for (i, k) in stats.ks.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&k.to_string());
    }
    line.push_str("],\"recall_mean\":[");
    for (i, v) in stats.recall_mean.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        taxorec_telemetry::json::push_f64(&mut line, *v);
    }
    line.push_str("],\"ndcg_mean\":[");
    for (i, v) in stats.ndcg_mean.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        taxorec_telemetry::json::push_f64(&mut line, *v);
    }
    line.push_str("],\"fit_secs_mean\":");
    taxorec_telemetry::json::push_f64(&mut line, stats.fit_secs_mean);
    line.push_str(",\"eval_secs_mean\":");
    taxorec_telemetry::json::push_f64(&mut line, stats.eval_secs_mean);
    line.push('}');
    taxorec_telemetry::sink::emit_json_line(&line);
}

fn mean_std(runs: &[Vec<f64>], width: usize) -> (Vec<f64>, Vec<f64>) {
    let n = runs.len() as f64;
    let mut mean = vec![0.0; width];
    for run in runs {
        for (m, v) in mean.iter_mut().zip(run) {
            *m += v / n;
        }
    }
    let mut std = vec![0.0; width];
    if runs.len() > 1 {
        for run in runs {
            for ((s, v), m) in std.iter_mut().zip(run).zip(&mean) {
                *s += (v - m) * (v - m) / (n - 1.0);
            }
        }
        for s in &mut std {
            *s = s.sqrt();
        }
    }
    (mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, Preset, Scale};

    /// Deterministic scorer whose quality depends on the seed parity —
    /// exercises the aggregation without heavy training.
    struct SeedToy {
        seed: u64,
        n_items: usize,
        split_test: Vec<Vec<u32>>,
    }

    impl Recommender for SeedToy {
        fn name(&self) -> &str {
            "SeedToy"
        }
        fn fit(&mut self, dataset: &Dataset, split: &Split) {
            self.n_items = dataset.n_items;
            self.split_test = split.test.clone();
        }
        fn scores_for_user(&self, user: u32) -> Vec<f64> {
            let mut s = vec![0.0; self.n_items];
            // Even seeds rank a test item first; odd seeds are random-ish.
            if self.seed.is_multiple_of(2) {
                if let Some(&v) = self.split_test[user as usize].first() {
                    s[v as usize] = 10.0;
                }
            } else {
                for (i, x) in s.iter_mut().enumerate() {
                    *x = ((user as usize * 31 + i * 17) % 101) as f64;
                }
            }
            s
        }
    }

    #[test]
    fn run_cell_aggregates_across_seeds() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let split = Split::standard(&d);
        let stats = run_cell(
            "SeedToy",
            &|seed| {
                Box::new(SeedToy {
                    seed,
                    n_items: 0,
                    split_test: Vec::new(),
                }) as Box<dyn Recommender>
            },
            &d,
            &split,
            &[10],
            &[0, 1, 2],
        );
        assert_eq!(stats.model, "SeedToy");
        assert!(stats.recall_mean[0] > 0.0);
        // Seeds differ ⇒ non-zero std.
        assert!(stats.recall_std[0] > 0.0);
        assert!(!stats.first_eval.users.is_empty());
        let cell = stats.recall_cell(0);
        assert!(cell.contains('±'), "{cell}");
    }

    #[test]
    fn single_seed_has_zero_std() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let split = Split::standard(&d);
        let stats = run_cell(
            "SeedToy",
            &|seed| {
                Box::new(SeedToy {
                    seed,
                    n_items: 0,
                    split_test: Vec::new(),
                }) as Box<dyn Recommender>
            },
            &d,
            &split,
            &[5, 10],
            &[2],
        );
        assert_eq!(stats.recall_std, vec![0.0, 0.0]);
    }
}
