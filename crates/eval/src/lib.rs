//! Evaluation harness for TaxoRec and its baselines: unsampled Recall@K /
//! NDCG@K (paper §V-A.2), the Wilcoxon signed-rank significance test
//! behind Table II's stars, a multi-seed experiment runner, and plain-text
//! table rendering.

pub mod metrics;
pub mod runner;
pub mod table;
pub mod wilcoxon;

pub use metrics::{evaluate, evaluate_valid, top_k, top_k_indices, Evaluation};
pub use runner::{run_cell, CellStats};
pub use table::{mark_best, TextTable};
pub use wilcoxon::{std_normal_cdf, wilcoxon_signed_rank, WilcoxonResult};
