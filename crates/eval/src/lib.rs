//! Evaluation harness for TaxoRec and its baselines: unsampled Recall@K /
//! NDCG@K (paper §V-A.2), the Wilcoxon signed-rank significance test
//! behind Table II's stars, a multi-seed experiment runner, plain-text
//! table rendering, and the retrieval-index recall/latency harness
//! (routed vs. exhaustive candidate generation).

pub mod metrics;
pub mod retrieval;
pub mod runner;
pub mod staleness;
pub mod table;
pub mod wilcoxon;

pub use metrics::{evaluate, evaluate_valid, top_k, top_k_indices, Evaluation};
pub use retrieval::{evaluate_retrieval, RetrievalEval};
pub use runner::{run_cell, CellStats};
pub use staleness::{quality_vs_staleness, StalenessPoint, StalenessReport};
pub use table::{mark_best, TextTable};
pub use wilcoxon::{std_normal_cdf, wilcoxon_signed_rank, WilcoxonResult};
