//! Full-ranking evaluation: Recall@K and NDCG@K (paper §V-A.2).
//!
//! The paper explicitly evaluates with *unsampled* metrics (following
//! Krichene & Rendle, KDD 2020): every non-training item is a candidate.
//! Training and validation items are masked out of the candidate set when
//! scoring the test partition.

use taxorec_data::{Recommender, Split};

/// Per-user metric values for one evaluation run, aligned with the `ks`
/// passed to [`evaluate`]. Only users with a non-empty target set appear.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Cutoffs the metrics were computed at.
    pub ks: Vec<usize>,
    /// `recall[i][j]` = Recall@ks[j] of the i-th evaluated user.
    pub recall: Vec<Vec<f64>>,
    /// `ndcg[i][j]` = NDCG@ks[j] of the i-th evaluated user.
    pub ndcg: Vec<Vec<f64>>,
    /// The evaluated user ids (parallel to `recall`/`ndcg`).
    pub users: Vec<u32>,
}

impl Evaluation {
    /// Mean Recall@ks[k_idx] over evaluated users.
    pub fn mean_recall(&self, k_idx: usize) -> f64 {
        mean(self.recall.iter().map(|r| r[k_idx]))
    }

    /// Mean NDCG@ks[k_idx] over evaluated users.
    pub fn mean_ndcg(&self, k_idx: usize) -> f64 {
        mean(self.ndcg.iter().map(|r| r[k_idx]))
    }

    /// Per-user Recall@ks[k_idx] values (for significance testing).
    pub fn user_recall(&self, k_idx: usize) -> Vec<f64> {
        self.recall.iter().map(|r| r[k_idx]).collect()
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for v in it {
        total += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Evaluates a fitted model on the test partition of `split` at the given
/// cutoffs, masking train and validation items from the candidates.
pub fn evaluate(model: &dyn Recommender, split: &Split, ks: &[usize]) -> Evaluation {
    evaluate_on(model, split, &split.test, ks)
}

/// Evaluates against the validation partition (hyperparameter tuning),
/// masking only training items.
pub fn evaluate_valid(model: &dyn Recommender, split: &Split, ks: &[usize]) -> Evaluation {
    evaluate_users(model, split, &split.valid, ks, false)
}

fn evaluate_on(
    model: &dyn Recommender,
    split: &Split,
    targets_by_user: &[Vec<u32>],
    ks: &[usize],
) -> Evaluation {
    evaluate_users(model, split, targets_by_user, ks, true)
}

/// Users per parallel evaluation job: each job scores and ranks a block of
/// users, so per-job overhead is negligible next to full-ranking cost.
const EVAL_USER_CHUNK: usize = 32;

/// Shared worker behind [`evaluate`] and [`evaluate_valid`]: scores each
/// user with a non-empty target set, masks seen items (`mask_valid` adds
/// the validation partition to the mask), and ranks the rest. Users are
/// independent, so the loop fans out across the [`taxorec_parallel`] pool
/// in blocks of [`EVAL_USER_CHUNK`] — each job makes **one**
/// [`Recommender::top_k_block`] call for its block, so models with
/// multi-anchor kernels stream the item side once per block instead of
/// once per user and rank each catalogue chunk while its scores are
/// cache-hot, never materializing full score rows. Per-user rankings and
/// metrics are bit-identical to the sequential per-user loop for any
/// `TAXOREC_THREADS`, and results are collected in user order.
fn evaluate_users(
    model: &dyn Recommender,
    split: &Split,
    targets_by_user: &[Vec<u32>],
    ks: &[usize],
    mask_valid: bool,
) -> Evaluation {
    let users: Vec<u32> = targets_by_user
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(u, _)| u as u32)
        .collect();
    let kmax = ks.iter().copied().max().unwrap_or(0);
    let n_chunks = users.len().div_ceil(EVAL_USER_CHUNK);
    let chunk_rows = taxorec_parallel::par_map("eval.users", n_chunks, |c| {
        let lo = c * EVAL_USER_CHUNK;
        let block = &users[lo..(lo + EVAL_USER_CHUNK).min(users.len())];
        let masked: Vec<std::collections::HashSet<u32>> = block
            .iter()
            .map(|&user| {
                let u = user as usize;
                let mut m: std::collections::HashSet<u32> =
                    split.train[u].iter().copied().collect();
                if mask_valid {
                    m.extend(split.valid[u].iter().copied());
                }
                m
            })
            .collect();
        let tops = model.top_k_block(block, kmax, &|pos, item| masked[pos].contains(&item));
        block
            .iter()
            .zip(&tops)
            .map(|(&user, top)| user_metrics(top, &targets_by_user[user as usize], ks))
            .collect::<Vec<_>>()
    });
    let mut eval = Evaluation {
        ks: ks.to_vec(),
        recall: Vec::with_capacity(users.len()),
        ndcg: Vec::with_capacity(users.len()),
        users,
    };
    for (recall_row, ndcg_row) in chunk_rows.into_iter().flatten() {
        eval.recall.push(recall_row);
        eval.ndcg.push(ndcg_row);
    }
    eval
}

/// Recall@k / NDCG@k rows of one user from their already-ranked top
/// `max(ks)` list (masked items never appear in `top` — the ranking call
/// excluded them).
fn user_metrics(top: &[(u32, f64)], targets: &[u32], ks: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let target_set: std::collections::HashSet<u32> = targets.iter().copied().collect();
    let mut recall_row = Vec::with_capacity(ks.len());
    let mut ndcg_row = Vec::with_capacity(ks.len());
    for &k in ks {
        let hits: Vec<usize> = top
            .iter()
            .take(k)
            .enumerate()
            .filter(|&(_, &(item, _))| target_set.contains(&item))
            .map(|(rank, _)| rank)
            .collect();
        let recall = hits.len() as f64 / targets.len() as f64;
        let dcg: f64 = hits
            .iter()
            .map(|&rank| 1.0 / ((rank + 2) as f64).log2())
            .sum();
        let ideal: f64 = (0..k.min(targets.len()))
            .map(|i| 1.0 / ((i + 2) as f64).log2())
            .sum();
        let ndcg = if ideal > 0.0 { dcg / ideal } else { 0.0 };
        recall_row.push(recall);
        ndcg_row.push(ndcg);
    }
    (recall_row, ndcg_row)
}

/// Heap-based partial top-K selection: the `k` best `(item, score)` pairs
/// of `scores`, best first (descending score, deterministic tie-breaking
/// by lower index), skipping indices for which `exclude` returns true.
///
/// `O(n log k)` without ever materializing a full sorted vector — the one
/// ranking primitive shared by the offline evaluation loop below and the
/// online query engine in `taxorec-serve`. The implementation lives in
/// [`taxorec_data::select_top_k`] so the [`Recommender::top_k_for_user`]
/// default method uses the identical code path.
pub fn top_k(scores: &[f64], k: usize, exclude: impl FnMut(usize) -> bool) -> Vec<(u32, f64)> {
    taxorec_data::select_top_k(scores, k, exclude)
}

/// Indices of the `k` largest scores, descending (deterministic
/// tie-breaking by index). Thin wrapper over [`top_k`] without exclusion.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    top_k(scores, k, |_| false)
        .into_iter()
        .map(|(i, _)| i as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{Dataset, Interaction};

    /// Oracle scorer: prefers items in a fixed list.
    struct Fixed {
        ranking: Vec<u32>,
        n_items: usize,
    }

    impl Recommender for Fixed {
        fn name(&self) -> &str {
            "Fixed"
        }
        fn fit(&mut self, _: &Dataset, _: &Split) {}
        fn scores_for_user(&self, _: u32) -> Vec<f64> {
            let mut s = vec![0.0; self.n_items];
            for (i, &v) in self.ranking.iter().enumerate() {
                s[v as usize] = 1000.0 - i as f64;
            }
            s
        }
    }

    fn split_with(train: Vec<Vec<u32>>, valid: Vec<Vec<u32>>, test: Vec<Vec<u32>>) -> Split {
        Split { train, valid, test }
    }

    #[test]
    fn top_k_indices_empty_and_zero_k() {
        assert!(top_k_indices(&[], 5).is_empty());
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn top_k_indices_orders_descending() {
        let scores = [1.0, 9.0, 3.0, 7.0];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 10), vec![1, 3, 2, 0]);
    }

    #[test]
    fn top_k_exclusion_matches_neg_infinity_masking() {
        // The exclusion predicate must rank identically to the old
        // approach of overwriting masked scores with -∞ and sorting.
        let scores: Vec<f64> = (0..200).map(|i| ((i * 73) % 197) as f64).collect();
        let masked: Vec<usize> = (0..200).step_by(7).collect();
        let mut old = scores.clone();
        for &m in &masked {
            old[m] = f64::NEG_INFINITY;
        }
        let via_mask: Vec<usize> = top_k_indices(&old, 20);
        let via_exclude: Vec<usize> = top_k(&scores, 20, |i| i.is_multiple_of(7))
            .iter()
            .map(|&(i, _)| i as usize)
            .collect();
        assert_eq!(via_mask, via_exclude);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let model = Fixed {
            ranking: vec![3, 4],
            n_items: 10,
        };
        let split = split_with(vec![vec![0]], vec![vec![]], vec![vec![3, 4]]);
        let e = evaluate(&model, &split, &[2, 5]);
        assert_eq!(e.users, vec![0]);
        assert_eq!(e.mean_recall(0), 1.0);
        assert!((e.mean_ndcg(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_scores_zero() {
        let model = Fixed {
            ranking: vec![1, 2],
            n_items: 10,
        };
        let split = split_with(vec![vec![0]], vec![vec![]], vec![vec![9]]);
        let e = evaluate(&model, &split, &[2]);
        assert_eq!(e.mean_recall(0), 0.0);
        assert_eq!(e.mean_ndcg(0), 0.0);
    }

    #[test]
    fn partial_hit_recall_fraction() {
        // Test set {5, 6}; top-2 hits only 5 ⇒ recall 0.5.
        let model = Fixed {
            ranking: vec![5, 1],
            n_items: 10,
        };
        let split = split_with(vec![vec![]], vec![vec![]], vec![vec![5, 6]]);
        let e = evaluate(&model, &split, &[2]);
        assert!((e.mean_recall(0) - 0.5).abs() < 1e-12);
        // DCG = 1/log2(2) = 1, IDCG = 1 + 1/log2(3).
        let expected = 1.0 / (1.0 + 1.0 / 3f64.log2());
        assert!((e.mean_ndcg(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn train_and_valid_items_are_masked() {
        // Item 5 would top the list but is in train; 6 in valid; so the
        // effective ranking starts at 7.
        let model = Fixed {
            ranking: vec![5, 6, 7],
            n_items: 10,
        };
        let split = split_with(vec![vec![5]], vec![vec![6]], vec![vec![7]]);
        let e = evaluate(&model, &split, &[1]);
        assert_eq!(e.mean_recall(0), 1.0);
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let model = Fixed {
            ranking: vec![1],
            n_items: 5,
        };
        let split = split_with(
            vec![vec![], vec![]],
            vec![vec![], vec![]],
            vec![vec![], vec![1]],
        );
        let e = evaluate(&model, &split, &[1]);
        assert_eq!(e.users, vec![1]);
    }

    #[test]
    fn ndcg_position_sensitivity() {
        // Hit at rank 1 beats hit at rank 3.
        let first = Fixed {
            ranking: vec![9, 1, 2],
            n_items: 10,
        };
        let third = Fixed {
            ranking: vec![1, 2, 9],
            n_items: 10,
        };
        let split = split_with(vec![vec![]], vec![vec![]], vec![vec![9]]);
        let e1 = evaluate(&first, &split, &[3]);
        let e3 = evaluate(&third, &split, &[3]);
        assert!(e1.mean_ndcg(0) > e3.mean_ndcg(0));
        assert_eq!(e1.mean_recall(0), e3.mean_recall(0));
    }

    #[test]
    fn validation_evaluation_masks_only_train() {
        let model = Fixed {
            ranking: vec![5, 6],
            n_items: 10,
        };
        let split = split_with(vec![vec![5]], vec![vec![6]], vec![vec![]]);
        let e = evaluate_valid(&model, &split, &[1]);
        assert_eq!(e.mean_recall(0), 1.0);
    }

    #[test]
    fn interaction_struct_is_reexported() {
        // Keeps the test module honest about the data dependency.
        let _ = Interaction {
            user: 0,
            item: 0,
            ts: 0,
        };
    }
}
