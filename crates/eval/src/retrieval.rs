//! Recall/latency harness for the hierarchical retrieval index: runs the
//! same query set through [`TaxoIndex::search`] (beam-routed, sub-linear)
//! and [`TaxoIndex::search_exact`] (exhaustive over the same permuted
//! caches) and reports recall@K, per-query latency percentiles, and the
//! exhaustive-to-routed speedup.
//!
//! Both paths score candidates with identical per-item arithmetic, so
//! recall here is purely a *routing* property: a missed item means the
//! beam never visited its cluster, never that it was scored differently.
//! With `beam >= n_leaves` the router visits every leaf and the harness
//! must report recall 1.0 and bit-identical rankings — the equivalence
//! tests pin that invariant.

use std::time::Instant;

use taxorec_retrieval::{RetrievalMode, TaxoIndex};

/// What one [`evaluate_retrieval`] run measured.
#[derive(Clone, Debug)]
pub struct RetrievalEval {
    /// The candidate-generation mode measured against the exact path.
    pub mode: RetrievalMode,
    /// Number of queries run through both paths.
    pub queries: usize,
    /// `(K, recall@K)` for each requested cutoff: the fraction of each
    /// exact top-K list the routed path recovered, averaged over queries.
    pub recall_at: Vec<(usize, f64)>,
    /// Median exhaustive per-query latency, milliseconds.
    pub exact_p50_ms: f64,
    /// 99th-percentile exhaustive per-query latency, milliseconds.
    pub exact_p99_ms: f64,
    /// Median routed per-query latency, milliseconds.
    pub routed_p50_ms: f64,
    /// 99th-percentile routed per-query latency, milliseconds.
    pub routed_p99_ms: f64,
    /// Mean exhaustive latency over mean routed latency.
    pub speedup: f64,
    /// Mean items fused-scored per routed query (the exact path always
    /// scores the whole catalogue).
    pub mean_candidates: f64,
    /// Whether every routed ranking equalled its exact counterpart bit
    /// for bit (guaranteed when the beam covers all leaves).
    pub bit_identical: bool,
}

/// Sorted-latency percentile (nearest-rank on the sorted sample).
fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[pos] * 1e3
}

/// Runs `n_queries` user anchors through the routed and exhaustive paths
/// and scores the routed results against the exhaustive ground truth.
///
/// `u_ir` holds one Lorentz anchor row per query (`ambient_ir` wide);
/// `tag` carries the tag-channel anchors and per-query weights
/// `(u_tg, ambient_tg, alphas)` and must be `Some` iff the index has a
/// tag channel. `ks` are the recall cutoffs; rankings are compared at
/// the largest cutoff. [`RetrievalMode::Exact`] measures the exhaustive
/// path against itself (recall 1.0 by construction) — the baseline row
/// for latency tables.
pub fn evaluate_retrieval(
    index: &TaxoIndex,
    u_ir: &[f64],
    ambient_ir: usize,
    tag: Option<(&[f64], usize, &[f64])>,
    mode: RetrievalMode,
    ks: &[usize],
) -> RetrievalEval {
    assert!(ambient_ir > 1, "Lorentz anchors need >= 2 coordinates");
    assert_eq!(u_ir.len() % ambient_ir, 0, "ragged anchor matrix");
    let n_queries = u_ir.len() / ambient_ir;
    if let Some((u_tg, ambient_tg, alphas)) = tag {
        assert_eq!(u_tg.len(), n_queries * ambient_tg, "ragged tag anchors");
        assert_eq!(alphas.len(), n_queries, "alphas/queries mismatch");
    }
    let k_eval = ks.iter().copied().max().unwrap_or(10).max(1);
    let beam = match mode {
        RetrievalMode::Exact => 0,
        RetrievalMode::Beam(b) => b,
    };

    let mut exact_secs = Vec::with_capacity(n_queries);
    let mut routed_secs = Vec::with_capacity(n_queries);
    let mut hits = vec![0usize; ks.len()];
    let mut candidates = 0usize;
    let mut bit_identical = true;
    for q in 0..n_queries {
        let anchor = &u_ir[q * ambient_ir..(q + 1) * ambient_ir];
        let q_tag = tag.map(|(u_tg, ambient_tg, alphas)| {
            (&u_tg[q * ambient_tg..(q + 1) * ambient_tg], alphas[q])
        });

        let t0 = Instant::now();
        let truth = index.search_exact(anchor, q_tag, k_eval, &|_| false);
        exact_secs.push(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let routed = match mode {
            RetrievalMode::Exact => index.search_exact(anchor, q_tag, k_eval, &|_| false),
            RetrievalMode::Beam(_) => {
                let (top, stats) = index.search(anchor, q_tag, beam, k_eval, &|_| false);
                candidates += stats.candidates;
                top
            }
        };
        routed_secs.push(t1.elapsed().as_secs_f64());
        if matches!(mode, RetrievalMode::Exact) {
            candidates += index.n_items();
        }

        bit_identical &= routed.len() == truth.len()
            && routed
                .iter()
                .zip(truth.iter())
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
        for (ki, &k) in ks.iter().enumerate() {
            let want = &truth[..k.min(truth.len())];
            let got = &routed[..k.min(routed.len())];
            hits[ki] += want
                .iter()
                .filter(|(v, _)| got.iter().any(|(g, _)| g == v))
                .count();
        }
    }

    let recall_at = ks
        .iter()
        .zip(&hits)
        .map(|(&k, &h)| {
            // Denominator: the attainable list size per query.
            let denom: usize = (0..n_queries).map(|_| k.min(index.n_items())).sum();
            (
                k,
                if denom == 0 {
                    1.0
                } else {
                    h as f64 / denom as f64
                },
            )
        })
        .collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let speedup = mean(&exact_secs) / mean(&routed_secs).max(1e-12);
    exact_secs.sort_by(f64::total_cmp);
    routed_secs.sort_by(f64::total_cmp);
    RetrievalEval {
        mode,
        queries: n_queries,
        recall_at,
        exact_p50_ms: percentile_ms(&exact_secs, 0.50),
        exact_p99_ms: percentile_ms(&exact_secs, 0.99),
        routed_p50_ms: percentile_ms(&routed_secs, 0.50),
        routed_p99_ms: percentile_ms(&routed_secs, 0.99),
        speedup,
        mean_candidates: candidates as f64 / n_queries.max(1) as f64,
        bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_embeddings, EmbedConfig};
    use taxorec_retrieval::{IndexConfig, ItemEmbeddings, TaxoIndex};

    fn fixture() -> (TaxoIndex, taxorec_data::SynthEmbeddings) {
        let emb = generate_embeddings(&EmbedConfig {
            n_items: 2000,
            n_users: 64,
            ..EmbedConfig::default()
        });
        let items = ItemEmbeddings {
            v_ir: &emb.v_ir,
            ambient_ir: emb.ambient_ir,
            v_tg: Some(&emb.v_tg),
            ambient_tg: emb.ambient_tg,
        };
        let config = IndexConfig {
            max_leaf: 64,
            ..IndexConfig::default()
        };
        let index = TaxoIndex::build(&items, None, &emb.item_tags, &config).expect("build");
        (index, emb)
    }

    #[test]
    fn full_beam_reports_perfect_recall_and_bit_identity() {
        let (index, emb) = fixture();
        let eval = evaluate_retrieval(
            &index,
            &emb.u_ir,
            emb.ambient_ir,
            Some((&emb.u_tg, emb.ambient_tg, &emb.alphas)),
            RetrievalMode::Beam(index.n_leaves()),
            &[10, 50],
        );
        assert!(eval.bit_identical, "full beam must replay the exact path");
        for &(k, r) in &eval.recall_at {
            assert_eq!(r, 1.0, "recall@{k}");
        }
        assert_eq!(eval.queries, 64);
        assert_eq!(eval.mean_candidates, index.n_items() as f64);
    }

    #[test]
    fn narrow_beam_scores_fewer_candidates_with_high_recall() {
        let (index, emb) = fixture();
        let eval = evaluate_retrieval(
            &index,
            &emb.u_ir,
            emb.ambient_ir,
            Some((&emb.u_tg, emb.ambient_tg, &emb.alphas)),
            RetrievalMode::Beam(0),
            &[10],
        );
        assert!(
            eval.mean_candidates < index.n_items() as f64 / 2.0,
            "beam scored {} of {} items",
            eval.mean_candidates,
            index.n_items()
        );
        let (_, recall10) = eval.recall_at[0];
        assert!(
            recall10 >= 0.9,
            "planted clusters should route well, got {recall10}"
        );
    }

    #[test]
    fn exact_mode_is_its_own_baseline() {
        let (index, emb) = fixture();
        let eval = evaluate_retrieval(
            &index,
            &emb.u_ir,
            emb.ambient_ir,
            Some((&emb.u_tg, emb.ambient_tg, &emb.alphas)),
            RetrievalMode::Exact,
            &[10],
        );
        assert!(eval.bit_identical);
        assert_eq!(eval.recall_at, vec![(10, 1.0)]);
    }
}
