//! Wilcoxon signed-rank test — the significance test behind the stars in
//! the paper's Table II ("significant according to the Wilcoxon
//! signed-rank test on 5% confidence level").
//!
//! Normal approximation with tie correction; adequate for the dozens-to-
//! thousands of paired per-user metric samples produced by the harness.

/// Result of a two-sided Wilcoxon signed-rank test on paired samples.
#[derive(Clone, Copy, Debug)]
pub struct WilcoxonResult {
    /// Signed-rank statistic `W⁺` (sum of ranks of positive differences).
    pub w_plus: f64,
    /// Number of non-zero paired differences actually used.
    pub n_used: usize,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
    /// Standardized statistic.
    pub z: f64,
}

impl WilcoxonResult {
    /// True when the difference is significant at the given level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.n_used >= 6 && self.p_value < alpha
    }
}

/// Two-sided Wilcoxon signed-rank test of `a` vs `b` (paired).
///
/// Zero differences are dropped (the standard Wilcoxon treatment); tied
/// absolute differences receive average ranks with the variance tie
/// correction.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| d.abs() > 1e-15)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult {
            w_plus: 0.0,
            n_used: 0,
            p_value: 1.0,
            z: 0.0,
        };
    }
    diffs.sort_by(|x, y| x.abs().partial_cmp(&y.abs()).unwrap());
    // Average ranks over ties; accumulate the tie correction term Σ(t³−t).
    let mut ranks = vec![0.0; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[j + 1].abs() - diffs[i].abs()).abs() < 1e-15 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| *r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if var <= 0.0 {
        return WilcoxonResult {
            w_plus,
            n_used: n,
            p_value: 1.0,
            z: 0.0,
        };
    }
    // Continuity correction.
    let z = (w_plus - mean - 0.5 * (w_plus - mean).signum()) / var.sqrt();
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    WilcoxonResult {
        w_plus,
        n_used: n,
        p_value: p.clamp(0.0, 1.0),
        z,
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ≈ 1.5e−7 — ample for significance thresholds).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n_used, 0);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn clearly_better_sample_is_significant() {
        let a: Vec<f64> = (0..50).map(|i| 1.0 + i as f64 * 0.01).collect();
        let b: Vec<f64> = (0..50).map(|i| 0.5 + i as f64 * 0.01).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.significant(0.05), "p = {}", r.p_value);
        assert!(r.z > 0.0);
    }

    #[test]
    fn symmetric_noise_is_not_significant() {
        // Alternating ±δ differences cancel.
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..40)
            .map(|i| i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(!r.significant(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn erf_matches_reference_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn handles_heavy_ties() {
        let a = vec![1.0; 30];
        let b: Vec<f64> = (0..30).map(|i| if i < 25 { 0.5 } else { 1.5 }).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_value.is_finite());
        assert!(r.significant(0.05));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}
