//! Plain-text table rendering in the layout of the paper's tables.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Shorter rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut out = String::new();
            for i in 0..widths.len() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Marks the maximum of `values` with `**bold**`-style asterisk framing
/// and the runner-up with underscores, as the paper's Table II does with
/// boldface/underline. Returns formatted copies of `cells`.
pub fn mark_best(values: &[f64], cells: &[String]) -> Vec<String> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap());
    let mut out: Vec<String> = cells.to_vec();
    if let Some(&best) = order.first() {
        out[best] = format!("*{}*", out[best]);
    }
    if let Some(&second) = order.get(1) {
        out[second] = format!("_{}_", out[second]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Method", "Recall@10"]);
        t.row(vec!["BPRMF".into(), "3.18".into()]);
        t.row(vec!["TaxoRec".into(), "6.33".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].starts_with("TaxoRec"));
        // Columns aligned: "Recall@10" and both values start at the same
        // character offset.
        let col = lines[0].find("Recall@10").unwrap();
        assert_eq!(lines[2].find("3.18").unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn mark_best_frames_top_two() {
        let values = [1.0, 5.0, 3.0];
        let cells: Vec<String> = ["1.0", "5.0", "3.0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let marked = mark_best(&values, &cells);
        assert_eq!(marked[1], "*5.0*");
        assert_eq!(marked[2], "_3.0_");
        assert_eq!(marked[0], "1.0");
    }
}
