//! Property-based tests of the evaluation machinery: ranking-metric
//! bounds and monotonicity, top-k correctness, and Wilcoxon sanity.

use proptest::prelude::*;
use taxorec_eval::{std_normal_cdf, top_k_indices, wilcoxon_signed_rank};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn top_k_returns_the_k_largest(
        scores in proptest::collection::vec(-100.0f64..100.0, 1..50),
        k in 1usize..60,
    ) {
        let top = top_k_indices(&scores, k);
        let k_eff = k.min(scores.len());
        prop_assert_eq!(top.len(), k_eff);
        // Sorted descending.
        for w in top.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
        // Every excluded score ≤ the smallest included one.
        let floor = scores[*top.last().unwrap()];
        for (i, &s) in scores.iter().enumerate() {
            if !top.contains(&i) {
                prop_assert!(s <= floor);
            }
        }
        // No duplicates.
        let mut sorted = top.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k_eff);
    }

    #[test]
    fn wilcoxon_p_value_in_unit_interval(
        a in proptest::collection::vec(-10.0f64..10.0, 2..40),
        noise in proptest::collection::vec(-1.0f64..1.0, 40),
    ) {
        let b: Vec<f64> = a.iter().zip(&noise).map(|(x, n)| x + n).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.w_plus >= 0.0);
        prop_assert!(r.n_used <= a.len());
    }

    #[test]
    fn wilcoxon_is_antisymmetric(
        a in proptest::collection::vec(-10.0f64..10.0, 6..30),
        shift in 0.1f64..3.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let ab = wilcoxon_signed_rank(&a, &b);
        let ba = wilcoxon_signed_rank(&b, &a);
        // Same p-value, opposite z sign.
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!(ab.z <= 0.0 && ba.z >= 0.0);
    }

    #[test]
    fn normal_cdf_is_monotone_and_bounded(x in -6.0f64..6.0, dx in 0.001f64..2.0) {
        let c1 = std_normal_cdf(x);
        let c2 = std_normal_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c2 >= c1 - 1e-7);
        // Symmetry.
        prop_assert!((std_normal_cdf(x) + std_normal_cdf(-x) - 1.0).abs() < 1e-6);
    }
}
