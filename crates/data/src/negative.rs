//! Negative sampling for the triplet losses (paper Eq. 18 samples
//! `(u, v_p) ∈ I` against `(u, v_q) ∉ I`).

use rand::rngs::StdRng;
use rand::RngExt;

/// Uniform negative sampler over items, excluding each user's training
/// positives.
pub struct NegativeSampler {
    n_items: usize,
    /// Per-user *sorted* positive lists.
    positives: Vec<Vec<u32>>,
}

impl NegativeSampler {
    /// Creates a sampler from per-user positive item lists (need not be
    /// sorted; they are sorted internally).
    pub fn new(n_items: usize, positives: Vec<Vec<u32>>) -> Self {
        let mut positives = positives;
        for list in &mut positives {
            list.sort_unstable();
        }
        Self { n_items, positives }
    }

    /// True when `item` is a recorded positive for `user`.
    pub fn is_positive(&self, user: u32, item: u32) -> bool {
        self.positives[user as usize].binary_search(&item).is_ok()
    }

    /// Samples one item uniformly from the user's non-positive items.
    ///
    /// Falls back to a uniform item after 100 rejections (only reachable
    /// when a user has interacted with almost the whole catalogue).
    pub fn sample(&self, user: u32, rng: &mut StdRng) -> u32 {
        for _ in 0..100 {
            let v = rng.random_range(0..self.n_items) as u32;
            if !self.is_positive(user, v) {
                return v;
            }
        }
        rng.random_range(0..self.n_items) as u32
    }

    /// Samples `k` negatives for a user (with replacement across draws).
    pub fn sample_many(&self, user: u32, k: usize, rng: &mut StdRng) -> Vec<u32> {
        (0..k).map(|_| self.sample(user, rng)).collect()
    }

    /// Number of items in the catalogue.
    pub fn n_items(&self) -> usize {
        self.n_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn never_returns_a_positive_when_possible() {
        let s = NegativeSampler::new(10, vec![vec![9, 1, 5]]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = s.sample(0, &mut rng);
            assert!(![1u32, 5, 9].contains(&v));
            assert!(v < 10);
        }
    }

    #[test]
    fn is_positive_uses_sorted_search() {
        let s = NegativeSampler::new(5, vec![vec![3, 0]]);
        assert!(s.is_positive(0, 0));
        assert!(s.is_positive(0, 3));
        assert!(!s.is_positive(0, 2));
    }

    #[test]
    fn saturated_user_falls_back() {
        // User has every item: the sampler must still terminate.
        let s = NegativeSampler::new(3, vec![vec![0, 1, 2]]);
        let mut rng = StdRng::seed_from_u64(1);
        let v = s.sample(0, &mut rng);
        assert!(v < 3);
    }

    #[test]
    fn sample_many_length() {
        let s = NegativeSampler::new(100, vec![vec![]]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(s.sample_many(0, 17, &mut rng).len(), 17);
    }

    #[test]
    fn deterministic_under_seed() {
        let s = NegativeSampler::new(50, vec![vec![1, 2, 3]]);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(s.sample_many(0, 20, &mut a), s.sample_many(0, 20, &mut b));
    }
}
