//! Synthetic benchmark generator replacing the paper's four datasets.
//!
//! The real datasets (Ciao, Amazon-CD, Amazon-Book, Yelp) are not available
//! offline and are far beyond CPU-reproduction scale, so we generate
//! datasets that preserve every property the paper's evaluation exercises
//! (see DESIGN.md §5):
//!
//! 1. **A planted tag taxonomy** — a rooted tree with preset branching;
//!    items carry the tag path of one leaf (with dropout and noise),
//!    matching the paper's observation that items are tagged at several
//!    granularities (e.g. *Hand Roll* → `<Asian food>`, `<Japanese food>`,
//!    `<Sushi>`).
//! 2. **Mixed tag-driven / tag-irrelevant preferences** — each user blends
//!    an affinity for one or two taxonomy subtrees with a latent
//!    collaborative factor, mirroring the paper's motivation for modeling
//!    both tag-relevant and tag-irrelevant embeddings (§IV-D).
//! 3. **Popularity skew and controlled sparsity** — the four presets order
//!    their densities and tag-hierarchy depths the same way Table I does
//!    (Ciao densest / fewest tags, Yelp sparsest / deepest hierarchy).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::{Dataset, Interaction};
use crate::truth::TagTree;

/// Which of the paper's four benchmark datasets to imitate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Ciao: smallest, densest, only 28 flat-ish tags (depth 2).
    Ciao,
    /// Amazon CDs & Vinyl: medium, sparse, moderate tag count.
    AmazonCd,
    /// Amazon Books: large, medium density, deeper hierarchy.
    AmazonBook,
    /// Yelp: largest, sparsest, most tags and deepest hierarchy.
    Yelp,
}

impl Preset {
    /// All four presets in the paper's Table I order.
    pub const ALL: [Preset; 4] = [
        Preset::Ciao,
        Preset::AmazonCd,
        Preset::AmazonBook,
        Preset::Yelp,
    ];

    /// Dataset display name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Ciao => "Ciao",
            Preset::AmazonCd => "Amazon-CD",
            Preset::AmazonBook => "Amazon-Book",
            Preset::Yelp => "Yelp",
        }
    }
}

/// Generation scale: trade fidelity against runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few dozen users — unit/integration tests.
    Tiny,
    /// Hundreds of users — the benchmark harness default.
    Bench,
    /// Thousands of users — closer-to-paper overnight runs.
    Full,
}

/// Full configuration of the generator. Use [`SynthConfig::preset`] for the
/// paper-shaped defaults; every knob is public for ablations.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Dataset display name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Children per taxonomy level; `branching.len()` is the tree depth.
    /// E.g. `[4, 6]` yields 4 top-level tags with 6 children each (28 tags).
    pub branching: Vec<usize>,
    /// Mean interactions per user (geometric-ish, min 3).
    pub mean_interactions: f64,
    /// Weight β of tag-driven preference vs. latent collaborative signal.
    pub tag_affinity: f64,
    /// Latent collaborative dimensionality.
    pub latent_dim: usize,
    /// Probability of dropping a non-leaf path tag from an item.
    pub tag_dropout: f64,
    /// Probability of adding one random unrelated tag to an item.
    pub noise_tag_prob: f64,
    /// Fraction of users whose interactions ignore tags entirely (the
    /// paper's "Mary" case, §IV-D: users whose behaviour is not driven by
    /// item tags). Their draws come purely from the collaborative /
    /// popularity background, which gives them naturally diverse tag
    /// profiles and therefore low α_u under Eq. 16.
    pub tag_indifferent_frac: f64,
    /// Zipf-like popularity exponent (0 = uniform).
    pub popularity_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Paper-shaped configuration for a preset at a scale.
    pub fn preset(preset: Preset, scale: Scale) -> Self {
        let (u, i) = match preset {
            Preset::Ciao => (400, 600),
            Preset::AmazonCd => (600, 800),
            Preset::AmazonBook => (800, 1000),
            Preset::Yelp => (1000, 1200),
        };
        let f = match scale {
            Scale::Tiny => 0.12,
            Scale::Bench => 1.0,
            Scale::Full => 4.0,
        };
        let n_users = ((u as f64 * f) as usize).max(24);
        let n_items = ((i as f64 * f) as usize).max(40);
        // Mean interactions chosen to reproduce Table I's density ordering
        // (Ciao ≈ 5× Yelp, Book ≈ 2× Yelp, CD ≈ 1.6× Yelp).
        let mean_interactions = match preset {
            Preset::Ciao => 14.0,
            Preset::AmazonCd => 7.0,
            Preset::AmazonBook => 10.0,
            Preset::Yelp => 6.5,
        };
        let branching = match preset {
            Preset::Ciao => vec![4, 6],          // 28 tags, depth 2
            Preset::AmazonCd => vec![5, 11],     // 60 tags, depth 2
            Preset::AmazonBook => vec![5, 4, 3], // 85 tags, depth 3
            Preset::Yelp => vec![4, 3, 3, 2],    // 124 tags, depth 4
        };
        Self {
            name: format!("{}-synth", preset.name()),
            n_users,
            n_items,
            branching,
            mean_interactions,
            tag_affinity: 0.65,
            latent_dim: 8,
            tag_dropout: 0.25,
            noise_tag_prob: 0.15,
            tag_indifferent_frac: 0.3,
            popularity_skew: 0.6,
            seed: 7 + preset as u64,
        }
    }

    /// Total number of tags implied by `branching`.
    pub fn n_tags(&self) -> usize {
        let mut total = 0;
        let mut level = 1;
        for &b in &self.branching {
            level *= b;
            total += level;
        }
        total
    }
}

/// Generates a dataset from a configuration. Deterministic for a fixed
/// config (including seed).
pub fn generate(config: &SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (tree, names) = build_tree(&config.branching);
    let n_tags = tree.n_tags();
    let children = tree.children();
    let leaves: Vec<u32> = (0..n_tags as u32)
        .filter(|&t| children[t as usize].is_empty())
        .collect();
    assert!(!leaves.is_empty(), "taxonomy must have leaves");

    // --- Items: a leaf, its tag path (with dropout), popularity ------------
    let mut item_leaf = Vec::with_capacity(config.n_items);
    let mut item_tags: Vec<Vec<u32>> = Vec::with_capacity(config.n_items);
    let mut popularity = Vec::with_capacity(config.n_items);
    for v in 0..config.n_items {
        let leaf = leaves[rng.random_range(0..leaves.len())];
        item_leaf.push(leaf);
        let mut tags = vec![leaf];
        for a in tree.ancestors(leaf) {
            if rng.random::<f64>() >= config.tag_dropout {
                tags.push(a);
            }
        }
        if rng.random::<f64>() < config.noise_tag_prob {
            tags.push(rng.random_range(0..n_tags) as u32);
        }
        tags.sort_unstable();
        tags.dedup();
        item_tags.push(tags);
        // Zipf-like popularity by item rank.
        popularity.push(1.0 / (1.0 + v as f64).powf(config.popularity_skew));
    }

    // --- Latent collaborative factors --------------------------------------
    let gauss = |rng: &mut StdRng| -> f64 {
        // Box–Muller from two uniforms; adequate and dependency-free.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    // Flat row-major factor matrices: one allocation per side instead of
    // one `Vec` per user/item — at the 1M-item scale the nested form's
    // per-row headers and heap fragmentation dominated the actual data.
    // The draw order (row-major) is unchanged, so seeded datasets are
    // byte-identical to the nested-layout era.
    let latent = |rng: &mut StdRng, n: usize, d: usize| -> Vec<f64> {
        (0..n * d).map(|_| gauss(rng) * 0.7).collect()
    };
    let d = config.latent_dim;
    let user_latent = latent(&mut rng, config.n_users, d);
    let item_latent = latent(&mut rng, config.n_items, d);

    // --- Users: one or two "home" subtrees + interaction sampling ----------
    //
    // Each interaction is drawn by a two-stage mixture: with probability
    // `tag_affinity` from the user's home-subtree item pools (primary pool
    // preferred 3:1 over the secondary), otherwise from the whole
    // catalogue. Within a pool, items are accepted proportionally to a
    // blend of the collaborative latent score and popularity. The mixture
    // form keeps the *fraction* of tag-driven interactions equal to
    // `tag_affinity` regardless of catalogue size — an additive blend
    // would let the thousandfold-larger background pool drown the signal.
    let mut interactions = Vec::new();
    let all_items: Vec<u32> = (0..config.n_items as u32).collect();
    // Subtree item pools, memoized per home tag: users share a small tag
    // vocabulary, so computing each pool once turns the former
    // O(n_users · n_items) scan into O(n_tags · n_items) worst case (and
    // in practice only the homes actually drawn are materialized). Pool
    // contents don't depend on evaluation order, and building them makes
    // no RNG draws, so the generated dataset is unchanged.
    let mut pool_cache: Vec<Option<std::rc::Rc<Vec<u32>>>> = vec![None; n_tags];
    let mut pool_of = |home: u32| -> std::rc::Rc<Vec<u32>> {
        let slot = &mut pool_cache[home as usize];
        if let Some(pool) = slot {
            return pool.clone();
        }
        let pool = std::rc::Rc::new(
            (0..config.n_items as u32)
                .filter(|&v| {
                    let leaf = item_leaf[v as usize];
                    leaf == home || tree.is_ancestor(home, leaf)
                })
                .collect::<Vec<u32>>(),
        );
        *slot = Some(pool.clone());
        pool
    };
    #[allow(clippy::needless_range_loop)] // `u` is also the interaction's user id
    for u in 0..config.n_users {
        let tag_driven = rng.random::<f64>() >= config.tag_indifferent_frac;
        let affinity = if tag_driven { config.tag_affinity } else { 0.0 };
        let home1 = rng.random_range(0..n_tags) as u32;
        let home2 = rng.random_range(0..n_tags) as u32;
        let pool1 = pool_of(home1);
        let pool2 = pool_of(home2);
        let n_u = sample_interaction_count(config.mean_interactions, &mut rng).min(config.n_items);
        let mut chosen: Vec<u32> = Vec::with_capacity(n_u);
        let mut chosen_set: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut tries = 0usize;
        while chosen.len() < n_u && tries < 200 * n_u {
            tries += 1;
            let r = rng.random::<f64>();
            let pool: &[u32] = if r < 0.75 * affinity && !pool1.is_empty() {
                &pool1
            } else if r < affinity && !pool2.is_empty() {
                &pool2
            } else {
                &all_items
            };
            let v = pool[rng.random_range(0..pool.len())];
            // Rejection step: accept ∝ collaborative fit × popularity.
            let collab = sigmoid(dot(
                &user_latent[u * d..(u + 1) * d],
                &item_latent[v as usize * d..(v as usize + 1) * d],
            ));
            let w = (0.3 + 0.7 * collab) * (0.3 + 0.7 * popularity[v as usize]);
            if rng.random::<f64>() < w && chosen_set.insert(v) {
                chosen.push(v);
            }
        }
        // Random temporal order: drawn order must not correlate with
        // affinity, or the temporal test split would hold out each user's
        // weakest picks.
        for i in (1..chosen.len()).rev() {
            let j = rng.random_range(0..=i);
            chosen.swap(i, j);
        }
        for (pos, &v) in chosen.iter().enumerate() {
            interactions.push(Interaction {
                user: u as u32,
                item: v,
                ts: pos as i64,
            });
        }
    }

    let dataset = Dataset {
        name: config.name.clone(),
        n_users: config.n_users,
        n_items: config.n_items,
        n_tags,
        interactions,
        item_tags,
        tag_names: names,
        taxonomy_truth: Some(tree),
    };
    debug_assert_eq!(dataset.validate(), Ok(()));
    dataset
}

/// Convenience: generate one of the paper's four datasets at a scale.
pub fn generate_preset(preset: Preset, scale: Scale) -> Dataset {
    generate(&SynthConfig::preset(preset, scale))
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Geometric-ish interaction count with mean ≈ `mean`, floored at 3 so the
/// 60/20/20 split leaves at least one item per partition for most users.
fn sample_interaction_count(mean: f64, rng: &mut StdRng) -> usize {
    let p = 1.0 / mean.max(1.0);
    let mut n = 0usize;
    while n < 500 && rng.random::<f64>() > p {
        n += 1;
    }
    n.max(3)
}

/// Themed vocabulary for readable tag names (used by the interpretability
/// case studies, Table V / Fig. 6).
const TOP_NAMES: [&str; 8] = [
    "Food",
    "Books",
    "Health",
    "Music",
    "Beauty & Spas",
    "Technology",
    "Sports",
    "Home Services",
];
const MID_NAMES: [&str; 12] = [
    "Asian",
    "Classical",
    "Fitness",
    "Jazz",
    "Salons",
    "Software",
    "Outdoor",
    "Repair",
    "Modern",
    "Vintage",
    "Wellness",
    "Craft",
];
const LEAF_NAMES: [&str; 16] = [
    "Sushi",
    "Poetry",
    "Yoga",
    "Guitar",
    "Makeup",
    "Web Development",
    "Climbing",
    "Plumbing",
    "Ramen",
    "Essays",
    "Pilates",
    "Violin",
    "Skincare",
    "Databases",
    "Cycling",
    "Roofing",
];

/// Builds the planted tree level by level and assigns readable names.
/// Shared with the embedding-level generator (`synth_embed`).
pub(crate) fn build_tree(branching: &[usize]) -> (TagTree, Vec<String>) {
    assert!(!branching.is_empty(), "taxonomy needs at least one level");
    let mut parent: Vec<Option<u32>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut prev_level: Vec<u32> = Vec::new();
    for (depth, &b) in branching.iter().enumerate() {
        let mut this_level = Vec::new();
        let parents: Vec<Option<u32>> = if depth == 0 {
            vec![None; b]
        } else {
            prev_level
                .iter()
                .flat_map(|&p| std::iter::repeat_n(Some(p), b))
                .collect()
        };
        for (i, p) in parents.into_iter().enumerate() {
            let id = parent.len() as u32;
            parent.push(p);
            let name = match depth {
                0 => TOP_NAMES[i % TOP_NAMES.len()].to_string(),
                1 => format!(
                    "{} {}",
                    MID_NAMES[(id as usize) % MID_NAMES.len()],
                    names[p.unwrap() as usize]
                ),
                _ => format!(
                    "{} ({})",
                    LEAF_NAMES[(id as usize) % LEAF_NAMES.len()],
                    names[p.unwrap() as usize]
                ),
            };
            names.push(name);
            this_level.push(id);
        }
        prev_level = this_level;
    }
    (TagTree::from_parents(parent), names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_tag_counts_match_branching() {
        assert_eq!(SynthConfig::preset(Preset::Ciao, Scale::Bench).n_tags(), 28);
        assert_eq!(
            SynthConfig::preset(Preset::AmazonCd, Scale::Bench).n_tags(),
            60
        );
        assert_eq!(
            SynthConfig::preset(Preset::AmazonBook, Scale::Bench).n_tags(),
            85
        );
        assert_eq!(
            SynthConfig::preset(Preset::Yelp, Scale::Bench).n_tags(),
            124
        );
    }

    #[test]
    fn generated_dataset_is_valid() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        assert_eq!(d.validate(), Ok(()));
        assert!(d.taxonomy_truth.is_some());
        assert_eq!(d.n_tags, 28);
        assert!(d.interactions.len() >= d.n_users * 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_preset(Preset::AmazonCd, Scale::Tiny);
        let b = generate_preset(Preset::AmazonCd, Scale::Tiny);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.item_tags, b.item_tags);
    }

    #[test]
    fn different_seeds_differ() {
        let mut c1 = SynthConfig::preset(Preset::Ciao, Scale::Tiny);
        let mut c2 = c1.clone();
        c1.seed = 1;
        c2.seed = 2;
        assert_ne!(generate(&c1).interactions, generate(&c2).interactions);
    }

    #[test]
    fn items_carry_hierarchical_tags() {
        let d = generate_preset(Preset::Yelp, Scale::Tiny);
        let tree = d.taxonomy_truth.as_ref().unwrap();
        // Most items should carry more than one tag (a path), and the tags
        // of an item should mostly be ancestor-related.
        let multi = d.item_tags.iter().filter(|t| t.len() >= 2).count();
        assert!(
            multi * 2 > d.n_items,
            "at least half the items have tag paths"
        );
        let mut related = 0usize;
        let mut pairs = 0usize;
        for tags in &d.item_tags {
            for i in 0..tags.len() {
                for j in 0..tags.len() {
                    if i != j {
                        pairs += 1;
                        if tree.is_ancestor(tags[i], tags[j]) || tree.is_ancestor(tags[j], tags[i])
                        {
                            related += 1;
                        }
                    }
                }
            }
        }
        assert!(
            related as f64 > 0.5 * pairs as f64,
            "tag co-occurrences are mostly hierarchical"
        );
    }

    #[test]
    fn density_ordering_matches_table1() {
        let d: Vec<f64> = Preset::ALL
            .iter()
            .map(|&p| generate_preset(p, Scale::Tiny).stats().density_pct)
            .collect();
        // Ciao densest; Yelp sparsest; Book denser than CD.
        assert!(
            d[0] > d[2] && d[2] > d[1] && d[1] > d[3],
            "densities: {d:?}"
        );
    }

    #[test]
    fn tag_names_are_readable() {
        let d = generate_preset(Preset::AmazonBook, Scale::Tiny);
        assert!(d.tag_names.iter().all(|n| !n.is_empty()));
        // Depth-0 names come from the themed bank.
        assert!(TOP_NAMES.contains(&d.tag_names[0].as_str()));
    }

    #[test]
    fn users_prefer_their_home_subtree() {
        // Strong tag affinity ⇒ a user's interacted items should
        // concentrate on few subtrees relative to random choice.
        let mut cfg = SynthConfig::preset(Preset::Ciao, Scale::Tiny);
        cfg.tag_affinity = 0.95;
        let d = generate(&cfg);
        let tree = d.taxonomy_truth.as_ref().unwrap();
        let by_user = d.interactions_by_user();
        // Measure the mean number of distinct top-level ancestors per user.
        let mut total_roots = 0.0;
        for events in &by_user {
            let mut roots: Vec<u32> = events
                .iter()
                .flat_map(|e| d.item_tags[e.item as usize].iter())
                .map(|&t| *tree.ancestors(t).last().unwrap_or(&t))
                .collect();
            roots.sort_unstable();
            roots.dedup();
            total_roots += roots.len() as f64;
        }
        let mean_roots = total_roots / by_user.len() as f64;
        assert!(
            mean_roots < 3.5,
            "users concentrate on few subtrees, got {mean_roots}"
        );
    }
}
