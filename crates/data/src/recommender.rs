//! The common interface every recommender in this workspace implements —
//! TaxoRec itself and all 14 baselines — so the evaluation harness can
//! treat them uniformly. Also home of the shared heap-based partial
//! top-K selection that both offline evaluation and online serving rank
//! with.

use std::collections::BinaryHeap;

use crate::dataset::Dataset;
use crate::split::Split;

/// Heap entry ordered so that the `BinaryHeap` maximum is the *worst*
/// candidate: lower score first, then higher index. Scores are compared
/// with `total_cmp`, giving a deterministic total order even for ±0.0 and
/// NaN (NaN ranks below -∞, so poisoned scores sink instead of spreading).
#[derive(Debug)]
struct RankEntry {
    score: f64,
    idx: u32,
}

impl PartialEq for RankEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for RankEntry {}

impl PartialOrd for RankEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.idx.cmp(&other.idx))
    }
}

/// The `k` best entries of `scores` as `(index, score)` pairs, best first
/// (descending score, ties broken by lower index), skipping every index
/// for which `exclude` returns true.
///
/// Partial selection over a bounded min-heap: `O(n log k)` time and
/// `O(k)` extra space — a full sorted copy of the score vector is never
/// materialized, which is what makes million-item catalogues servable.
/// Shared by [`Recommender::top_k_for_user`], the evaluation harness
/// (`taxorec-eval`), and the online query engine (`taxorec-serve`).
pub fn select_top_k(
    scores: &[f64],
    k: usize,
    mut exclude: impl FnMut(usize) -> bool,
) -> Vec<(u32, f64)> {
    let mut acc = TopKAccumulator::new(k);
    for (i, &score) in scores.iter().enumerate() {
        if !exclude(i) {
            acc.push(i as u32, score);
        }
    }
    acc.into_sorted()
}

/// Incremental form of [`select_top_k`]: candidates are offered one at a
/// time via [`TopKAccumulator::push`] instead of scanned from a full
/// score slice.
///
/// **Order independence.** Candidates are ranked by a *total* order —
/// descending score under `total_cmp`, ties broken by ascending item id;
/// item ids are unique, so no two candidates compare equal. The
/// accumulator maintains the invariant "heap = the `k` least entries of
/// everything offered so far" (a push either displaces the current worst
/// or changes nothing), and the `k` least of a set under a total order do
/// not depend on the order the set was enumerated in. Offering every
/// `(idx, score)` pair exactly once — in any order, any chunking,
/// interleaved across catalogue ranges — therefore yields the same
/// `into_sorted()` result as one [`select_top_k`] pass, bit for bit and
/// tie for tie. This is what lets block-scoring paths rank each catalogue
/// chunk while its scores are still cache-hot, and lets the retrieval
/// index push candidates cluster by cluster in routing order, while both
/// stay exactly comparable against the exhaustive scan.
pub struct TopKAccumulator {
    heap: BinaryHeap<RankEntry>,
    k: usize,
}

impl TopKAccumulator {
    /// An empty accumulator that retains the best `k` candidates.
    pub fn new(k: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    /// Offers one candidate. Each `idx` must be offered at most once;
    /// arrival order is otherwise free — the retained set (and the
    /// tie-breaking contract: equal scores rank lower index first) is
    /// insertion-order independent. See the type-level docs.
    #[inline]
    pub fn push(&mut self, idx: u32, score: f64) {
        if self.k == 0 {
            return;
        }
        let entry = RankEntry { score, idx };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if entry < *self.heap.peek().expect("non-empty heap") {
            // Better than the current worst of the top-k: replace it.
            self.heap.pop();
            self.heap.push(entry);
        }
    }

    /// The accumulated top-K as `(index, score)` pairs, best first.
    pub fn into_sorted(self) -> Vec<(u32, f64)> {
        // Ascending by `Ord` = best first (the ordering is inverted).
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.idx, e.score))
            .collect()
    }
}

/// A trainable top-N recommender.
///
/// `Sync` is a supertrait so the evaluation harness can score users in
/// parallel against a shared `&dyn Recommender`; scoring is read-only.
pub trait Recommender: Sync {
    /// Display name used in result tables (e.g. `"TaxoRec"`, `"BPRMF"`).
    fn name(&self) -> &str;

    /// Trains on the training partition of `split`. Implementations must
    /// not look at validation or test items.
    fn fit(&mut self, dataset: &Dataset, split: &Split);

    /// Preference scores of `user` for every item (index = item id);
    /// **higher means better**. Metric-learning models return negated
    /// distances. Only valid after [`Recommender::fit`].
    fn scores_for_user(&self, user: u32) -> Vec<f64>;

    /// Writes [`Recommender::scores_for_user`] into a caller-provided
    /// buffer (cleared first), so hot loops can reuse one allocation
    /// across users instead of materializing a fresh `Vec` per call.
    ///
    /// The default delegates to `scores_for_user`. Implementations with a
    /// buffer-oriented scoring path (fused kernels, preallocated caches)
    /// override this and make `scores_for_user` the delegating wrapper
    /// instead; both directions must produce identical values.
    fn scores_into(&self, user: u32, out: &mut Vec<f64>) {
        let scores = self.scores_for_user(user);
        out.clear();
        out.extend_from_slice(&scores);
    }

    /// Scores a block of users in one call: on return `out` holds
    /// `users.len()` equal-length score rows back to back, user-major —
    /// `out[k·n .. (k+1)·n]` is `users[k]`'s score vector, with `n`
    /// recoverable as `out.len() / users.len()`.
    ///
    /// The default clears `out` and appends [`Recommender::scores_for_user`]
    /// row by row. Models with batched kernels override this to amortize
    /// item-side memory traffic across the block (it also backs the
    /// default [`Recommender::top_k_block`] ranking); every override must
    /// keep each user's row bit-identical to `scores_into` for that user.
    fn scores_block_into(&self, users: &[u32], out: &mut Vec<f64>) {
        out.clear();
        for &u in users {
            let s = self.scores_for_user(u);
            out.extend_from_slice(&s);
        }
    }

    /// The `k` best items of every user in `users` as `(item, score)`
    /// pairs, best first per user, skipping items for which
    /// `exclude(pos, item)` returns true (`pos` indexes into `users`).
    ///
    /// The default scores the block with
    /// [`Recommender::scores_block_into`] and ranks each row with
    /// [`select_top_k`]. Models with chunked batch kernels override this
    /// to rank each catalogue chunk through a [`TopKAccumulator`] while
    /// its scores are cache-hot, never materializing full score rows;
    /// the accumulator contract guarantees the override returns exactly
    /// the default's ranking for identical scores.
    fn top_k_block(
        &self,
        users: &[u32],
        k: usize,
        exclude: &dyn Fn(usize, u32) -> bool,
    ) -> Vec<Vec<(u32, f64)>> {
        if users.is_empty() {
            return Vec::new();
        }
        let mut scores = Vec::new();
        self.scores_block_into(users, &mut scores);
        let n = scores.len() / users.len();
        (0..users.len())
            .map(|pos| {
                select_top_k(&scores[pos * n..(pos + 1) * n], k, |i| {
                    exclude(pos, i as u32)
                })
            })
            .collect()
    }

    /// The user's `k` best items as `(item, score)` pairs, best first
    /// (deterministic tie-breaking by lower item id).
    ///
    /// The default implementation scores every item via
    /// [`Recommender::scores_for_user`] and partially selects with
    /// [`select_top_k`] — the single ranking contract shared by offline
    /// evaluation and online serving. Implementations with a smarter
    /// index (e.g. pre-partitioned candidate sets) may override it, but
    /// must preserve the ordering contract.
    fn top_k_for_user(&self, user: u32, k: usize) -> Vec<(u32, f64)> {
        select_top_k(&self.scores_for_user(user), k, |_| false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial popularity recommender, doubling as a trait smoke test
    /// and a sanity-floor baseline for integration tests.
    pub struct Popularity {
        counts: Vec<f64>,
    }

    impl Popularity {
        pub fn new() -> Self {
            Self { counts: Vec::new() }
        }
    }

    impl Recommender for Popularity {
        fn name(&self) -> &str {
            "Popularity"
        }

        fn fit(&mut self, dataset: &Dataset, split: &Split) {
            self.counts = vec![0.0; dataset.n_items];
            for items in &split.train {
                for &v in items {
                    self.counts[v as usize] += 1.0;
                }
            }
        }

        fn scores_for_user(&self, _user: u32) -> Vec<f64> {
            self.counts.clone()
        }
    }

    #[test]
    fn select_top_k_orders_and_breaks_ties_by_index() {
        let scores = [1.0, 9.0, 3.0, 9.0, 7.0];
        assert_eq!(
            select_top_k(&scores, 3, |_| false),
            vec![(1, 9.0), (3, 9.0), (4, 7.0)]
        );
        // k larger than the candidate set returns everything, ordered.
        assert_eq!(
            select_top_k(&scores, 10, |_| false)
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>(),
            vec![1, 3, 4, 2, 0]
        );
    }

    #[test]
    fn select_top_k_respects_exclusion() {
        let scores = [5.0, 4.0, 3.0, 2.0];
        let out = select_top_k(&scores, 2, |i| i == 0 || i == 2);
        assert_eq!(out, vec![(1, 4.0), (3, 2.0)]);
    }

    #[test]
    fn select_top_k_edge_cases() {
        assert!(select_top_k(&[], 3, |_| false).is_empty());
        assert!(select_top_k(&[1.0], 0, |_| false).is_empty());
        assert!(select_top_k(&[1.0, 2.0], 5, |_| true).is_empty());
        // Matches a full sort on a pseudo-random vector.
        let scores: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let mut full: Vec<usize> = (0..scores.len()).collect();
        full.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
        let got: Vec<usize> = select_top_k(&scores, 25, |_| false)
            .iter()
            .map(|&(i, _)| i as usize)
            .collect();
        assert_eq!(got, full[..25]);
    }

    #[test]
    fn accumulator_chunked_matches_single_pass() {
        // Pseudo-random scores with deliberate ties; feeding them in
        // arbitrary chunkings must reproduce one select_top_k pass
        // exactly, including tie-breaking by index.
        let scores: Vec<f64> = (0..300).map(|i| ((i * 53) % 17) as f64).collect();
        let expect = select_top_k(&scores, 12, |i| i % 7 == 0);
        for chunk in [1usize, 5, 64, 300] {
            let mut acc = TopKAccumulator::new(12);
            let mut lo = 0;
            while lo < scores.len() {
                let hi = (lo + chunk).min(scores.len());
                for (i, &s) in scores[lo..hi].iter().enumerate() {
                    if (lo + i) % 7 != 0 {
                        acc.push((lo + i) as u32, s);
                    }
                }
                lo = hi;
            }
            assert_eq!(acc.into_sorted(), expect);
        }
        // k = 0 stays empty.
        let mut acc = TopKAccumulator::new(0);
        acc.push(3, 1.0);
        assert!(acc.into_sorted().is_empty());
    }

    #[test]
    fn accumulator_is_insertion_order_independent() {
        // Heavy score ties (only 7 distinct values over 400 candidates)
        // pushed in ascending, descending, strided, and pseudo-shuffled
        // orders must all reproduce the ascending-order select_top_k
        // ranking exactly — this is the contract the approximate
        // retrieval path relies on when it pushes candidates cluster by
        // cluster in routing order.
        let scores: Vec<f64> = (0..400).map(|i| ((i * 31) % 7) as f64).collect();
        let expect = select_top_k(&scores, 20, |_| false);

        let n = scores.len();
        let ascending: Vec<usize> = (0..n).collect();
        let descending: Vec<usize> = (0..n).rev().collect();
        // Stride by a unit mod n to visit every index exactly once.
        let strided: Vec<usize> = (0..n).map(|i| (i * 129) % n).collect();
        // Deterministic Fisher-Yates with a tiny LCG.
        let mut shuffled = ascending.clone();
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }

        for order in [&ascending, &descending, &strided, &shuffled] {
            let mut acc = TopKAccumulator::new(20);
            for &i in order.iter() {
                acc.push(i as u32, scores[i]);
            }
            assert_eq!(acc.into_sorted(), expect);
        }
    }

    #[test]
    fn accumulator_ties_rank_lower_index_first_in_any_order() {
        // All-equal scores: the retained set must be the k lowest ids,
        // regardless of push order.
        for order in [[4u32, 2, 0, 3, 1], [0, 1, 2, 3, 4], [3, 4, 1, 0, 2]] {
            let mut acc = TopKAccumulator::new(3);
            for idx in order {
                acc.push(idx, 1.5);
            }
            assert_eq!(acc.into_sorted(), vec![(0, 1.5), (1, 1.5), (2, 1.5)]);
        }
    }

    #[test]
    fn default_top_k_block_matches_per_user_selection() {
        let d = Dataset {
            name: "t".into(),
            n_users: 2,
            n_items: 4,
            n_tags: 0,
            interactions: vec![
                crate::dataset::Interaction {
                    user: 0,
                    item: 2,
                    ts: 0,
                },
                crate::dataset::Interaction {
                    user: 1,
                    item: 1,
                    ts: 0,
                },
            ],
            item_tags: vec![vec![]; 4],
            tag_names: vec![],
            taxonomy_truth: None,
        };
        let s = Split::temporal(&d, 1.0, 0.0);
        let mut p = Popularity::new();
        p.fit(&d, &s);
        let tops = p.top_k_block(&[0, 1], 3, &|pos, item| pos == 0 && item == 2);
        assert_eq!(tops.len(), 2);
        // User 0 has item 2 excluded; user 1 does not.
        assert!(tops[0].iter().all(|&(i, _)| i != 2));
        assert_eq!(tops[1], select_top_k(&p.scores_for_user(1), 3, |_| false));
    }

    #[test]
    fn default_top_k_for_user_matches_scores() {
        // Item 2 appears in two users' histories, item 1 in one: the
        // split dedupes repeats within a user, so popularity differences
        // must come from distinct users.
        let d = Dataset {
            name: "t".into(),
            n_users: 2,
            n_items: 4,
            n_tags: 0,
            interactions: vec![
                crate::dataset::Interaction {
                    user: 0,
                    item: 2,
                    ts: 0,
                },
                crate::dataset::Interaction {
                    user: 1,
                    item: 2,
                    ts: 0,
                },
                crate::dataset::Interaction {
                    user: 1,
                    item: 1,
                    ts: 1,
                },
            ],
            item_tags: vec![vec![]; 4],
            tag_names: vec![],
            taxonomy_truth: None,
        };
        let s = Split::temporal(&d, 1.0, 0.0);
        let mut p = Popularity::new();
        p.fit(&d, &s);
        let top = p.top_k_for_user(0, 2);
        assert_eq!(top[0].0, 2, "most popular item first");
        assert_eq!(top[1].0, 1);
        assert_eq!(top[0].1, p.scores_for_user(0)[2]);
    }

    #[test]
    fn popularity_scores_track_train_counts() {
        use crate::dataset::Interaction;
        let d = Dataset {
            name: "t".into(),
            n_users: 2,
            n_items: 3,
            n_tags: 0,
            interactions: vec![
                Interaction {
                    user: 0,
                    item: 0,
                    ts: 0,
                },
                Interaction {
                    user: 1,
                    item: 0,
                    ts: 0,
                },
                Interaction {
                    user: 1,
                    item: 1,
                    ts: 1,
                },
            ],
            item_tags: vec![vec![]; 3],
            tag_names: vec![],
            taxonomy_truth: None,
        };
        let s = Split::temporal(&d, 1.0, 0.0);
        let mut p = Popularity::new();
        p.fit(&d, &s);
        let scores = p.scores_for_user(0);
        assert!(scores[0] > scores[1]);
        assert!(scores[1] > scores[2]);
        assert_eq!(p.name(), "Popularity");
    }
}
