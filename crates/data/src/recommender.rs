//! The common interface every recommender in this workspace implements —
//! TaxoRec itself and all 14 baselines — so the evaluation harness can
//! treat them uniformly.

use crate::dataset::Dataset;
use crate::split::Split;

/// A trainable top-N recommender.
///
/// `Sync` is a supertrait so the evaluation harness can score users in
/// parallel against a shared `&dyn Recommender`; scoring is read-only.
pub trait Recommender: Sync {
    /// Display name used in result tables (e.g. `"TaxoRec"`, `"BPRMF"`).
    fn name(&self) -> &str;

    /// Trains on the training partition of `split`. Implementations must
    /// not look at validation or test items.
    fn fit(&mut self, dataset: &Dataset, split: &Split);

    /// Preference scores of `user` for every item (index = item id);
    /// **higher means better**. Metric-learning models return negated
    /// distances. Only valid after [`Recommender::fit`].
    fn scores_for_user(&self, user: u32) -> Vec<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial popularity recommender, doubling as a trait smoke test
    /// and a sanity-floor baseline for integration tests.
    pub struct Popularity {
        counts: Vec<f64>,
    }

    impl Popularity {
        pub fn new() -> Self {
            Self { counts: Vec::new() }
        }
    }

    impl Recommender for Popularity {
        fn name(&self) -> &str {
            "Popularity"
        }

        fn fit(&mut self, dataset: &Dataset, split: &Split) {
            self.counts = vec![0.0; dataset.n_items];
            for items in &split.train {
                for &v in items {
                    self.counts[v as usize] += 1.0;
                }
            }
        }

        fn scores_for_user(&self, _user: u32) -> Vec<f64> {
            self.counts.clone()
        }
    }

    #[test]
    fn popularity_scores_track_train_counts() {
        use crate::dataset::Interaction;
        let d = Dataset {
            name: "t".into(),
            n_users: 2,
            n_items: 3,
            n_tags: 0,
            interactions: vec![
                Interaction {
                    user: 0,
                    item: 0,
                    ts: 0,
                },
                Interaction {
                    user: 1,
                    item: 0,
                    ts: 0,
                },
                Interaction {
                    user: 1,
                    item: 1,
                    ts: 1,
                },
            ],
            item_tags: vec![vec![]; 3],
            tag_names: vec![],
            taxonomy_truth: None,
        };
        let s = Split::temporal(&d, 1.0, 0.0);
        let mut p = Popularity::new();
        p.fit(&d, &s);
        let scores = p.scores_for_user(0);
        assert!(scores[0] > scores[1]);
        assert!(scores[1] > scores[2]);
        assert_eq!(p.name(), "Popularity");
    }
}
