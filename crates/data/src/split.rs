//! Per-user temporal train/validation/test splits (paper §V-A.2):
//! "For each user, we use the first 60% of data as the training set, 20%
//! as validation and 20% as testing", split by timestamp.

use crate::dataset::Dataset;

/// A per-user split of the interaction log into train/validation/test item
/// lists.
#[derive(Clone, Debug)]
pub struct Split {
    /// `train[u]` = item ids in user `u`'s training set (temporal order).
    pub train: Vec<Vec<u32>>,
    /// Validation items per user.
    pub valid: Vec<Vec<u32>>,
    /// Test items per user.
    pub test: Vec<Vec<u32>>,
}

impl Split {
    /// Temporal split with the given train/validation fractions (test gets
    /// the remainder). The paper uses `0.6 / 0.2 / 0.2`.
    ///
    /// Users with very few events still get at least one training item
    /// (when they have any events at all); validation/test may be empty for
    /// them, mirroring how tiny users behave in the real pipeline.
    ///
    /// # Panics
    /// Panics if the fractions are out of `[0, 1]` or sum above 1.
    pub fn temporal(dataset: &Dataset, train_frac: f64, valid_frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&train_frac),
            "train fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&valid_frac),
            "valid fraction out of range"
        );
        assert!(train_frac + valid_frac <= 1.0, "fractions sum above 1");
        let by_user = dataset.interactions_by_user();
        let mut train = Vec::with_capacity(dataset.n_users);
        let mut valid = Vec::with_capacity(dataset.n_users);
        let mut test = Vec::with_capacity(dataset.n_users);
        for events in by_user {
            let n = events.len();
            // Deduplicate repeat interactions with the same item, keeping
            // the earliest (implicit feedback is binary).
            let mut seen = std::collections::HashSet::new();
            let items: Vec<u32> = events
                .iter()
                .map(|e| e.item)
                .filter(|i| seen.insert(*i))
                .collect();
            let n = items.len().min(n);
            let n_train = ((n as f64 * train_frac).round() as usize).clamp(usize::from(n > 0), n);
            let n_valid = ((n as f64 * valid_frac).round() as usize).min(n - n_train);
            train.push(items[..n_train].to_vec());
            valid.push(items[n_train..n_train + n_valid].to_vec());
            test.push(items[n_train + n_valid..].to_vec());
        }
        Self { train, valid, test }
    }

    /// The paper's standard 60/20/20 split.
    pub fn standard(dataset: &Dataset) -> Self {
        Self::temporal(dataset, 0.6, 0.2)
    }

    /// All training `(user, item)` pairs, flattened.
    pub fn train_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for (u, items) in self.train.iter().enumerate() {
            for &v in items {
                pairs.push((u as u32, v));
            }
        }
        pairs
    }

    /// Number of training interactions.
    pub fn n_train(&self) -> usize {
        self.train.iter().map(Vec::len).sum()
    }

    /// Per-user sorted copies of the training lists, for `O(log n)`
    /// membership checks during negative sampling and evaluation.
    pub fn train_sorted(&self) -> Vec<Vec<u32>> {
        let mut s = self.train.clone();
        for list in &mut s {
            list.sort_unstable();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Interaction;

    fn dataset_with(per_user: &[&[(u32, i64)]]) -> Dataset {
        let mut interactions = Vec::new();
        let mut max_item = 0;
        for (u, evs) in per_user.iter().enumerate() {
            for &(item, ts) in *evs {
                interactions.push(Interaction {
                    user: u as u32,
                    item,
                    ts,
                });
                max_item = max_item.max(item);
            }
        }
        let n_items = max_item as usize + 1;
        Dataset {
            name: "t".into(),
            n_users: per_user.len(),
            n_items,
            n_tags: 0,
            interactions,
            item_tags: vec![Vec::new(); n_items],
            tag_names: vec![],
            taxonomy_truth: None,
        }
    }

    #[test]
    fn split_is_temporal_and_disjoint() {
        // 10 items, timestamps = ids reversed to force sorting.
        let events: Vec<(u32, i64)> = (0..10).map(|i| (i, 100 - i as i64)).collect();
        let d = dataset_with(&[&events]);
        let s = Split::standard(&d);
        assert_eq!(s.train[0].len(), 6);
        assert_eq!(s.valid[0].len(), 2);
        assert_eq!(s.test[0].len(), 2);
        // Temporal: all training timestamps precede validation ones. Since
        // ts = 100 − id, later ts means smaller id; train must hold the
        // items with the largest ids.
        assert!(s.train[0].iter().min() > s.valid[0].iter().max());
        // Disjoint.
        let mut all: Vec<u32> = s.train[0]
            .iter()
            .chain(&s.valid[0])
            .chain(&s.test[0])
            .cloned()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn tiny_users_keep_a_training_item() {
        let d = dataset_with(&[&[(0, 0)], &[(1, 0), (2, 1)]]);
        let s = Split::standard(&d);
        assert_eq!(s.train[0], vec![0]);
        assert!(s.valid[0].is_empty() && s.test[0].is_empty());
        assert!(!s.train[1].is_empty());
    }

    #[test]
    fn duplicate_items_are_deduplicated() {
        let d = dataset_with(&[&[(3, 0), (3, 1), (3, 2), (4, 3)]]);
        let s = Split::standard(&d);
        let total = s.train[0].len() + s.valid[0].len() + s.test[0].len();
        assert_eq!(total, 2, "only two distinct items");
    }

    #[test]
    fn empty_user_yields_empty_lists() {
        let mut d = dataset_with(&[&[(0, 0)]]);
        d.n_users = 2; // user 1 has no events
        let s = Split::standard(&d);
        assert!(s.train[1].is_empty());
    }

    #[test]
    fn train_pairs_flattening() {
        let d = dataset_with(&[&[(0, 0), (1, 1)], &[(2, 0)]]);
        let s = Split::temporal(&d, 1.0, 0.0);
        let mut pairs = s.train_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 2)]);
        assert_eq!(s.n_train(), 3);
    }
}
