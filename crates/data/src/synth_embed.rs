//! Streaming planted-cluster *embedding* generator for retrieval-scale
//! benchmarks.
//!
//! [`synth::generate`](crate::synth::generate) plants interactions and
//! lets training discover the geometry; at 1M+ items that loop (and the
//! training run behind it) is far too slow to gate a CI job on. This
//! module skips straight to the artifact the retrieval index consumes: a
//! catalogue of *hyperbolic item embeddings* with planted hierarchical
//! cluster structure, matching user anchors, and the tag metadata
//! (item→tags plus the planted [`TagTree`]) needed to exercise the
//! taxonomy-guided top level of the index.
//!
//! Geometry: every tag in the planted tree gets a Poincaré-ball center,
//! laid out hierarchically — top-level tags step away from the origin in
//! random directions, children step (by a shrinking radius) away from
//! their parent via Möbius addition, mirroring how trained taxonomies
//! push finer concepts toward the boundary. Items scatter around their
//! leaf's center with Gaussian noise; users anchor near a home leaf. All
//! points are lifted to the hyperboloid, so the output plugs directly
//! into the fused Lorentz kernels.
//!
//! Memory: generation is *streaming* — items are produced in
//! fixed-size chunks with one chunk-sized scratch buffer, writing rows
//! straight into the flat output matrices. Nothing `O(n_items)` beyond
//! the returned matrices themselves is ever materialized (no per-item
//! `Vec` rows, no item×item or user×item intermediates), which is what
//! keeps the 1M-item configuration inside CI memory. Every row is
//! derived from a per-entity seeded RNG, so output is deterministic and
//! independent of chunk size.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use taxorec_geometry::{convert, poincare};

use crate::synth::build_tree;
use crate::truth::TagTree;

/// Items per generation chunk: bounds scratch memory (one chunk of
/// spatial rows) regardless of catalogue size.
pub const EMBED_CHUNK: usize = 8192;

/// Configuration of [`generate_embeddings`]. Deterministic for a fixed
/// config, including across chunk-size changes.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbedConfig {
    /// Catalogue size (scales to 1M+; memory is the output matrices).
    pub n_items: usize,
    /// Number of user anchors (query workload size).
    pub n_users: usize,
    /// Planted tag-tree shape, e.g. `[8, 8]` = 8 top tags × 8 children.
    pub branching: Vec<usize>,
    /// Spatial dimension of the interaction channel (rows get `+1`).
    pub dim_ir: usize,
    /// Spatial dimension of the tag channel (rows get `+1`).
    pub dim_tag: usize,
    /// Gaussian noise scale of items around their leaf center.
    pub cluster_spread: f64,
    /// Gaussian noise scale of user anchors around their home leaf.
    pub user_spread: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self {
            n_items: 100_000,
            n_users: 256,
            branching: vec![8, 8],
            dim_ir: 32,
            dim_tag: 8,
            cluster_spread: 0.08,
            user_spread: 0.10,
            seed: 42,
        }
    }
}

impl EmbedConfig {
    /// The retrieval-bench preset at a given catalogue size.
    pub fn retrieval_bench(n_items: usize) -> Self {
        Self {
            n_items,
            ..Self::default()
        }
    }
}

/// Output of [`generate_embeddings`]: flat row-major Lorentz matrices
/// plus the planted tag metadata.
pub struct SynthEmbeddings {
    /// Item embeddings, interaction channel: `n_items × ambient_ir`.
    pub v_ir: Vec<f64>,
    /// Item embeddings, tag channel: `n_items × ambient_tg`.
    pub v_tg: Vec<f64>,
    /// User anchors, interaction channel: `n_users × ambient_ir`.
    pub u_ir: Vec<f64>,
    /// User anchors, tag channel: `n_users × ambient_tg`.
    pub u_tg: Vec<f64>,
    /// Per-user tag-channel weight `α_u ∈ [0.3, 0.7)`.
    pub alphas: Vec<f64>,
    /// Each item's planted tag path (leaf plus all ancestors, sorted).
    pub item_tags: Vec<Vec<u32>>,
    /// Each user's planted home leaf tag.
    pub user_leaf: Vec<u32>,
    /// The planted tag tree.
    pub tag_tree: TagTree,
    /// Ambient (spatial + 1) dimension of the ir matrices.
    pub ambient_ir: usize,
    /// Ambient dimension of the tag matrices.
    pub ambient_tg: usize,
}

/// Per-depth Möbius step radii of the hierarchical center layout (deeper
/// levels step less, clamped at the last entry).
const LEVEL_STEP: [f64; 4] = [0.55, 0.30, 0.18, 0.10];

/// Generates a planted-cluster embedding catalogue. See module docs.
pub fn generate_embeddings(config: &EmbedConfig) -> SynthEmbeddings {
    assert!(config.n_items > 0, "need at least one item");
    assert!(
        config.dim_ir >= 1 && config.dim_tag >= 1,
        "need spatial dims"
    );
    let (tree, _names) = build_tree(&config.branching);
    let n_tags = tree.n_tags();
    let children = tree.children();
    let leaves: Vec<u32> = (0..n_tags as u32)
        .filter(|&t| children[t as usize].is_empty())
        .collect();

    // Hierarchical tag centers per channel. Tag ids are assigned level by
    // level, so every parent precedes its children.
    let centers_ir = tag_centers(&tree, config.dim_ir, config.seed ^ 0x6972);
    let centers_tg = tag_centers(&tree, config.dim_tag, config.seed ^ 0x7467);

    // Precomputed tag paths per leaf (leaf + ancestors, ascending).
    let leaf_paths: Vec<Vec<u32>> = leaves
        .iter()
        .map(|&leaf| {
            let mut path = tree.ancestors(leaf);
            path.push(leaf);
            path.sort_unstable();
            path
        })
        .collect();

    let ambient_ir = config.dim_ir + 1;
    let ambient_tg = config.dim_tag + 1;
    let mut v_ir = vec![0.0; config.n_items * ambient_ir];
    let mut v_tg = vec![0.0; config.n_items * ambient_tg];
    let mut item_tags = Vec::with_capacity(config.n_items);
    let mut scratch = vec![0.0; config.dim_ir.max(config.dim_tag)];
    let mut point = vec![0.0; config.dim_ir.max(config.dim_tag)];
    let mut lo = 0;
    while lo < config.n_items {
        let hi = (lo + EMBED_CHUNK).min(config.n_items);
        for i in lo..hi {
            let leaf_pos = i % leaves.len();
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((i as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            );
            let leaf = leaves[leaf_pos] as usize;
            place_near(
                &centers_ir[leaf * config.dim_ir..(leaf + 1) * config.dim_ir],
                config.cluster_spread,
                &mut rng,
                &mut scratch[..config.dim_ir],
                &mut point[..config.dim_ir],
                &mut v_ir[i * ambient_ir..(i + 1) * ambient_ir],
            );
            place_near(
                &centers_tg[leaf * config.dim_tag..(leaf + 1) * config.dim_tag],
                config.cluster_spread,
                &mut rng,
                &mut scratch[..config.dim_tag],
                &mut point[..config.dim_tag],
                &mut v_tg[i * ambient_tg..(i + 1) * ambient_tg],
            );
            item_tags.push(leaf_paths[leaf_pos].clone());
        }
        lo = hi;
    }

    let mut u_ir = vec![0.0; config.n_users * ambient_ir];
    let mut u_tg = vec![0.0; config.n_users * ambient_tg];
    let mut alphas = Vec::with_capacity(config.n_users);
    let mut user_leaf = Vec::with_capacity(config.n_users);
    for u in 0..config.n_users {
        let leaf_pos = (u * 7 + 3) % leaves.len();
        let mut rng = StdRng::seed_from_u64(
            config
                .seed
                .wrapping_add(0x75736572)
                .wrapping_add((u as u64).wrapping_mul(0xd1342543de82ef95)),
        );
        let leaf = leaves[leaf_pos] as usize;
        place_near(
            &centers_ir[leaf * config.dim_ir..(leaf + 1) * config.dim_ir],
            config.user_spread,
            &mut rng,
            &mut scratch[..config.dim_ir],
            &mut point[..config.dim_ir],
            &mut u_ir[u * ambient_ir..(u + 1) * ambient_ir],
        );
        place_near(
            &centers_tg[leaf * config.dim_tag..(leaf + 1) * config.dim_tag],
            config.user_spread,
            &mut rng,
            &mut scratch[..config.dim_tag],
            &mut point[..config.dim_tag],
            &mut u_tg[u * ambient_tg..(u + 1) * ambient_tg],
        );
        alphas.push(0.3 + 0.4 * rng.random::<f64>());
        user_leaf.push(leaves[leaf_pos]);
    }

    SynthEmbeddings {
        v_ir,
        v_tg,
        u_ir,
        u_tg,
        alphas,
        item_tags,
        user_leaf,
        tag_tree: tree,
        ambient_ir,
        ambient_tg,
    }
}

/// Samples a Poincaré point near `center` (Gaussian tangent noise of
/// scale `spread`, Möbius-added) and writes its hyperboloid lift into
/// `out` (`center.len() + 1` wide).
fn place_near(
    center: &[f64],
    spread: f64,
    rng: &mut StdRng,
    noise: &mut [f64],
    point: &mut [f64],
    out: &mut [f64],
) {
    for n in noise.iter_mut() {
        *n = gauss(rng) * spread;
    }
    poincare::mobius_add(center, noise, point);
    poincare::project(point);
    convert::poincare_to_lorentz(point, out);
}

/// Hierarchical Poincaré centers for every tag of the planted tree:
/// flat `n_tags × dim`, parents laid out before their children.
fn tag_centers(tree: &TagTree, dim: usize, seed: u64) -> Vec<f64> {
    let n_tags = tree.n_tags();
    let mut centers = vec![0.0; n_tags * dim];
    let mut dir = vec![0.0; dim];
    let mut stepped = vec![0.0; dim];
    for t in 0..n_tags as u32 {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_add((t as u64).wrapping_mul(0xbf58476d1ce4e5b9)));
        let depth = tree.depth(t);
        let step = LEVEL_STEP[depth.min(LEVEL_STEP.len() - 1)];
        // Random unit direction × step.
        let mut norm = 0.0;
        for d in dir.iter_mut() {
            *d = gauss(&mut rng);
            norm += *d * *d;
        }
        let norm = norm.sqrt().max(1e-12);
        for d in dir.iter_mut() {
            *d *= step / norm;
        }
        let (lo, hi) = (t as usize * dim, (t as usize + 1) * dim);
        match tree.parent(t) {
            Some(p) => {
                let parent = centers[p as usize * dim..(p as usize + 1) * dim].to_vec();
                poincare::mobius_add(&parent, &dir, &mut stepped);
            }
            None => stepped.copy_from_slice(&dir),
        }
        poincare::project(&mut stepped);
        centers[lo..hi].copy_from_slice(&stepped);
    }
    centers
}

/// Box–Muller standard normal from two uniforms.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_geometry::lorentz;

    fn small() -> EmbedConfig {
        EmbedConfig {
            n_items: 1000,
            n_users: 16,
            branching: vec![4, 4],
            dim_ir: 8,
            dim_tag: 4,
            ..EmbedConfig::default()
        }
    }

    #[test]
    fn rows_live_on_the_hyperboloid() {
        let e = generate_embeddings(&small());
        assert_eq!(e.v_ir.len(), 1000 * 9);
        assert_eq!(e.v_tg.len(), 1000 * 5);
        assert_eq!(e.u_ir.len(), 16 * 9);
        for i in 0..1000 {
            let row = &e.v_ir[i * 9..(i + 1) * 9];
            assert!(
                lorentz::constraint_residual(row) < 1e-9,
                "item {i} off the hyperboloid"
            );
        }
        for u in 0..16 {
            let row = &e.u_tg[u * 5..(u + 1) * 5];
            assert!(lorentz::constraint_residual(row) < 1e-9);
        }
    }

    #[test]
    fn deterministic_and_tagged_consistently() {
        let a = generate_embeddings(&small());
        let b = generate_embeddings(&small());
        assert_eq!(a.v_ir, b.v_ir);
        assert_eq!(a.u_ir, b.u_ir);
        assert_eq!(a.alphas, b.alphas);
        assert_eq!(a.item_tags, b.item_tags);
        // Each item's tag path is its leaf plus ancestors.
        let children = a.tag_tree.children();
        for tags in &a.item_tags {
            let leaf = *tags
                .iter()
                .find(|&&t| children[t as usize].is_empty())
                .expect("path includes a leaf");
            let mut want = a.tag_tree.ancestors(leaf);
            want.push(leaf);
            want.sort_unstable();
            assert_eq!(tags, &want);
        }
    }

    #[test]
    fn clusters_are_separated() {
        // Items sharing a leaf must sit closer together (hyperbolic
        // distance) than items from different top-level branches, which
        // is the structure the retrieval router exploits.
        let e = generate_embeddings(&small());
        let row = |i: usize| &e.v_ir[i * 9..(i + 1) * 9];
        let n_leaves = 16;
        // Items i and i+n_leaves share a leaf; i and i+1 never do.
        let mut within = 0.0;
        let mut across = 0.0;
        let pairs = 200;
        for i in 0..pairs {
            within += lorentz::distance(row(i), row(i + n_leaves));
            across += lorentz::distance(row(i), row(i + 1));
        }
        assert!(
            within / pairs as f64 * 2.0 < across / pairs as f64,
            "planted clusters are not separated: within={within} across={across}"
        );
    }
}
