//! Ground-truth tag taxonomy for synthetic datasets.
//!
//! The synthetic generator plants a rooted tree over tags; the taxonomy-
//! recovery metrics (RQ4) compare a constructed taxonomy's ancestor pairs
//! against this tree.

/// A rooted tree over tag ids `0..n_tags`.
///
/// The root is virtual (it is *not* a tag); top-level tags have
/// `parent = None`. Every tag appears exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagTree {
    /// `parent[t]` is the parent tag of `t`, or `None` for top-level tags.
    parent: Vec<Option<u32>>,
}

impl TagTree {
    /// Builds from a parent array.
    ///
    /// # Panics
    /// Panics if a parent index is out of range, self-referential, or the
    /// structure contains a cycle.
    pub fn from_parents(parent: Vec<Option<u32>>) -> Self {
        let n = parent.len();
        for (t, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!((*p as usize) < n, "parent {p} out of range");
                assert!(*p as usize != t, "tag {t} is its own parent");
            }
        }
        let tree = Self { parent };
        // Cycle check: walking up from any node must terminate.
        for t in 0..n {
            let mut steps = 0;
            let mut cur = Some(t as u32);
            while let Some(c) = cur {
                cur = tree.parent[c as usize];
                steps += 1;
                assert!(steps <= n, "cycle detected at tag {t}");
            }
        }
        tree
    }

    /// Number of tags covered.
    pub fn n_tags(&self) -> usize {
        self.parent.len()
    }

    /// Parent of tag `t` (`None` for a top-level tag).
    pub fn parent(&self, t: u32) -> Option<u32> {
        self.parent[t as usize]
    }

    /// Depth of tag `t` (top-level tags have depth 0).
    pub fn depth(&self, t: u32) -> usize {
        let mut d = 0;
        let mut cur = self.parent(t);
        while let Some(p) = cur {
            d += 1;
            cur = self.parent(p);
        }
        d
    }

    /// All strict ancestors of `t`, nearest first.
    pub fn ancestors(&self, t: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = self.parent(t);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// True when `a` is a strict ancestor of `d`.
    pub fn is_ancestor(&self, a: u32, d: u32) -> bool {
        let mut cur = self.parent(d);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// The set of all `(ancestor, descendant)` pairs, used by the taxonomy
    /// recovery metrics.
    pub fn ancestor_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for t in 0..self.parent.len() as u32 {
            for a in self.ancestors(t) {
                pairs.push((a, t));
            }
        }
        pairs
    }

    /// Children lists, index = tag id.
    pub fn children(&self) -> Vec<Vec<u32>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (t, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p as usize].push(t as u32);
            }
        }
        ch
    }

    /// Maximum depth over all tags.
    pub fn max_depth(&self) -> usize {
        (0..self.parent.len() as u32)
            .map(|t| self.depth(t))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 and 1 top-level; 2,3 under 0; 4 under 2.
    fn sample() -> TagTree {
        TagTree::from_parents(vec![None, None, Some(0), Some(0), Some(2)])
    }

    #[test]
    fn depths_and_ancestors() {
        let t = sample();
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(2), 1);
        assert_eq!(t.depth(4), 2);
        assert_eq!(t.ancestors(4), vec![2, 0]);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn ancestor_relation() {
        let t = sample();
        assert!(t.is_ancestor(0, 4));
        assert!(t.is_ancestor(2, 4));
        assert!(!t.is_ancestor(4, 2));
        assert!(!t.is_ancestor(1, 4));
    }

    #[test]
    fn ancestor_pairs_complete() {
        let t = sample();
        let mut pairs = t.ancestor_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 2), (0, 3), (0, 4), (2, 4)]);
    }

    #[test]
    fn children_lists() {
        let t = sample();
        let ch = t.children();
        assert_eq!(ch[0], vec![2, 3]);
        assert_eq!(ch[2], vec![4]);
        assert!(ch[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "cycle detected")]
    fn rejects_cycles() {
        let _ = TagTree::from_parents(vec![Some(1), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "its own parent")]
    fn rejects_self_parent() {
        let _ = TagTree::from_parents(vec![Some(0)]);
    }
}
