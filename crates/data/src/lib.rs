//! Datasets for TaxoRec: representation, temporal splits, negative
//! sampling, TSV persistence, and the synthetic benchmark generators that
//! stand in for the paper's Ciao / Amazon-CD / Amazon-Book / Yelp datasets
//! (see DESIGN.md §5 for the substitution rationale).

pub mod dataset;
pub mod negative;
pub mod recommender;
pub mod split;
pub mod synth;
pub mod synth_embed;
pub mod truth;
pub mod tsv;

pub use dataset::{Dataset, DatasetStats, Interaction};
pub use negative::NegativeSampler;
pub use recommender::{select_top_k, Recommender, TopKAccumulator};
pub use split::Split;
pub use synth::{generate, generate_preset, Preset, Scale, SynthConfig};
pub use synth_embed::{generate_embeddings, EmbedConfig, SynthEmbeddings, EMBED_CHUNK};
pub use truth::TagTree;
