//! Core dataset representation: implicit-feedback interactions plus the
//! item–tag attribute matrix (paper §III-A).

use crate::truth::TagTree;

/// One implicit-feedback event `(u, v)` with a timestamp used for the
/// temporal train/validation/test split (§V-A.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// User index in `0..n_users`.
    pub user: u32,
    /// Item index in `0..n_items`.
    pub item: u32,
    /// Event time (arbitrary monotone unit).
    pub ts: i64,
}

/// An implicit-feedback recommendation dataset with item tags.
///
/// Corresponds to the paper's `X` (user–item matrix, stored as an event
/// log) and `A`/`Ψ` (item–tag matrix, stored as per-item tag lists).
/// Synthetic datasets additionally carry the planted ground-truth taxonomy
/// for evaluation (absent for real data).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"ciao-synth"`).
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of distinct tags.
    pub n_tags: usize,
    /// Full interaction log (arbitrary order).
    pub interactions: Vec<Interaction>,
    /// `item_tags[v]` lists the tags of item `v` (sorted, deduplicated).
    pub item_tags: Vec<Vec<u32>>,
    /// Display names of the tags.
    pub tag_names: Vec<String>,
    /// Planted ground-truth taxonomy, if this dataset is synthetic.
    pub taxonomy_truth: Option<TagTree>,
}

/// Summary row of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Number of interactions.
    pub interactions: usize,
    /// Interaction density in percent: `100·|X| / (|U|·|V|)`.
    pub density_pct: f64,
    /// Number of tags.
    pub tags: usize,
}

impl Dataset {
    /// Computes the Table I statistics row.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            users: self.n_users,
            items: self.n_items,
            interactions: self.interactions.len(),
            density_pct: 100.0 * self.interactions.len() as f64
                / (self.n_users as f64 * self.n_items as f64),
            tags: self.n_tags,
        }
    }

    /// Per-user interaction lists sorted by timestamp (ties broken by item
    /// id for determinism).
    pub fn interactions_by_user(&self) -> Vec<Vec<Interaction>> {
        let mut by_user: Vec<Vec<Interaction>> = vec![Vec::new(); self.n_users];
        for &i in &self.interactions {
            by_user[i.user as usize].push(i);
        }
        for list in &mut by_user {
            list.sort_by_key(|i| (i.ts, i.item));
        }
        by_user
    }

    /// Validates internal consistency; returns a description of the first
    /// violation found, if any. Used by loaders and tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.item_tags.len() != self.n_items {
            return Err(format!(
                "item_tags has {} entries but n_items is {}",
                self.item_tags.len(),
                self.n_items
            ));
        }
        if self.tag_names.len() != self.n_tags {
            return Err(format!(
                "tag_names has {} entries but n_tags is {}",
                self.tag_names.len(),
                self.n_tags
            ));
        }
        for (v, tags) in self.item_tags.iter().enumerate() {
            for &t in tags {
                if t as usize >= self.n_tags {
                    return Err(format!("item {v} has out-of-range tag {t}"));
                }
            }
            if tags.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("item {v} tag list is not sorted/deduplicated"));
            }
        }
        for i in &self.interactions {
            if i.user as usize >= self.n_users {
                return Err(format!("interaction has out-of-range user {}", i.user));
            }
            if i.item as usize >= self.n_items {
                return Err(format!("interaction has out-of-range item {}", i.item));
            }
        }
        if let Some(tree) = &self.taxonomy_truth {
            if tree.n_tags() != self.n_tags {
                return Err(format!(
                    "taxonomy truth covers {} tags, dataset has {}",
                    tree.n_tags(),
                    self.n_tags
                ));
            }
        }
        Ok(())
    }

    /// The personalized tag-weight `α_u` of paper Eq. 16:
    ///
    /// `α_u = Σ_{v∈V_u} |T_v| / (|V_u| · |∪_{v∈V_u} T_v|)`,
    ///
    /// computed on the supplied per-user item lists (normally the training
    /// split, so no test leakage). Users without interactions or whose
    /// items carry no tags get `α_u = 0`.
    pub fn alpha_weights(&self, user_items: &[Vec<u32>]) -> Vec<f64> {
        let mut alphas = vec![0.0; self.n_users];
        let mut seen = vec![false; self.n_tags];
        for (u, items) in user_items.iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let mut total_tags = 0usize;
            let mut union_size = 0usize;
            let mut touched: Vec<u32> = Vec::new();
            for &v in items {
                for &t in &self.item_tags[v as usize] {
                    total_tags += 1;
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        union_size += 1;
                        touched.push(t);
                    }
                }
            }
            for t in touched {
                seen[t as usize] = false;
            }
            if union_size > 0 {
                alphas[u] = total_tags as f64 / (items.len() as f64 * union_size as f64);
            }
        }
        // α_u ∈ [0, 1] is claimed by the paper for per-item tag multisets;
        // clamp defensively against degenerate synthetic data.
        for a in &mut alphas {
            *a = a.clamp(0.0, 1.0);
        }
        alphas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            n_users: 2,
            n_items: 3,
            n_tags: 2,
            interactions: vec![
                Interaction {
                    user: 0,
                    item: 0,
                    ts: 2,
                },
                Interaction {
                    user: 0,
                    item: 1,
                    ts: 1,
                },
                Interaction {
                    user: 1,
                    item: 2,
                    ts: 0,
                },
            ],
            item_tags: vec![vec![0], vec![0, 1], vec![]],
            tag_names: vec!["a".into(), "b".into()],
            taxonomy_truth: None,
        }
    }

    #[test]
    fn stats_are_correct() {
        let s = tiny().stats();
        assert_eq!(s.users, 2);
        assert_eq!(s.items, 3);
        assert_eq!(s.interactions, 3);
        assert_eq!(s.tags, 2);
        assert!((s.density_pct - 50.0).abs() < 1e-12);
    }

    #[test]
    fn interactions_by_user_sorted_by_time() {
        let by_user = tiny().interactions_by_user();
        assert_eq!(by_user[0].len(), 2);
        assert_eq!(by_user[0][0].item, 1, "earlier timestamp first");
        assert_eq!(by_user[1].len(), 1);
    }

    #[test]
    fn validate_accepts_consistent_data() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_tag() {
        let mut d = tiny();
        d.item_tags[0] = vec![9];
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_unsorted_tags() {
        let mut d = tiny();
        d.item_tags[1] = vec![1, 0];
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_interaction() {
        let mut d = tiny();
        d.interactions.push(Interaction {
            user: 5,
            item: 0,
            ts: 0,
        });
        assert!(d.validate().is_err());
    }

    #[test]
    fn alpha_weight_matches_eq16_by_hand() {
        // User 0 interacts with items 0 (tags {0}) and 1 (tags {0,1}):
        // Σ|T_v| = 3, |V_u| = 2, |∪T_v| = 2 ⇒ α = 3/4.
        let d = tiny();
        let user_items = vec![vec![0u32, 1], vec![2u32]];
        let a = d.alpha_weights(&user_items);
        assert!((a[0] - 0.75).abs() < 1e-12);
        // Item 2 has no tags ⇒ α_1 = 0.
        assert_eq!(a[1], 0.0);
    }

    #[test]
    fn alpha_weight_repeated_tags_increase_alpha() {
        // Identical tag sets across items ⇒ high α (consistent preference).
        let d = Dataset {
            name: "t".into(),
            n_users: 2,
            n_items: 4,
            n_tags: 2,
            interactions: vec![],
            item_tags: vec![vec![0], vec![0], vec![0], vec![1]],
            tag_names: vec!["a".into(), "b".into()],
            taxonomy_truth: None,
        };
        let consistent = d.alpha_weights(&[vec![0, 1, 2], vec![]])[0];
        let diverse = d.alpha_weights(&[vec![0, 3], vec![]])[0];
        assert!(consistent > diverse);
        assert!((consistent - 1.0).abs() < 1e-12);
        assert!((diverse - 0.5).abs() < 1e-12);
    }
}
