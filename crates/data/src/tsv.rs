//! Plain-text TSV persistence so real datasets can be dropped in.
//!
//! Two files describe a dataset:
//!
//! * `<name>.inter` — one `user \t item \t timestamp` line per event;
//! * `<name>.tags` — one `item \t tag_name[,tag_name...]` line per tagged
//!   item (items may be absent → no tags).
//!
//! Tag ids are assigned in order of first appearance.

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::dataset::{Dataset, Interaction};

/// Parses an integer field, reporting the file path, 1-based line number,
/// field name, and offending text on failure.
fn parse_i64(raw: Option<&str>, field: &str, path: &Path, line_1b: usize) -> Result<i64, String> {
    let raw = raw.ok_or_else(|| {
        format!(
            "{}:{line_1b}: missing field '{field}' (expected user<TAB>item<TAB>timestamp)",
            path.display()
        )
    })?;
    raw.trim().parse::<i64>().map_err(|e| {
        format!(
            "{}:{line_1b}: field '{field}' = {:?} is not an integer: {e}",
            path.display(),
            raw.trim()
        )
    })
}

/// Narrows a parsed integer to a `u32` id, naming the offending field for
/// negative or overflowing values.
fn narrow_id(v: i64, field: &str, path: &Path, line_1b: usize) -> Result<u32, String> {
    u32::try_from(v).map_err(|_| {
        format!(
            "{}:{line_1b}: field '{field}' = {v} out of range (ids must be in 0..={})",
            path.display(),
            u32::MAX
        )
    })
}

/// Loads a dataset from `<stem>.inter` and `<stem>.tags`.
///
/// # Errors
/// Returns a descriptive error for missing files or malformed lines; every
/// parse error carries the file path, the 1-based line number, and the
/// name of the offending field.
pub fn load(stem: &Path, name: &str) -> Result<Dataset, String> {
    let inter_path = stem.with_extension("inter");
    let tags_path = stem.with_extension("tags");
    let inter_file = std::fs::File::open(&inter_path)
        .map_err(|e| format!("open {}: {e}", inter_path.display()))?;
    let mut interactions = Vec::new();
    let mut n_users = 0usize;
    let mut n_items = 0usize;
    for (lineno, line) in std::io::BufReader::new(inter_file).lines().enumerate() {
        let line_1b = lineno + 1;
        let line = line.map_err(|e| format!("read {}: {e}", inter_path.display()))?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let user = parse_i64(parts.next(), "user", &inter_path, line_1b)
            .and_then(|v| narrow_id(v, "user", &inter_path, line_1b))?;
        let item = parse_i64(parts.next(), "item", &inter_path, line_1b)
            .and_then(|v| narrow_id(v, "item", &inter_path, line_1b))?;
        let ts = parse_i64(parts.next(), "timestamp", &inter_path, line_1b)?;
        n_users = n_users.max(user as usize + 1);
        n_items = n_items.max(item as usize + 1);
        interactions.push(Interaction { user, item, ts });
    }

    let mut item_tags: Vec<Vec<u32>> = vec![Vec::new(); n_items];
    let mut tag_ids: HashMap<String, u32> = HashMap::new();
    let mut tag_names: Vec<String> = Vec::new();
    if let Ok(tags_file) = std::fs::File::open(&tags_path) {
        for (lineno, line) in std::io::BufReader::new(tags_file).lines().enumerate() {
            let line_1b = lineno + 1;
            let line = line.map_err(|e| format!("read {}: {e}", tags_path.display()))?;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let (item_s, tags_s) = line.split_once('\t').ok_or_else(|| {
                format!(
                    "{}:{line_1b}: expected item<TAB>tag[,tag...]",
                    tags_path.display()
                )
            })?;
            let item = parse_i64(Some(item_s), "item", &tags_path, line_1b)
                .and_then(|v| narrow_id(v, "item", &tags_path, line_1b))?
                as usize;
            if item >= n_items {
                // Tagged item never interacted with: extend the catalogue.
                item_tags.resize(item + 1, Vec::new());
                n_items = item + 1;
            }
            for tag in tags_s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let id = *tag_ids.entry(tag.to_string()).or_insert_with(|| {
                    tag_names.push(tag.to_string());
                    (tag_names.len() - 1) as u32
                });
                item_tags[item].push(id);
            }
        }
    }
    for tags in &mut item_tags {
        tags.sort_unstable();
        tags.dedup();
    }
    let dataset = Dataset {
        name: name.to_string(),
        n_users,
        n_items,
        n_tags: tag_names.len(),
        interactions,
        item_tags,
        tag_names,
        taxonomy_truth: None,
    };
    dataset.validate()?;
    Ok(dataset)
}

/// Saves a dataset as `<stem>.inter` + `<stem>.tags`.
///
/// # Errors
/// Returns an error string on I/O failure.
pub fn save(dataset: &Dataset, stem: &Path) -> Result<(), String> {
    let inter_path = stem.with_extension("inter");
    let mut w = BufWriter::new(
        std::fs::File::create(&inter_path)
            .map_err(|e| format!("create {}: {e}", inter_path.display()))?,
    );
    for i in &dataset.interactions {
        writeln!(w, "{}\t{}\t{}", i.user, i.item, i.ts).map_err(|e| e.to_string())?;
    }
    let tags_path = stem.with_extension("tags");
    let mut w = BufWriter::new(
        std::fs::File::create(&tags_path)
            .map_err(|e| format!("create {}: {e}", tags_path.display()))?,
    );
    for (v, tags) in dataset.item_tags.iter().enumerate() {
        if tags.is_empty() {
            continue;
        }
        let names: Vec<&str> = tags
            .iter()
            .map(|&t| dataset.tag_names[t as usize].as_str())
            .collect();
        writeln!(w, "{v}\t{}", names.join(",")).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_preset, Preset, Scale};

    #[test]
    fn save_load_roundtrip() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let dir = std::env::temp_dir().join("taxorec-tsv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("ciao");
        save(&d, &stem).unwrap();
        let loaded = load(&stem, "ciao").unwrap();
        assert_eq!(loaded.n_users, d.n_users);
        assert_eq!(loaded.interactions.len(), d.interactions.len());
        // Tags that no item carries are not persisted, so the loaded tag
        // universe may be smaller.
        assert!(loaded.n_tags <= d.n_tags);
        // Tag ids may be renumbered, but per-item tag *names* must match.
        for v in 0..d.n_items {
            let mut orig: Vec<&str> = d.item_tags[v]
                .iter()
                .map(|&t| d.tag_names[t as usize].as_str())
                .collect();
            let mut back: Vec<&str> = loaded.item_tags[v]
                .iter()
                .map(|&t| loaded.tag_names[t as usize].as_str())
                .collect();
            orig.sort_unstable();
            back.sort_unstable();
            assert_eq!(orig, back, "item {v}");
        }
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load(Path::new("/nonexistent/xyz"), "x").unwrap_err();
        assert!(err.contains("open"));
    }

    #[test]
    fn load_rejects_malformed_line() {
        let dir = std::env::temp_dir().join("taxorec-tsv-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("bad");
        std::fs::write(
            stem.with_extension("inter"),
            "0\t0\t1\n1\tnot-a-number\t3\n",
        )
        .unwrap();
        let err = load(&stem, "bad").unwrap_err();
        assert!(err.contains("field 'item'"), "{err}");
        assert!(err.contains("not an integer"), "{err}");
        assert!(err.contains("bad.inter:2:"), "1-based line number: {err}");
    }

    #[test]
    fn load_rejects_negative_ids() {
        let dir = std::env::temp_dir().join("taxorec-tsv-neg");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("neg");
        std::fs::write(stem.with_extension("inter"), "-1\t0\t3\n").unwrap();
        let err = load(&stem, "neg").unwrap_err();
        assert!(err.contains("field 'user' = -1"), "{err}");
        assert!(err.contains("out of range"), "{err}");
        assert!(err.contains("neg.inter:1:"), "{err}");
    }

    #[test]
    fn load_rejects_overflowing_item_id() {
        let dir = std::env::temp_dir().join("taxorec-tsv-overflow");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("of");
        std::fs::write(stem.with_extension("inter"), "0\t99999999999\t3\n").unwrap();
        let err = load(&stem, "of").unwrap_err();
        assert!(err.contains("field 'item' = 99999999999"), "{err}");
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn load_rejects_missing_field_by_name() {
        let dir = std::env::temp_dir().join("taxorec-tsv-missing");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("m");
        std::fs::write(stem.with_extension("inter"), "0\t1\n").unwrap();
        let err = load(&stem, "m").unwrap_err();
        assert!(err.contains("missing field 'timestamp'"), "{err}");
    }

    #[test]
    fn tags_file_errors_carry_path_and_line() {
        let dir = std::env::temp_dir().join("taxorec-tsv-tagerr");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("t");
        std::fs::write(stem.with_extension("inter"), "0\t0\t1\n").unwrap();
        // A huge item id in the tags file must not blow up the catalogue —
        // it is rejected with the field name, not silently allocated.
        std::fs::write(stem.with_extension("tags"), "# c\n0\ta\n-7\tb\n").unwrap();
        let err = load(&stem, "t").unwrap_err();
        assert!(err.contains("t.tags:3:"), "{err}");
        assert!(err.contains("field 'item' = -7"), "{err}");
        std::fs::write(stem.with_extension("tags"), "0 a\n").unwrap();
        let err = load(&stem, "t").unwrap_err();
        assert!(err.contains("expected item<TAB>tag"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let dir = std::env::temp_dir().join("taxorec-tsv-comments");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("c");
        std::fs::write(stem.with_extension("inter"), "# header\n\n0\t0\t1\n").unwrap();
        let d = load(&stem, "c").unwrap();
        assert_eq!(d.interactions.len(), 1);
    }
}
