//! Plain-text TSV persistence so real datasets can be dropped in.
//!
//! Two files describe a dataset:
//!
//! * `<name>.inter` — one `user \t item \t timestamp` line per event;
//! * `<name>.tags` — one `item \t tag_name[,tag_name...]` line per tagged
//!   item (items may be absent → no tags).
//!
//! Tag ids are assigned in order of first appearance.

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::dataset::{Dataset, Interaction};

/// Loads a dataset from `<stem>.inter` and `<stem>.tags`.
///
/// # Errors
/// Returns a descriptive error for missing files or malformed lines.
pub fn load(stem: &Path, name: &str) -> Result<Dataset, String> {
    let inter_path = stem.with_extension("inter");
    let tags_path = stem.with_extension("tags");
    let inter_file = std::fs::File::open(&inter_path)
        .map_err(|e| format!("open {}: {e}", inter_path.display()))?;
    let mut interactions = Vec::new();
    let mut n_users = 0usize;
    let mut n_items = 0usize;
    for (lineno, line) in std::io::BufReader::new(inter_file).lines().enumerate() {
        let line = line.map_err(|e| format!("read {}: {e}", inter_path.display()))?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let parse = |s: Option<&str>, what: &str| -> Result<i64, String> {
            s.ok_or_else(|| format!("{}:{}: missing {what}", inter_path.display(), lineno + 1))?
                .trim()
                .parse::<i64>()
                .map_err(|e| format!("{}:{}: bad {what}: {e}", inter_path.display(), lineno + 1))
        };
        let id = |v: i64, what: &str| -> Result<u32, String> {
            u32::try_from(v).map_err(|_| {
                format!(
                    "{}:{}: {what} {v} out of range",
                    inter_path.display(),
                    lineno + 1
                )
            })
        };
        let user = id(parse(parts.next(), "user")?, "user")?;
        let item = id(parse(parts.next(), "item")?, "item")?;
        let ts = parse(parts.next(), "timestamp")?;
        n_users = n_users.max(user as usize + 1);
        n_items = n_items.max(item as usize + 1);
        interactions.push(Interaction { user, item, ts });
    }

    let mut item_tags: Vec<Vec<u32>> = vec![Vec::new(); n_items];
    let mut tag_ids: HashMap<String, u32> = HashMap::new();
    let mut tag_names: Vec<String> = Vec::new();
    if let Ok(tags_file) = std::fs::File::open(&tags_path) {
        for (lineno, line) in std::io::BufReader::new(tags_file).lines().enumerate() {
            let line = line.map_err(|e| format!("read {}: {e}", tags_path.display()))?;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let (item_s, tags_s) = line.split_once('\t').ok_or_else(|| {
                format!(
                    "{}:{}: expected item<TAB>tags",
                    tags_path.display(),
                    lineno + 1
                )
            })?;
            let item: usize = item_s
                .trim()
                .parse()
                .map_err(|e| format!("{}:{}: bad item: {e}", tags_path.display(), lineno + 1))?;
            if item >= n_items {
                // Tagged item never interacted with: extend the catalogue.
                item_tags.resize(item + 1, Vec::new());
                n_items = item + 1;
            }
            for tag in tags_s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let id = *tag_ids.entry(tag.to_string()).or_insert_with(|| {
                    tag_names.push(tag.to_string());
                    (tag_names.len() - 1) as u32
                });
                item_tags[item].push(id);
            }
        }
    }
    for tags in &mut item_tags {
        tags.sort_unstable();
        tags.dedup();
    }
    let dataset = Dataset {
        name: name.to_string(),
        n_users,
        n_items,
        n_tags: tag_names.len(),
        interactions,
        item_tags,
        tag_names,
        taxonomy_truth: None,
    };
    dataset.validate()?;
    Ok(dataset)
}

/// Saves a dataset as `<stem>.inter` + `<stem>.tags`.
///
/// # Errors
/// Returns an error string on I/O failure.
pub fn save(dataset: &Dataset, stem: &Path) -> Result<(), String> {
    let inter_path = stem.with_extension("inter");
    let mut w = BufWriter::new(
        std::fs::File::create(&inter_path)
            .map_err(|e| format!("create {}: {e}", inter_path.display()))?,
    );
    for i in &dataset.interactions {
        writeln!(w, "{}\t{}\t{}", i.user, i.item, i.ts).map_err(|e| e.to_string())?;
    }
    let tags_path = stem.with_extension("tags");
    let mut w = BufWriter::new(
        std::fs::File::create(&tags_path)
            .map_err(|e| format!("create {}: {e}", tags_path.display()))?,
    );
    for (v, tags) in dataset.item_tags.iter().enumerate() {
        if tags.is_empty() {
            continue;
        }
        let names: Vec<&str> = tags
            .iter()
            .map(|&t| dataset.tag_names[t as usize].as_str())
            .collect();
        writeln!(w, "{v}\t{}", names.join(",")).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_preset, Preset, Scale};

    #[test]
    fn save_load_roundtrip() {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let dir = std::env::temp_dir().join("taxorec-tsv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("ciao");
        save(&d, &stem).unwrap();
        let loaded = load(&stem, "ciao").unwrap();
        assert_eq!(loaded.n_users, d.n_users);
        assert_eq!(loaded.interactions.len(), d.interactions.len());
        // Tags that no item carries are not persisted, so the loaded tag
        // universe may be smaller.
        assert!(loaded.n_tags <= d.n_tags);
        // Tag ids may be renumbered, but per-item tag *names* must match.
        for v in 0..d.n_items {
            let mut orig: Vec<&str> = d.item_tags[v]
                .iter()
                .map(|&t| d.tag_names[t as usize].as_str())
                .collect();
            let mut back: Vec<&str> = loaded.item_tags[v]
                .iter()
                .map(|&t| loaded.tag_names[t as usize].as_str())
                .collect();
            orig.sort_unstable();
            back.sort_unstable();
            assert_eq!(orig, back, "item {v}");
        }
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load(Path::new("/nonexistent/xyz"), "x").unwrap_err();
        assert!(err.contains("open"));
    }

    #[test]
    fn load_rejects_malformed_line() {
        let dir = std::env::temp_dir().join("taxorec-tsv-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("bad");
        std::fs::write(stem.with_extension("inter"), "1\tnot-a-number\t3\n").unwrap();
        let err = load(&stem, "bad").unwrap_err();
        assert!(err.contains("bad item"), "{err}");
    }

    #[test]
    fn load_rejects_negative_ids() {
        let dir = std::env::temp_dir().join("taxorec-tsv-neg");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("neg");
        std::fs::write(stem.with_extension("inter"), "-1\t0\t3\n").unwrap();
        let err = load(&stem, "neg").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let dir = std::env::temp_dir().join("taxorec-tsv-comments");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("c");
        std::fs::write(stem.with_extension("inter"), "# header\n\n0\t0\t1\n").unwrap();
        let d = load(&stem, "c").unwrap();
        assert_eq!(d.interactions.len(), 1);
    }
}
