//! Bounded retry with exponential backoff and decorrelated jitter.
//!
//! The policy is deliberately tiny: a fixed attempt budget, a geometric
//! backoff schedule, and telemetry. It is shared by the worker pool
//! (re-running a panicked job), checkpoint IO (re-trying a failed
//! save), and the shard router (re-trying an idempotent read against a
//! recovering shard), so all report retries under the same
//! `resilience.retry.*` names.
//!
//! [`DecorrelatedJitter`] implements the AWS-architecture-blog
//! "decorrelated jitter" schedule: each sleep is drawn uniformly from
//! `[base, 3 × previous_sleep]`, clamped to the policy's cap. Many
//! clients retrying against one recovering server therefore spread out
//! instead of synchronizing into a thundering herd the way a plain
//! geometric schedule does.

use std::time::Duration;

/// A bounded exponential-backoff retry schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: usize,
    /// Sleep before the first retry.
    pub initial_backoff: Duration,
    /// Backoff multiplier per further retry.
    pub multiplier: u32,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 2,
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The sleep before retry number `retry` (1-based).
    pub fn backoff_for(&self, retry: usize) -> Duration {
        let factor = self
            .multiplier
            .saturating_pow(retry.saturating_sub(1).min(u32::MAX as usize) as u32);
        self.initial_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Runs `op(attempt)` (attempt is 0-based) until it succeeds or the
    /// attempt budget is exhausted, sleeping the backoff schedule between
    /// attempts. Returns the first success or the *last* error.
    ///
    /// Retries are counted under `resilience.retry.attempts`; an
    /// exhausted budget under `resilience.retry.exhausted`.
    pub fn run<T, E, F>(&self, label: &str, mut op: F) -> Result<T, E>
    where
        E: std::fmt::Display,
        F: FnMut(usize) -> Result<T, E>,
    {
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                taxorec_telemetry::counter("resilience.retry.attempts").inc(1);
                std::thread::sleep(self.backoff_for(attempt));
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    taxorec_telemetry::sink::warn(&format!(
                        "{label}: attempt {}/{attempts} failed: {e}",
                        attempt + 1
                    ));
                    last_err = Some(e);
                }
            }
        }
        taxorec_telemetry::counter("resilience.retry.exhausted").inc(1);
        Err(last_err.expect("at least one attempt ran"))
    }

    /// [`RetryPolicy::run`] with a [`DecorrelatedJitter`] schedule seeded
    /// by `seed`: the sleep before each retry is randomized so
    /// concurrent callers retrying against the same recovering resource
    /// fan out instead of arriving in lockstep. Bounds are unchanged —
    /// every sleep stays within `[initial_backoff, max_backoff]`.
    pub fn run_jittered<T, E, F>(&self, label: &str, seed: u64, mut op: F) -> Result<T, E>
    where
        E: std::fmt::Display,
        F: FnMut(usize) -> Result<T, E>,
    {
        let attempts = self.max_attempts.max(1);
        let mut jitter = DecorrelatedJitter::new(*self, seed);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                taxorec_telemetry::counter("resilience.retry.attempts").inc(1);
                std::thread::sleep(jitter.next_backoff());
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    taxorec_telemetry::sink::warn(&format!(
                        "{label}: attempt {}/{attempts} failed: {e}",
                        attempt + 1
                    ));
                    last_err = Some(e);
                }
            }
        }
        taxorec_telemetry::counter("resilience.retry.exhausted").inc(1);
        Err(last_err.expect("at least one attempt ran"))
    }
}

/// The decorrelated-jitter backoff schedule: sleep `n+1` is drawn
/// uniformly from `[base, 3 × sleep_n]` and clamped to the policy cap.
///
/// Deterministic given its seed (a splitmix64 generator drives the
/// draws), so tests can assert the exact envelope; production callers
/// seed from a per-request or per-thread value so concurrent schedules
/// decorrelate.
#[derive(Clone, Debug)]
pub struct DecorrelatedJitter {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: u64,
}

impl DecorrelatedJitter {
    /// A schedule bounded by `policy.initial_backoff` (floor) and
    /// `policy.max_backoff` (cap), seeded with `seed`.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        let base = policy.initial_backoff;
        Self {
            base,
            cap: policy.max_backoff.max(base),
            prev: base,
            rng: seed,
        }
    }

    /// splitmix64: tiny, seedable, and plenty uniform for spreading
    /// sleeps — this is jitter, not cryptography.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// The next sleep: uniform in `[base, 3 × previous]`, clamped to the
    /// cap. Always at least `base`, never above the cap.
    pub fn next_backoff(&mut self) -> Duration {
        let base_ns = self.base.as_nanos() as u64;
        let hi_ns = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .min(self.cap.as_nanos() as u64)
            .max(base_ns);
        let span = hi_ns - base_ns;
        let ns = if span == 0 {
            base_ns
        } else {
            base_ns + self.next_u64() % (span + 1)
        };
        self.prev = Duration::from_nanos(ns);
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_retry() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let r: Result<i32, String> = p.run("test", |_| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_success() {
        let p = RetryPolicy {
            initial_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let r: Result<i32, String> = p.run("test", |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(format!("boom {attempt}"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 3);
    }

    #[test]
    fn exhausts_and_returns_last_error() {
        let p = RetryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let r: Result<(), String> = p.run("test", |attempt| Err(format!("err {attempt}")));
        assert_eq!(r, Err("err 1".to_string()));
    }

    #[test]
    fn jitter_stays_inside_the_envelope() {
        let p = RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(2),
            multiplier: 2,
            max_backoff: Duration::from_millis(50),
        };
        for seed in 0..64u64 {
            let mut j = DecorrelatedJitter::new(p, seed);
            let mut prev = p.initial_backoff;
            for step in 0..32 {
                let s = j.next_backoff();
                assert!(
                    s >= p.initial_backoff,
                    "seed {seed} step {step}: {s:?} under the base floor"
                );
                assert!(
                    s <= p.max_backoff,
                    "seed {seed} step {step}: {s:?} over the cap"
                );
                assert!(
                    s <= (prev * 3).min(p.max_backoff).max(p.initial_backoff),
                    "seed {seed} step {step}: {s:?} exceeds 3× the previous sleep {prev:?}"
                );
                prev = s;
            }
        }
    }

    #[test]
    fn jitter_decorrelates_across_seeds_and_is_deterministic_per_seed() {
        let p = RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_micros(100),
            multiplier: 2,
            max_backoff: Duration::from_millis(100),
        };
        let draw = |seed: u64| -> Vec<Duration> {
            let mut j = DecorrelatedJitter::new(p, seed);
            (0..8).map(|_| j.next_backoff()).collect()
        };
        // Same seed → same schedule (tests can rely on it).
        assert_eq!(draw(7), draw(7));
        // Different seeds must not produce identical schedules — that is
        // the thundering-herd failure mode this exists to break.
        let distinct: std::collections::HashSet<Vec<Duration>> = (0..16).map(draw).collect();
        assert!(
            distinct.len() > 12,
            "only {} distinct schedules across 16 seeds",
            distinct.len()
        );
    }

    #[test]
    fn run_jittered_retries_and_exhausts_like_run() {
        let p = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::ZERO,
            multiplier: 2,
            max_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let r: Result<i32, String> = p.run_jittered("test", 1, |attempt| {
            calls += 1;
            if attempt < 1 {
                Err("boom".to_string())
            } else {
                Ok(9)
            }
        });
        assert_eq!(r, Ok(9));
        assert_eq!(calls, 2);
        let r: Result<(), String> = p.run_jittered("test", 2, |a| Err(format!("err {a}")));
        assert_eq!(r, Err("err 2".to_string()));
    }

    #[test]
    fn backoff_schedule_is_geometric_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(2),
            multiplier: 2,
            max_backoff: Duration::from_millis(10),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3), Duration::from_millis(8));
        assert_eq!(p.backoff_for(4), Duration::from_millis(10), "capped");
        assert_eq!(p.backoff_for(100), Duration::from_millis(10));
    }
}
