//! Bounded retry with exponential backoff.
//!
//! The policy is deliberately tiny: a fixed attempt budget, a geometric
//! backoff schedule, and telemetry. It is shared by the worker pool
//! (re-running a panicked job) and checkpoint IO (re-trying a failed
//! save), so both report retries under the same `resilience.retry.*`
//! names.

use std::time::Duration;

/// A bounded exponential-backoff retry schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: usize,
    /// Sleep before the first retry.
    pub initial_backoff: Duration,
    /// Backoff multiplier per further retry.
    pub multiplier: u32,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 2,
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The sleep before retry number `retry` (1-based).
    pub fn backoff_for(&self, retry: usize) -> Duration {
        let factor = self
            .multiplier
            .saturating_pow(retry.saturating_sub(1).min(u32::MAX as usize) as u32);
        self.initial_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Runs `op(attempt)` (attempt is 0-based) until it succeeds or the
    /// attempt budget is exhausted, sleeping the backoff schedule between
    /// attempts. Returns the first success or the *last* error.
    ///
    /// Retries are counted under `resilience.retry.attempts`; an
    /// exhausted budget under `resilience.retry.exhausted`.
    pub fn run<T, E, F>(&self, label: &str, mut op: F) -> Result<T, E>
    where
        E: std::fmt::Display,
        F: FnMut(usize) -> Result<T, E>,
    {
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                taxorec_telemetry::counter("resilience.retry.attempts").inc(1);
                std::thread::sleep(self.backoff_for(attempt));
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    taxorec_telemetry::sink::warn(&format!(
                        "{label}: attempt {}/{attempts} failed: {e}",
                        attempt + 1
                    ));
                    last_err = Some(e);
                }
            }
        }
        taxorec_telemetry::counter("resilience.retry.exhausted").inc(1);
        Err(last_err.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_retry() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let r: Result<i32, String> = p.run("test", |_| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_success() {
        let p = RetryPolicy {
            initial_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let r: Result<i32, String> = p.run("test", |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(format!("boom {attempt}"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 3);
    }

    #[test]
    fn exhausts_and_returns_last_error() {
        let p = RetryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let r: Result<(), String> = p.run("test", |attempt| Err(format!("err {attempt}")));
        assert_eq!(r, Err("err 1".to_string()));
    }

    #[test]
    fn backoff_schedule_is_geometric_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(2),
            multiplier: 2,
            max_backoff: Duration::from_millis(10),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3), Duration::from_millis(8));
        assert_eq!(p.backoff_for(4), Duration::from_millis(10), "capped");
        assert_eq!(p.backoff_for(100), Duration::from_millis(10));
    }
}
