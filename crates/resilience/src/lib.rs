//! # taxorec-resilience
//!
//! The workspace's failure-testing and recovery toolkit:
//!
//! * [`fault`] — a deterministic fault-injection harness driven by the
//!   `TAXOREC_FAULT` environment variable. Production code plants named
//!   *sites* (`parallel.job`, `train.epoch`, `checkpoint.save`, …) on its
//!   failure paths; a spec such as
//!   `panic@parallel.job:17,nan@train.epoch:5,io@checkpoint.save:2`
//!   arms exactly one invocation of each site, so every recovery path in
//!   the workspace is testable and bit-reproducible.
//! * [`retry`] — bounded retry with exponential backoff and
//!   decorrelated jitter, shared by the worker pool, checkpoint IO, and
//!   the shard router.
//!
//! With `TAXOREC_FAULT` unset the probe fast-path is a single relaxed
//! atomic load — the harness costs nothing in production.
//!
//! Every injected fault and every retry feeds the shared
//! [`taxorec_telemetry`] registry under `resilience.*`.

pub mod fault;
pub mod retry;

pub use fault::{
    disable, inject_io, inject_nan, inject_panic, inject_panic_or_stall, inject_stall, install,
    probe, reset, stall_duration, FaultEntry, FaultKind, FaultSpec, FaultSpecError,
};
pub use retry::{DecorrelatedJitter, RetryPolicy};
