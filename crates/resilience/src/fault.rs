//! The `TAXOREC_FAULT` fault-injection harness.
//!
//! ## Spec grammar
//!
//! ```text
//! spec    := entry (',' entry)*
//! entry   := kind '@' site [':' ordinal] ['+']
//! kind    := 'panic' | 'nan' | 'io' | 'stall'
//! site    := dotted identifier, e.g. parallel.job, train.epoch
//! ordinal := 1-based invocation count at which the fault fires (default 1)
//! ```
//!
//! Each *site* keeps a process-wide invocation counter, incremented every
//! time the code path probes it. An entry `panic@parallel.job:17` fires on
//! exactly the 17th probe of `parallel.job`; with a trailing `+`
//! (`io@checkpoint.save:2+`) it fires on every probe from the 17th on.
//! Because the counters are deterministic functions of the program's
//! control flow, a fault spec reproduces the same failure at the same
//! point on every run.
//!
//! ## Sites planted in the workspace
//!
//! | site              | kind(s) honoured | effect                               |
//! |-------------------|------------------|--------------------------------------|
//! | `parallel.job`    | `panic`          | pool job panics (probed per job)     |
//! | `train.epoch`     | `nan`            | every batch loss in the epoch is NaN |
//! | `checkpoint.save` | `io`             | checkpoint write fails               |
//! | `serve.request`   | `panic`          | HTTP worker panics mid-request       |
//! | `serve.batch`     | `panic`, `stall` | scorer batch panics / stalls         |
//! | `serve.spawn`     | `io`             | one server worker fails to spawn     |
//!
//! `stall` puts the probing thread to sleep for
//! `TAXOREC_FAULT_STALL_MS` milliseconds (default 100) — the
//! deterministic way to wedge a pipeline stage and observe backpressure
//! (queue growth, load shedding) without relying on timing races.
//!
//! A kind that a site does not honour is counted and warned about, never
//! silently dropped.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// What kind of failure an armed entry injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The site panics (unwind).
    Panic,
    /// The site poisons its numeric result with NaN.
    Nan,
    /// The site fails with an I/O error.
    Io,
    /// The site sleeps for `TAXOREC_FAULT_STALL_MS` ms (default 100).
    Stall,
}

impl FaultKind {
    /// The spec keyword for this kind.
    pub fn name(self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::Nan => "nan",
            Self::Io => "io",
            Self::Stall => "stall",
        }
    }
}

/// One armed fault: `kind@site:ordinal[+]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEntry {
    /// Failure kind to inject.
    pub kind: FaultKind,
    /// Site the entry arms.
    pub site: String,
    /// 1-based probe ordinal at which it fires.
    pub at: u64,
    /// Fire on every probe `>= at` instead of exactly at it.
    pub repeat: bool,
}

/// A parsed `TAXOREC_FAULT` specification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// The armed entries, in spec order.
    pub entries: Vec<FaultEntry>,
}

/// Why a spec string failed to parse (the offending entry is quoted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid TAXOREC_FAULT spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultSpec {
    /// Parses a comma-separated spec string. Empty input parses to the
    /// empty (inert) spec.
    pub fn parse(s: &str) -> Result<Self, FaultSpecError> {
        let mut entries = Vec::new();
        for raw in s.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind_s, rest) = raw.split_once('@').ok_or_else(|| {
                FaultSpecError(format!("{raw:?} has no '@' (expected kind@site[:n][+])"))
            })?;
            let kind = match kind_s {
                "panic" => FaultKind::Panic,
                "nan" => FaultKind::Nan,
                "io" => FaultKind::Io,
                "stall" => FaultKind::Stall,
                other => {
                    return Err(FaultSpecError(format!(
                        "unknown fault kind {other:?} in {raw:?} (panic|nan|io|stall)"
                    )))
                }
            };
            let (rest, repeat) = match rest.strip_suffix('+') {
                Some(r) => (r, true),
                None => (rest, false),
            };
            let (site, at) = match rest.split_once(':') {
                None => (rest, 1),
                Some((site, n)) => {
                    let at: u64 = n.parse().map_err(|_| {
                        FaultSpecError(format!("ordinal {n:?} in {raw:?} is not an integer"))
                    })?;
                    if at == 0 {
                        return Err(FaultSpecError(format!(
                            "ordinal in {raw:?} is 1-based; 0 never fires"
                        )));
                    }
                    (site, at)
                }
            };
            if site.is_empty()
                || !site
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-')
            {
                return Err(FaultSpecError(format!("bad site name in {raw:?}")));
            }
            entries.push(FaultEntry {
                kind,
                site: site.to_string(),
                at,
                repeat,
            });
        }
        Ok(Self { entries })
    }

    /// True when no entries are armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// Fast-path switch: probes return immediately while the harness is off.
const MODE_UNRESOLVED: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_ON: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNRESOLVED);

struct Active {
    spec: FaultSpec,
    counts: HashMap<String, u64>,
}

static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

fn lock_active() -> std::sync::MutexGuard<'static, Option<Active>> {
    // A panic *we* injected may have unwound through this lock; the data
    // is a counter table, always valid.
    ACTIVE.lock().unwrap_or_else(|e| e.into_inner())
}

fn resolve_from_env() {
    let mut g = lock_active();
    if MODE.load(Ordering::Acquire) != MODE_UNRESOLVED {
        return; // raced with another resolver or an explicit install
    }
    let spec = match std::env::var("TAXOREC_FAULT") {
        Ok(raw) if !raw.trim().is_empty() => match FaultSpec::parse(&raw) {
            Ok(s) => s,
            Err(e) => {
                // A typo in the spec must not silently disable the test
                // it was written for.
                panic!("{e}");
            }
        },
        _ => FaultSpec::default(),
    };
    if spec.is_empty() {
        MODE.store(MODE_OFF, Ordering::Release);
    } else {
        *g = Some(Active {
            spec,
            counts: HashMap::new(),
        });
        MODE.store(MODE_ON, Ordering::Release);
    }
}

/// Arms `spec` for this process, replacing the environment-derived one and
/// resetting all site counters (the in-process test hook).
pub fn install(spec: FaultSpec) {
    let mut g = lock_active();
    if spec.is_empty() {
        *g = None;
        MODE.store(MODE_OFF, Ordering::Release);
    } else {
        *g = Some(Active {
            spec,
            counts: HashMap::new(),
        });
        MODE.store(MODE_ON, Ordering::Release);
    }
}

/// Disarms the harness entirely (probes become a single atomic load).
pub fn disable() {
    install(FaultSpec::default());
}

/// Clears counters and re-resolves from `TAXOREC_FAULT` on the next probe.
pub fn reset() {
    let mut g = lock_active();
    *g = None;
    MODE.store(MODE_UNRESOLVED, Ordering::Release);
}

/// Probes `site`: increments its invocation counter and returns the kind
/// of the fault armed for this exact invocation, if any.
///
/// Call sites handle the kinds they can express and pass the result to
/// nothing else; an unexpected kind should be surfaced with
/// [`unsupported`] rather than ignored.
pub fn probe(site: &str) -> Option<FaultKind> {
    match MODE.load(Ordering::Acquire) {
        MODE_OFF => return None,
        MODE_UNRESOLVED => resolve_from_env(),
        _ => {}
    }
    if MODE.load(Ordering::Acquire) != MODE_ON {
        return None;
    }
    let kind = {
        let mut g = lock_active();
        let active = g.as_mut()?;
        let count = active.counts.entry(site.to_string()).or_insert(0);
        *count += 1;
        let n = *count;
        active
            .spec
            .entries
            .iter()
            .find(|e| e.site == site && if e.repeat { n >= e.at } else { n == e.at })
            .map(|e| e.kind)?
    };
    taxorec_telemetry::counter("resilience.fault.injected").inc(1);
    taxorec_telemetry::sink::warn(&format!(
        "fault injection: firing {}@{site} (armed via TAXOREC_FAULT)",
        kind.name()
    ));
    Some(kind)
}

/// Records that `site` fired a kind it cannot express (counted, warned).
pub fn unsupported(site: &str, kind: FaultKind) {
    taxorec_telemetry::counter("resilience.fault.unsupported").inc(1);
    taxorec_telemetry::sink::warn(&format!(
        "fault injection: site {site} cannot express kind {:?}; ignoring",
        kind.name()
    ));
}

/// Probes `site` and panics when a `panic` fault is armed for this
/// invocation. The panic message is stable (`fault injected: panic@site`)
/// so recovery layers can recognise injected failures in tests.
pub fn inject_panic(site: &str) {
    match probe(site) {
        Some(FaultKind::Panic) => panic!("fault injected: panic@{site}"),
        Some(other) => unsupported(site, other),
        None => {}
    }
}

/// Probes `site`; true when a `nan` fault is armed for this invocation.
pub fn inject_nan(site: &str) -> bool {
    match probe(site) {
        Some(FaultKind::Nan) => true,
        Some(other) => {
            unsupported(site, other);
            false
        }
        None => false,
    }
}

/// The `stall` sleep duration: `TAXOREC_FAULT_STALL_MS` ms, default 100.
pub fn stall_duration() -> std::time::Duration {
    let ms = std::env::var("TAXOREC_FAULT_STALL_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(100u64);
    std::time::Duration::from_millis(ms)
}

/// Probes `site` and sleeps for [`stall_duration`] when a `stall` fault
/// is armed for this invocation. Returns true when it stalled.
pub fn inject_stall(site: &str) -> bool {
    match probe(site) {
        Some(FaultKind::Stall) => {
            std::thread::sleep(stall_duration());
            true
        }
        Some(other) => {
            unsupported(site, other);
            false
        }
        None => false,
    }
}

/// Probes `site` once and handles both the kinds a pipeline stage can
/// express: `panic` unwinds, `stall` sleeps, anything else is reported
/// as unsupported. One probe means one counter increment, so ordinals
/// stay deterministic for sites honouring multiple kinds.
pub fn inject_panic_or_stall(site: &str) {
    match probe(site) {
        Some(FaultKind::Panic) => panic!("fault injected: panic@{site}"),
        Some(FaultKind::Stall) => std::thread::sleep(stall_duration()),
        Some(other) => unsupported(site, other),
        None => {}
    }
}

/// Probes `site`; `Some(message)` when an `io` fault is armed for this
/// invocation — the caller turns it into its own I/O error type.
pub fn inject_io(site: &str) -> Option<String> {
    match probe(site) {
        Some(FaultKind::Io) => Some(format!("fault injected: io@{site}")),
        Some(other) => {
            unsupported(site, other);
            None
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global harness.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_the_issue_examples() {
        let s = FaultSpec::parse("panic@parallel.job:17,nan@train.epoch:5,io@checkpoint.save:2")
            .unwrap();
        assert_eq!(s.entries.len(), 3);
        assert_eq!(s.entries[0].kind, FaultKind::Panic);
        assert_eq!(s.entries[0].site, "parallel.job");
        assert_eq!(s.entries[0].at, 17);
        assert!(!s.entries[0].repeat);
        assert_eq!(s.entries[2].kind, FaultKind::Io);
    }

    #[test]
    fn parses_defaults_and_repeat() {
        let s = FaultSpec::parse("panic@a.b, io@c:3+").unwrap();
        assert_eq!(s.entries[0].at, 1);
        assert!(s.entries[1].repeat);
        assert!(FaultSpec::parse("").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "panic",
            "boom@site",
            "panic@site:zero",
            "panic@site:0",
            "panic@:1",
            "panic@we!rd",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn fires_on_the_exact_ordinal() {
        let _g = lock();
        install(FaultSpec::parse("nan@t.site:3").unwrap());
        assert!(!inject_nan("t.site"));
        assert!(!inject_nan("t.site"));
        assert!(inject_nan("t.site"), "third probe fires");
        assert!(!inject_nan("t.site"), "one-shot: fourth probe is clean");
        disable();
    }

    #[test]
    fn repeat_fires_from_ordinal_on() {
        let _g = lock();
        install(FaultSpec::parse("io@t.rep:2+").unwrap());
        assert!(inject_io("t.rep").is_none());
        assert!(inject_io("t.rep").is_some());
        assert!(inject_io("t.rep").is_some());
        disable();
    }

    #[test]
    fn sites_count_independently() {
        let _g = lock();
        install(FaultSpec::parse("nan@t.a:2,nan@t.b:1").unwrap());
        assert!(inject_nan("t.b"), "t.b fires on its own first probe");
        assert!(!inject_nan("t.a"));
        assert!(inject_nan("t.a"));
        disable();
    }

    #[test]
    fn inject_panic_panics_with_stable_message() {
        let _g = lock();
        install(FaultSpec::parse("panic@t.p:1").unwrap());
        let err = std::panic::catch_unwind(|| inject_panic("t.p")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fault injected: panic@t.p"), "{msg}");
        disable();
    }

    #[test]
    fn stall_parses_and_sleeps_on_its_ordinal() {
        let _g = lock();
        let s = FaultSpec::parse("stall@t.stall:2").unwrap();
        assert_eq!(s.entries[0].kind, FaultKind::Stall);
        install(s);
        let t0 = std::time::Instant::now();
        assert!(!inject_stall("t.stall"), "first probe clean");
        assert!(t0.elapsed() < stall_duration(), "no sleep on a clean probe");
        let t1 = std::time::Instant::now();
        assert!(inject_stall("t.stall"), "second probe stalls");
        assert!(t1.elapsed() >= stall_duration());
        disable();
    }

    #[test]
    fn panic_or_stall_handles_both_kinds_with_one_probe_each() {
        let _g = lock();
        install(FaultSpec::parse("stall@t.ps:1,panic@t.ps:2").unwrap());
        let t0 = std::time::Instant::now();
        inject_panic_or_stall("t.ps");
        assert!(t0.elapsed() >= stall_duration(), "first probe stalls");
        let err = std::panic::catch_unwind(|| inject_panic_or_stall("t.ps")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fault injected: panic@t.ps"), "{msg}");
        inject_panic_or_stall("t.ps"); // third probe: clean
        disable();
    }

    #[test]
    fn disabled_probe_is_inert() {
        let _g = lock();
        disable();
        for _ in 0..100 {
            assert!(probe("t.off").is_none());
        }
    }
}
