//! Serving through the retrieval index, end to end: the optional index
//! section round-trips bit-for-bit, index-less artifacts keep the exact
//! pre-index byte layout (old files load and serve exhaustively), full
//! beam width reproduces exhaustive rankings bit-identically through the
//! whole serving stack, and `/healthz` reports the index.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_serve::{
    Checkpoint, CheckpointError, IndexConfig, RetrievalMode, ServingModel, FLAG_RETRIEVAL_INDEX,
};

fn trained_checkpoint() -> Checkpoint {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = 4;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    Checkpoint::from_model(&model)
        .with_dataset(&dataset)
        .with_seen_items(&split.train)
}

/// An index small enough that the tiny synthetic catalogue actually
/// splits into several leaves.
fn small_index() -> IndexConfig {
    IndexConfig {
        max_leaf: 16,
        branch: 4,
        beam: 2,
        ..IndexConfig::default()
    }
}

#[test]
fn index_section_round_trips_bit_for_bit() {
    let ckpt = trained_checkpoint()
        .with_retrieval_index(&small_index())
        .expect("index build");
    let parts = ckpt.index.clone().expect("index present");
    assert!(parts.n_leaves() > 1, "catalogue split into several leaves");

    let bytes = ckpt.to_bytes();
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    assert_eq!(flags, FLAG_RETRIEVAL_INDEX, "index flag set in the header");

    let reloaded = Checkpoint::from_bytes(&bytes).expect("round trip");
    assert_eq!(reloaded.index.as_ref(), Some(&parts), "structure preserved");
    assert_eq!(reloaded.to_bytes(), bytes, "byte-level round trip");
}

#[test]
fn artifact_without_index_keeps_the_old_format_and_serves_exhaustively() {
    let ckpt = trained_checkpoint();
    let bytes = ckpt.to_bytes();
    // No index ⇒ header flags are zero ⇒ the artifact is byte-identical
    // to what the pre-index format wrote; conversely, a pre-index file
    // is exactly these bytes, so this also proves old artifacts load.
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    assert_eq!(flags, 0, "no index ⇒ legacy byte layout");

    let reloaded = Checkpoint::from_bytes(&bytes).expect("legacy artifact loads");
    assert!(reloaded.index.is_none());
    let model = ServingModel::new(reloaded).expect("engine");
    assert_eq!(model.retrieval_mode(), RetrievalMode::Exact);
    assert!(model.retrieval_index().is_none());
    assert!(!model
        .recommend(0, 5)
        .expect("exhaustive path works")
        .is_empty());
    // Beam mode is refused up front, not at query time.
    let reloaded = Checkpoint::from_bytes(&bytes).unwrap();
    match ServingModel::new(reloaded)
        .unwrap()
        .with_retrieval(RetrievalMode::Beam(0))
    {
        Err(CheckpointError::Invalid(_)) => {}
        Err(e) => panic!("wrong error kind: {e}"),
        Ok(_) => panic!("beam mode accepted without an index"),
    }
}

#[test]
fn full_beam_serving_is_bit_identical_to_exact() {
    let ckpt = trained_checkpoint()
        .with_retrieval_index(&small_index())
        .expect("index build");
    let n_leaves = ckpt.index.as_ref().unwrap().n_leaves();
    let n_users = ckpt.state.n_users();

    let exact = ServingModel::new(ckpt.clone()).unwrap();
    let beam = ServingModel::new(ckpt)
        .unwrap()
        .with_retrieval(RetrievalMode::Beam(n_leaves))
        .expect("index present");
    for user in 0..n_users as u32 {
        let want = exact.recommend(user, 10).unwrap();
        let got = beam.recommend(user, 10).unwrap();
        assert_eq!(want.len(), got.len(), "user {user}");
        for (a, b) in want.iter().zip(got.iter()) {
            assert_eq!(a.0, b.0, "user {user}: item mismatch");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "user {user}: score bits");
        }
    }
}

#[test]
fn batched_beam_queries_match_single_beam_queries() {
    let ckpt = trained_checkpoint()
        .with_retrieval_index(&small_index())
        .expect("index build");
    let n_users = ckpt.state.n_users();
    let beam = ServingModel::new(ckpt.clone())
        .unwrap()
        .with_retrieval(RetrievalMode::Beam(2))
        .unwrap();
    // Mixed k exercises the k_max-then-truncate path.
    let queries: Vec<(u32, usize)> = (0..n_users as u32)
        .map(|u| (u, 1 + (u as usize % 9)))
        .collect();
    let got = beam.recommend_many(&queries);
    // Fresh engine so every reference query runs the single path.
    let reference = ServingModel::new(ckpt)
        .unwrap()
        .with_retrieval(RetrievalMode::Beam(2))
        .unwrap();
    for (&(u, k), res) in queries.iter().zip(&got) {
        let want = reference.recommend(u, k).unwrap();
        let have = res.as_ref().unwrap();
        assert_eq!(have.len(), want.len(), "user {u} k {k}");
        for (a, b) in have.iter().zip(want.iter()) {
            assert_eq!(a.0, b.0, "user {u} k {k}: item mismatch");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "user {u} k {k}: score bits");
        }
    }
}

/// One GET over a raw socket; returns (status, full raw response).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

#[test]
fn healthz_reports_retrieval_index_and_mode() {
    let ckpt = trained_checkpoint()
        .with_retrieval_index(&small_index())
        .expect("index build");
    let n_leaves = ckpt.index.as_ref().unwrap().n_leaves();
    let model = ServingModel::new(ckpt)
        .unwrap()
        .with_retrieval(RetrievalMode::Beam(2))
        .unwrap();
    let handle = taxorec_serve::serve(Arc::new(model), "127.0.0.1:0", 2).expect("bind");
    let addr = handle.local_addr();

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "healthz up: {body}");
    assert!(
        body.contains("\"retrieval\":{\"mode\":\"beam:2\""),
        "{body}"
    );
    assert!(
        body.contains(&format!("\"leaves\":{n_leaves}")),
        "index stats present: {body}"
    );

    // A beam recommendation over HTTP populates the telemetry series.
    let (status, _) = http_get(addr, "/recommend?user=0&k=5");
    assert_eq!(status, 200);
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("serve_retrieval_candidates"),
        "candidates counter exported: {metrics}"
    );
    assert!(
        metrics.contains("serve_retrieval_recall_mode"),
        "recall-mode gauge exported: {metrics}"
    );
    handle.shutdown();
}
