//! Flight-recorder incident capture over a live server: an injected
//! `serve.request` panic produces a 500 for the client *and* a flight
//! dump file on disk, and the ring stays queryable via `/debug/flight`.
//!
//! The recorder (ring, dump throttle) is process-global, so this lives
//! in its own integration-test binary.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_resilience::{disable, install, FaultSpec};
use taxorec_serve::{serve_with, ServeOptions, ServingModel};
use taxorec_telemetry::flight;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn serving_model() -> ServingModel {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = 2;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    ServingModel::from_model(&model, &dataset, &split).expect("snapshot")
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

#[test]
fn injected_panic_writes_a_flight_dump_and_debug_flight_stays_up() {
    let _g = lock();
    let dump_dir = std::env::temp_dir().join(format!("taxorec-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).expect("mkdir");
    flight::set_dump_dir(&dump_dir);

    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 1,
            io_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // Healthy request first, so the ring has pre-incident history.
    let (status, body) = http_get(addr, "/recommend?user=0&k=3");
    assert_eq!(status, 200, "{body}");

    install(FaultSpec::parse("panic@serve.request:1").expect("spec"));
    let (status, response) = http_get(addr, "/recommend?user=1&k=3");
    assert_eq!(status, 500, "{response}");
    disable();

    // The dump is written before the 500 goes out, so it exists by now.
    let dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&dump_dir)
        .expect("read dump dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| {
                    n.to_string_lossy()
                        .starts_with("flight-serve.request.panic-")
                })
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(dumps.len(), 1, "one dump file: {dumps:?}");
    let text = std::fs::read_to_string(&dumps[0]).expect("read dump");
    assert!(
        taxorec_telemetry::json::is_valid_json(text.trim()),
        "{text}"
    );
    assert!(
        text.contains("\"reason\":\"serve.request.panic\""),
        "{text}"
    );
    // The healthy request before the incident is in the captured ring.
    assert!(text.contains("\"kind\":\"serve.request\""), "{text}");
    assert!(text.contains("\"kind\":\"serve.panic\""), "{text}");

    // The live ring stays queryable after the incident.
    let (status, response) = http_get(addr, "/debug/flight");
    assert_eq!(status, 200, "{response}");
    let json = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("body after headers");
    assert!(
        taxorec_telemetry::json::is_valid_json(json.trim()),
        "{json}"
    );
    assert!(json.contains("\"events\":["), "{json}");
    assert!(json.contains("serve.panic"), "{json}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dump_dir);
}
