//! Process-level chaos drill for the sharded tier (DESIGN.md §16): a
//! real `taxorec-router` process fronting four real `taxorec-serve`
//! shard processes, one of which is SIGKILLed while client threads are
//! mid-load. The contract under test is the tentpole claim: the fleet
//! stays available (no client-visible failures) and every answer stays
//! **byte-identical** to the single-process reference, because every
//! shard serves the same artifact and the ring only decides locality.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use taxorec_serve::Ring;

const BIN: &str = env!("CARGO_BIN_EXE_taxorec-serve");
const ROUTER_BIN: &str = env!("CARGO_BIN_EXE_taxorec-router");
const N_SHARDS: usize = 4;
const N_USERS: u32 = 24;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("taxorec-chaos-{}-{name}", std::process::id()))
}

/// Trains the shared tiny artifact exactly once per test process.
fn artifact() -> &'static PathBuf {
    static ARTIFACT: OnceLock<PathBuf> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        let path = tmp("fleet.taxo");
        let out = Command::new(BIN)
            .args(["train-demo", path.to_str().unwrap(), "--epochs", "2"])
            .env_remove("TAXOREC_FAULT")
            .env_remove("TAXOREC_EPOCH_SLEEP_MS")
            .output()
            .expect("spawn train-demo");
        assert!(
            out.status.success(),
            "train-demo failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        path
    })
}

/// A spawned server process plus the stdin handle that keeps it alive
/// (both binaries run until stdin closes or a signal arrives).
struct Proc {
    child: Child,
    _stdin: ChildStdin,
    addr: SocketAddr,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the command and blocks until it prints its
/// `listening on http://ADDR` startup line.
fn spawn_server(mut cmd: Command) -> Proc {
    let mut child = cmd
        .env_remove("TAXOREC_FAULT")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn server process");
    let stdin = child.stdin.take().expect("stdin handle");
    let stdout = child.stdout.take().expect("stdout handle");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            let addr = rest.split_whitespace().next().expect("address token");
            break addr.parse().expect("parse announced address");
        }
    };
    // Drain any later output so the pipe can never block the server.
    std::thread::spawn(move || for _ in lines {});
    Proc {
        child,
        _stdin: stdin,
        addr,
    }
}

fn spawn_shard(idx: usize) -> Proc {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "serve",
        artifact().to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--shard-id",
    ])
    .arg(format!("shard-{idx}"));
    spawn_server(cmd)
}

fn spawn_router(shards: &[SocketAddr]) -> Proc {
    let list = shards
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut cmd = Command::new(ROUTER_BIN);
    cmd.args(["--shards", &list, "--addr", "127.0.0.1:0"])
        .env("TAXOREC_ROUTER_PROBE_MS", "100");
    spawn_server(cmd)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn fleet_survives_sigkill_of_a_shard_with_bit_identical_answers() {
    let mut shards: Vec<Proc> = (0..N_SHARDS).map(spawn_shard).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    let router = spawn_router(&addrs);

    // Single-process reference: shard 0 queried directly. Every shard
    // loads the same artifact, so this is the fleet's ground truth.
    let mut expected = Vec::new();
    for u in 0..N_USERS {
        let (status, body) = http_get(addrs[0], &format!("/recommend?user={u}&k=5"));
        assert_eq!(status, 200, "reference query failed for user {u}");
        expected.push(body);
    }
    let expected = Arc::new(expected);

    // Pick a victim that owns live traffic, so the kill actually forces
    // failover rather than hitting an idle shard.
    let ring = Ring::new(N_SHARDS);
    let victim = ring.owner(0) as usize;
    assert!(
        (0..N_USERS)
            .filter(|&u| ring.owner(u) == victim as u32)
            .count()
            > 1,
        "victim shard owns too little of the keyspace for a meaningful kill"
    );

    // Open-loop chaos load: four client threads hammer the router while
    // the victim is SIGKILLed. Zero tolerance: every response must be a
    // 200 with the exact reference body.
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicUsize::new(0));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let router_addr = router.addr;
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            let failures = Arc::clone(&failures);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut u = t as u32;
                while !stop.load(Ordering::SeqCst) {
                    let user = u % N_USERS;
                    let (status, body) =
                        http_get(router_addr, &format!("/recommend?user={user}&k=5"));
                    requests.fetch_add(1, Ordering::SeqCst);
                    if status != 200 {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("user {user}: status {status}: {body}"));
                    } else if body != expected[user as usize] {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("user {user}: body diverged from reference"));
                    }
                    u = u.wrapping_add(4);
                }
            })
        })
        .collect();

    // Let the load establish, then SIGKILL the victim mid-flight — no
    // drain, no unwind, the hardest death the fleet can see.
    std::thread::sleep(Duration::from_millis(300));
    shards[victim].child.kill().expect("SIGKILL victim shard");
    shards[victim].child.wait().expect("reap victim");
    std::thread::sleep(Duration::from_millis(700));
    stop.store(true, Ordering::SeqCst);
    for c in clients {
        c.join().unwrap();
    }

    let failures = failures.lock().unwrap();
    assert!(
        failures.is_empty(),
        "{} of {} requests failed during the kill:\n{}",
        failures.len(),
        requests.load(Ordering::SeqCst),
        failures.join("\n")
    );
    assert!(
        requests.load(Ordering::SeqCst) >= 20,
        "load generator barely ran ({} requests)",
        requests.load(Ordering::SeqCst)
    );

    // The router's fleet view converges on the loss: victim down,
    // overall status degraded, remaining shards still ready.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = http_get(router_addr, "/healthz");
        assert_eq!(status, 200);
        if body.contains("\"state\":\"down\"") && body.contains(&format!("\"up\":{}", N_SHARDS - 1))
        {
            assert!(body.contains("\"status\":\"degraded\""), "{body}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never marked the killed shard down: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Users owned by the dead shard remain available afterwards, still
    // byte-identical, and are answered by a surviving shard.
    for u in (0..N_USERS).filter(|&u| ring.owner(u) == victim as u32) {
        let (status, body) = http_get(router_addr, &format!("/recommend?user={u}&k=5"));
        assert_eq!(status, 200, "user {u} lost after shard death");
        assert_eq!(
            body, expected[u as usize],
            "user {u} diverged after failover"
        );
    }
}

#[test]
fn shard_process_drains_gracefully_on_sigterm() {
    let shard = spawn_shard(9);
    let (status, _) = http_get(shard.addr, "/healthz");
    assert_eq!(status, 200);

    // SIGTERM via kill(2) — std has no API for it, but the pid is ours.
    let pid = shard.child.id() as i32;
    let rc = unsafe { libc_kill(pid, 15) };
    assert_eq!(rc, 0, "kill(SIGTERM) failed");

    // The process must exit on its own (graceful drain path), well
    // within the default 300 ms grace plus margin — not hang, not
    // require SIGKILL.
    let mut shard = shard;
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = shard.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "shard ignored SIGTERM (still running after 10s)"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "drain exit was not clean: {status:?}");
}

extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}
