//! End-to-end trace propagation over a live server and a raw client
//! socket: every response carries an `x-taxorec-trace` header, and a
//! sampled `/recommend` request exports a Chrome trace-event JSON file
//! whose spans share one trace id and form a single rooted tree
//! (http → queue / cache / score → kernel / respond).
//!
//! The trace exporter is process-global, so the tests serialize on one
//! lock and live in their own integration-test binary (their own
//! process) to stay isolated from the other serve tests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_serve::{serve_with, ServeOptions, ServingModel};
use taxorec_telemetry::trace;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn serving_model() -> ServingModel {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = 2;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    ServingModel::from_model(&model, &dataset, &split).expect("snapshot")
}

/// One GET over a raw socket; returns (status, full raw response
/// including headers).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

/// The `x-taxorec-trace` header value from a raw response.
fn trace_header(response: &str) -> Option<&str> {
    response
        .lines()
        .find_map(|l| l.strip_prefix("x-taxorec-trace: "))
        .map(str::trim)
}

#[test]
fn every_response_carries_a_trace_header() {
    let _g = lock();
    trace::disable();
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            io_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    let mut ids = Vec::new();
    for target in ["/recommend?user=0&k=3", "/healthz", "/nope", "/recommend"] {
        let (_status, response) = http_get(addr, target);
        let id = trace_header(&response)
            .unwrap_or_else(|| panic!("no x-taxorec-trace header on {target}:\n{response}"));
        assert_eq!(id.len(), 16, "16 hex digits: {id:?}");
        assert!(
            id.chars().all(|c| c.is_ascii_hexdigit()),
            "hex trace id: {id:?}"
        );
        assert_ne!(id, "0000000000000000", "real id even when unsampled");
        ids.push(id.to_string());
    }
    let unique: std::collections::HashSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "distinct per request: {ids:?}");

    handle.shutdown();
}

/// One exported trace event, parsed from its JSON line.
struct SpanEvent {
    name: String,
    trace: String,
    span: String,
    parent: String,
}

fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn parse_events(text: &str) -> Vec<SpanEvent> {
    text.lines()
        .filter(|l| l.contains("\"ph\":\"X\""))
        .map(|l| SpanEvent {
            name: field(l, "name").expect("name"),
            trace: field(l, "trace").expect("trace"),
            span: field(l, "span").expect("span"),
            parent: field(l, "parent").expect("parent"),
        })
        .collect()
}

#[test]
fn sampled_recommend_request_exports_one_rooted_span_tree() {
    let _g = lock();
    // Train BEFORE arming the exporter: fit_controlled mints its own
    // trace and would otherwise consume the sampling slot / add spans.
    let model = serving_model();
    let path =
        std::env::temp_dir().join(format!("taxorec-tracing-test-{}.json", std::process::id()));
    trace::install_file_exporter(path.to_str().unwrap());
    trace::set_sample_every(1);

    let handle = serve_with(
        Arc::new(model),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 1,
            io_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();
    let (status, response) = http_get(addr, "/recommend?user=0&k=5");
    assert_eq!(status, 200, "{response}");
    let header_id = trace_header(&response).expect("trace header").to_string();
    handle.shutdown();

    let written = trace::flush().expect("flush");
    let text = std::fs::read_to_string(&written).expect("read export");
    assert!(
        taxorec_telemetry::json::is_valid_json(text.trim()),
        "{text}"
    );
    let events = parse_events(&text);
    trace::disable();
    let _ = std::fs::remove_file(&path);

    // Every span belongs to the one trace the client saw in its header.
    assert!(!events.is_empty(), "no events exported:\n{text}");
    for e in &events {
        assert_eq!(e.trace, header_id, "span {} off-trace", e.name);
    }

    // Exactly one root, and it is the http span.
    let roots: Vec<&SpanEvent> = events
        .iter()
        .filter(|e| e.parent == "0000000000000000")
        .collect();
    assert_eq!(roots.len(), 1, "single root");
    assert_eq!(roots[0].name, "http");

    // Connected: every non-root parent id is some exported span's id.
    let span_ids: std::collections::HashSet<&str> =
        events.iter().map(|e| e.span.as_str()).collect();
    for e in &events {
        if e.parent != "0000000000000000" {
            assert!(
                span_ids.contains(e.parent.as_str()),
                "span {} has dangling parent {}",
                e.name,
                e.parent
            );
        }
    }

    // The stages the issue promises are all present.
    let names: std::collections::HashSet<&str> = events.iter().map(|e| e.name.as_str()).collect();
    for expected in ["http", "queue", "cache", "score", "respond"] {
        assert!(
            names.contains(expected),
            "missing span {expected}: {names:?}"
        );
    }
}
