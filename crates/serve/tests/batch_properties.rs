//! Property-based tests of the batch assembler: across arbitrary
//! arrival interleavings — request ordering, duplicate user ids, mixed
//! `k`, submitter pauses racing the deadline, and every combination of
//! batch size / deadline / scorer count — the scheduler never drops,
//! duplicates, or cross-wires a response, and the batching deadline
//! bounds how long any request waits in the queue.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use taxorec_serve::{BatchJob, BatchOptions, Batcher};

/// One synthetic request: a unique submission index (the identity the
/// cross-wiring check keys on — user ids deliberately collide) plus the
/// user/k payload a real `/recommend` would carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Req {
    idx: u32,
    user: u32,
    k: u32,
}

/// The only correct response to `r` — any mismatch is a cross-wire.
fn expected_response(r: Req) -> String {
    format!("i{}-u{}-k{}", r.idx, r.user, r.k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_interleavings_never_drop_duplicate_or_cross_wire(
        // Duplicate users and mixed k on purpose: only `idx` is unique.
        payloads in proptest::collection::vec((0u32..6, 0u32..12), 1..48),
        max_batch in 1usize..9,
        deadline_us in 0u64..3000,
        n_scorers in 1usize..4,
        // Pauses between submissions (µs), racing the deadline so some
        // runs coalesce and others cut batches mid-stream.
        pauses in proptest::collection::vec(0u64..800, 1..48),
    ) {
        let deadline = Duration::from_micros(deadline_us);
        let completed: Arc<Mutex<Vec<(Req, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let waits: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&completed);
        let wait_sink = Arc::clone(&waits);
        let (batcher, _) = Batcher::spawn(
            BatchOptions {
                max_batch,
                deadline,
                // Admission control is deliberately out of scope here
                // (covered by the capacity unit test): every submission
                // must be admitted so "never drops" is meaningful.
                queue_capacity: 4096,
                n_scorers,
            },
            move |jobs: &[BatchJob<Req>]| {
                let start = Instant::now();
                let mut w = wait_sink.lock().unwrap();
                for j in jobs {
                    w.push(start.saturating_duration_since(j.enqueued));
                }
                drop(w);
                jobs.iter().map(|j| expected_response(j.req)).collect()
            },
            |job| format!("fallback-{}", job.req.idx),
            move |req, resp: String| sink.lock().unwrap().push((req, resp)),
        )
        .expect("spawn");

        let submitted: Vec<Req> = payloads
            .iter()
            .enumerate()
            .map(|(i, &(user, k))| Req { idx: i as u32, user, k })
            .collect();
        for (i, r) in submitted.iter().enumerate() {
            batcher.try_submit(*r).expect("queue sized for every submission");
            let pause = pauses[i % pauses.len()];
            if pause > 0 {
                std::thread::sleep(Duration::from_micros(pause));
            }
        }
        // Drains every queued request before joining the scorers.
        batcher.shutdown();

        let got = completed.lock().unwrap();
        // Exactly once: every submission completed, none twice.
        prop_assert_eq!(got.len(), submitted.len());
        let mut seen: Vec<u32> = got.iter().map(|(r, _)| r.idx).collect();
        seen.sort_unstable();
        let all: Vec<u32> = (0..submitted.len() as u32).collect();
        prop_assert_eq!(seen, all);
        // No cross-wiring: each response is the one for its own request,
        // even between requests with identical (user, k) payloads.
        for (req, resp) in got.iter() {
            prop_assert_eq!(resp, &expected_response(*req));
        }
        // Bounded queue wait: with an instant handler, a request starts
        // scoring within the deadline of its batch's first member plus
        // scheduling noise — far below this CI-safe ceiling, and nothing
        // like the unbounded wait a count-only batch cutter would allow.
        let slack = Duration::from_secs(2);
        for w in waits.lock().unwrap().iter() {
            prop_assert!(
                *w <= deadline + slack,
                "request waited {w:?} with deadline {deadline:?}"
            );
        }
    }
}
