//! Streaming-ingestion integration: determinism of the incremental
//! fold at the artifact level, ingest-while-serving, the never-seen-tag
//! graft path, and the keep-alive stale-model regression.
//!
//! Test A mutates the process-global `TAXOREC_THREADS`, so every test
//! here serializes on one lock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_serve::{
    fold_batch, serve_online, serve_with, Checkpoint, IndexConfig, IngestInteraction,
    IngestOptions, ServeOptions, ServingModel,
};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One trained base checkpoint shared by every test (training is the
/// expensive part; each test folds into its own clone).
fn base_checkpoint() -> &'static Checkpoint {
    static BASE: OnceLock<Checkpoint> = OnceLock::new();
    BASE.get_or_init(|| {
        let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
        let split = Split::standard(&dataset);
        let mut cfg = TaxoRecConfig::fast_test();
        cfg.epochs = 2;
        let mut model = TaxoRec::new(cfg);
        model.fit(&dataset, &split);
        Checkpoint::from_model(&model)
            .with_dataset(&dataset)
            .with_seen_items(&split.train)
            .with_retrieval_index(&IndexConfig::default())
            .expect("index build")
    })
}

/// A journal exercising every growth path: known ids, never-seen users
/// and items, known tag names, and a stream of never-seen tag names
/// (enough to cross a small drift limit and force a rebuild).
fn synthetic_journal(base: &Checkpoint, n: usize) -> Vec<IngestInteraction> {
    let users = base.state.n_users() as u32;
    let items = base.state.n_items() as u32;
    (0..n)
        .map(|i| {
            let i32u = i as u32;
            let user = if i % 5 == 3 {
                users + i32u % 4
            } else {
                i32u % users
            };
            let item = if i % 7 == 2 {
                items + i32u % 3
            } else {
                (i32u * 13) % items
            };
            let tags = match i % 4 {
                0 => vec![format!("live-{}", i / 4)],
                1 => base.tag_names.first().cloned().into_iter().collect(),
                _ => vec![],
            };
            IngestInteraction { user, item, tags }
        })
        .collect()
}

fn ingest_opts() -> IngestOptions {
    IngestOptions {
        enabled: true,
        drift_limit: 4,
        ..IngestOptions::default()
    }
}

/// One request over a raw socket; returns (status, full raw response).
fn http_req(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = stream.write_all(request.as_bytes());
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    http_req(addr, &format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn http_post_ingest(addr: SocketAddr, body: &str) -> (u16, String) {
    http_req(
        addr,
        &format!(
            "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Extracts the first integer after `"key":` in a JSON blob.
fn json_u64(blob: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = blob.find(&tag)? + tag.len();
    let rest = &blob[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Restores the previous `TAXOREC_THREADS` value on drop.
struct ThreadsGuard(Option<String>);

impl ThreadsGuard {
    fn set(v: &str) -> Self {
        let prev = std::env::var("TAXOREC_THREADS").ok();
        std::env::set_var("TAXOREC_THREADS", v);
        Self(prev)
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        match &self.0 {
            Some(v) => std::env::set_var("TAXOREC_THREADS", v),
            None => std::env::remove_var("TAXOREC_THREADS"),
        }
    }
}

/// ISSUE property: applying N journaled interactions incrementally
/// (chunked, as the updater does per tick) then checkpointing yields a
/// bit-identical artifact to replaying the same journal from the same
/// base in one pass — and the bytes are independent of the worker
/// thread count.
#[test]
fn incremental_fold_is_bit_identical_to_whole_journal_replay() {
    let _g = lock();
    let base = base_checkpoint();
    let journal = synthetic_journal(base, 40);
    let opts = ingest_opts();

    let fold_all = |threads: &str| {
        let _t = ThreadsGuard::set(threads);
        let mut ckpt = base.clone();
        let mut drift = 0u64;
        let report = fold_batch(&mut ckpt, &journal, &opts, &mut drift).expect("fold");
        (ckpt.to_bytes(), report)
    };

    let (whole, report) = fold_all("4");
    // The journal must actually exercise the growth + graft + rebuild
    // machinery, or this property is vacuous.
    assert_eq!(report.applied, journal.len());
    assert_eq!(report.dropped, 0);
    assert!(report.new_users > 0 && report.new_items > 0, "{report:?}");
    assert!(report.attached >= opts.drift_limit as usize, "{report:?}");
    assert!(report.rebuilds >= 1, "{report:?}");
    assert_eq!(report.cursor, journal.len() as u64);

    // Same journal, chunks of 7 (tick-sized batches), drift threaded.
    let mut chunked = base.clone();
    let mut drift = 0u64;
    for chunk in journal.chunks(7) {
        fold_batch(&mut chunked, chunk, &opts, &mut drift).expect("fold chunk");
    }
    assert_eq!(
        whole,
        chunked.to_bytes(),
        "tick batching changed the artifact bytes"
    );

    // Same journal, single worker thread.
    let (single_threaded, _) = fold_all("1");
    assert_eq!(
        whole, single_threaded,
        "thread count changed the artifact bytes"
    );

    // The artifact round-trips with its cursor.
    let reloaded = Checkpoint::from_bytes(&whole).expect("parse folded artifact");
    assert_eq!(reloaded.journal_cursor, Some(journal.len() as u64));
    ServingModel::new(reloaded).expect("folded artifact serves");
}

/// ISSUE: `/ingest` of an interaction referencing a never-seen tag
/// attaches it to the taxonomy without a full rebuild.
#[test]
fn never_seen_tag_attaches_as_a_leaf_without_a_rebuild() {
    let _g = lock();
    let mut ckpt = base_checkpoint().clone();
    let taxo_len = ckpt.state.taxonomy.as_ref().expect("taxonomy").len();
    let n_tags = ckpt.state.n_tags();
    let batch = vec![IngestInteraction {
        user: 0,
        item: 1,
        tags: vec!["never-seen-live-tag".to_string()],
    }];
    let opts = IngestOptions {
        drift_limit: 1000,
        ..ingest_opts()
    };
    let mut drift = 0;
    let report = fold_batch(&mut ckpt, &batch, &opts, &mut drift).expect("fold");
    assert_eq!(report.new_tags, 1);
    assert_eq!(report.attached, 1);
    assert_eq!(report.rebuilds, 0, "a single graft must not rebuild");
    assert_eq!(drift, 1);
    let taxo = ckpt.state.taxonomy.as_ref().unwrap();
    assert_eq!(taxo.len(), taxo_len + 1, "grafted exactly one leaf");
    assert_eq!(ckpt.state.n_tags(), n_tags + 1);
    assert_eq!(
        ckpt.tag_names.last().map(String::as_str),
        Some("never-seen-live-tag")
    );
    // The grafted tag is in the root scope and the artifact still
    // validates end to end.
    assert!(taxo.nodes()[0].tags.contains(&(n_tags as u32)));
    let bytes = ckpt.to_bytes();
    let reloaded = Checkpoint::from_bytes(&bytes).expect("parse");
    ServingModel::new(reloaded).expect("grafted artifact serves");
}

/// ISSUE smoke: ingest-while-serving returns zero non-2xx and the
/// served model's fingerprint advances monotonically.
#[test]
fn ingest_while_serving_smoke() {
    let _g = lock();
    let base = base_checkpoint().clone();
    let model = ServingModel::new(base.clone()).expect("model");
    let n_users = base.state.n_users() as u32;
    let handle = serve_online(
        Arc::new(model),
        base,
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            ingest: IngestOptions {
                tick: Duration::from_millis(50),
                drift_limit: 4,
                ..ingest_opts()
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // Before any ingest: section present, nothing accepted, no cursor.
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"ingest\":{"), "{health}");
    assert_eq!(json_u64(&health, "accepted"), Some(0), "{health}");
    assert!(health.contains("\"cursor\":null"), "{health}");

    // Mixed read + ingest traffic from a few client threads.
    let mut clients = Vec::new();
    for c in 0..3u32 {
        clients.push(std::thread::spawn(move || {
            let mut statuses = Vec::new();
            for i in 0..30u32 {
                if i % 3 == 0 {
                    let body = format!(
                        "{{\"interactions\":[{{\"user\":{},\"item\":{},\"tags\":[\"smoke-{}-{}\"]}}]}}",
                        (c * 7 + i) % n_users,
                        i % 16,
                        c,
                        i
                    );
                    statuses.push(http_post_ingest(addr, &body).0);
                } else {
                    let target = format!("/recommend?user={}&k=5", (c * 11 + i) % n_users);
                    statuses.push(http_get(addr, &target).0);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            statuses
        }));
    }
    let statuses: Vec<u16> = clients
        .into_iter()
        .flat_map(|h| h.join().expect("client"))
        .collect();
    let non_2xx: Vec<u16> = statuses
        .iter()
        .copied()
        .filter(|s| !(200..300).contains(s))
        .collect();
    assert!(non_2xx.is_empty(), "non-2xx during smoke: {non_2xx:?}");

    // The updater catches up: staleness falls to zero, the journal
    // cursor advances, and the served fingerprint is a real artifact.
    let deadline = Instant::now() + Duration::from_secs(10);
    let last: String;
    loop {
        let (_, health) = http_get(addr, "/healthz");
        let accepted = json_u64(&health, "accepted").unwrap_or(0);
        let applied = json_u64(&health, "applied").unwrap_or(0);
        if accepted > 0 && applied == accepted {
            last = health;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "updater never caught up: {health}"
        );
        std::thread::sleep(Duration::from_millis(40));
    }
    let cursor = json_u64(&last, "cursor").expect("cursor reported");
    assert_eq!(Some(cursor), json_u64(&last, "applied"), "{last}");
    assert!(
        last.contains("\"crc\":"),
        "swapped model has no artifact: {last}"
    );
    handle.shutdown();
}

/// Regression: a never-seen tag name repeated within one interaction's
/// tags list must resolve to a single id — previously the second
/// occurrence was allocated its own id whose row stayed a permanent
/// "tagN" placeholder, grafted into the taxonomy as a phantom leaf.
#[test]
fn repeated_new_tag_name_in_one_interaction_allocates_one_id() {
    let _g = lock();
    let mut ckpt = base_checkpoint().clone();
    let n_tags = ckpt.state.n_tags();
    let taxo_len = ckpt.state.taxonomy.as_ref().expect("taxonomy").len();
    let batch = vec![IngestInteraction {
        user: 0,
        item: 1,
        tags: vec!["dup-live".to_string(), "dup-live".to_string()],
    }];
    let opts = IngestOptions {
        drift_limit: 1000,
        ..ingest_opts()
    };
    let mut drift = 0;
    let report = fold_batch(&mut ckpt, &batch, &opts, &mut drift).expect("fold");
    assert_eq!(report.new_tags, 1, "{report:?}");
    assert_eq!(report.attached, 1, "{report:?}");
    assert_eq!(drift, 1, "one graft, one drift unit");
    assert_eq!(ckpt.state.n_tags(), n_tags + 1);
    assert_eq!(ckpt.tag_names.len(), n_tags + 1, "no placeholder row");
    assert_eq!(ckpt.tag_names.last().map(String::as_str), Some("dup-live"));
    let taxo = ckpt.state.taxonomy.as_ref().unwrap();
    assert_eq!(taxo.len(), taxo_len + 1, "no phantom leaf");
    // item_tags records the tag once, under the single allocated id.
    let fresh: Vec<u32> = ckpt.item_tags[1]
        .iter()
        .copied()
        .filter(|&t| t as usize >= n_tags)
        .collect();
    assert_eq!(fresh, vec![n_tags as u32]);
}

/// Regression (stale model on keep-alive): a connection accepted before
/// an `/admin/reload` must be answered by the model that is current
/// when its request arrives — the worker resolves the slot per request,
/// after the head is read, not at accept/dequeue time.
#[test]
fn connection_open_across_reload_sees_the_new_model() {
    let _g = lock();
    let dir = std::env::temp_dir().join(format!("taxorec-online-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path_a = dir.join("gen-a.taxo");
    let path_b = dir.join("gen-b.taxo");

    let base = base_checkpoint().clone();
    base.save(&path_a).expect("save a");
    // Generation B: the same base plus one folded interaction — a
    // realistic "the updater persisted a newer artifact" successor.
    let mut next = base.clone();
    let mut drift = 0;
    fold_batch(
        &mut next,
        &[IngestInteraction {
            user: 0,
            item: 2,
            tags: vec![],
        }],
        &ingest_opts(),
        &mut drift,
    )
    .expect("fold");
    next.save(&path_b).expect("save b");

    let model = taxorec_serve::load(path_a.to_str().unwrap()).expect("load a");
    let crc_a = model.artifact_info().expect("artifact a").crc;
    let crc_b = Checkpoint::load_file(path_b.to_str().unwrap())
        .expect("load b")
        .artifact
        .expect("artifact b")
        .crc;
    assert_ne!(crc_a, crc_b);

    let handle = serve_with(
        Arc::new(model),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // Open a connection and go quiet: a worker dequeues it and blocks
    // reading the head while the reload happens elsewhere.
    let mut held = TcpStream::connect(addr).expect("connect");
    held.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let (status, body) = http_get(
        addr,
        &format!("/admin/reload?path={}", path_b.to_str().unwrap()),
    );
    assert_eq!(status, 200, "{body}");

    // Only now does the held connection send its request. It must see
    // generation B, not the model that was live when it was accepted.
    write!(held, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("late send");
    let mut response = String::new();
    held.read_to_string(&mut response).expect("late read");
    let crc = json_u64(&response, "crc").expect("crc in healthz");
    assert_eq!(
        crc, crc_b as u64,
        "held connection was answered by the pre-reload model: {response}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
