//! In-process sharded-tier tests: router failover, hedging, 503
//! behavior, aggregated health, warm checkpoint reload, degraded-spawn
//! health transitions, and trace adoption (DESIGN.md §16).
//!
//! Everything here runs router and shards inside one test process so
//! the assertions can be exact (byte-identical bodies, telemetry
//! counters); the process-level chaos drill (spawned binaries, real
//! SIGKILL) lives in `shard_chaos.rs`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_resilience::{disable, install, FaultSpec, RetryPolicy};
use taxorec_serve::{
    route_with, serve_with, Checkpoint, Health, Ring, RouterOptions, ServeOptions, ServingModel,
};

/// The fault harness and the telemetry registry are process-global;
/// tests that arm faults or read counters serialize on one lock.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn trained_model(epochs: usize) -> (TaxoRec, taxorec_data::Dataset, Split) {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = epochs;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    (model, dataset, split)
}

fn serving_model() -> ServingModel {
    let (model, dataset, split) = trained_model(2);
    ServingModel::from_model(&model, &dataset, &split).expect("snapshot")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("taxorec-shardtest-{}-{name}", std::process::id()))
}

/// Saves a freshly trained artifact (`epochs` controls its bytes/CRC).
fn save_artifact(name: &str, epochs: usize) -> std::path::PathBuf {
    let (model, dataset, split) = trained_model(epochs);
    let path = tmp(name);
    Checkpoint::from_model(&model)
        .with_dataset(&dataset)
        .with_seen_items(&split.train)
        .save(&path)
        .expect("save artifact");
    path
}

/// One GET over a raw socket; returns (status, head, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    http_get_with(addr, target, "")
}

fn http_get_with(addr: SocketAddr, target: &str, extra_headers: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: x\r\n{extra_headers}\r\n"
    );
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn shard_opts(id: &str) -> ServeOptions {
    ServeOptions {
        n_workers: 2,
        shard_id: Some(id.to_string()),
        ..ServeOptions::default()
    }
}

fn fast_router_opts() -> RouterOptions {
    RouterOptions {
        probe_interval: Duration::from_millis(100),
        connect_timeout: Duration::from_millis(200),
        hedge_after: Duration::from_millis(50),
        deadline: Duration::from_secs(3),
        retry: RetryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(2),
            multiplier: 2,
            max_backoff: Duration::from_millis(20),
        },
        ..RouterOptions::default()
    }
}

#[test]
fn router_proxies_bit_identically_and_fails_over_when_a_shard_dies() {
    let _g = lock();
    let model = Arc::new(serving_model());
    let n_users = model.n_users().min(24) as u32;
    let mut shards = Vec::new();
    for i in 0..3 {
        shards.push(
            serve_with(
                Arc::clone(&model),
                "127.0.0.1:0",
                shard_opts(&format!("s{i}")),
            )
            .expect("shard"),
        );
    }
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let router = route_with(addrs.clone(), "127.0.0.1:0", fast_router_opts()).expect("router");

    // Reference: every shard serves the same model, so shard 0 direct
    // is the single-process baseline for byte-identical bodies.
    let mut expected = Vec::new();
    for u in 0..n_users {
        let (status, _, body) = http_get(addrs[0], &format!("/recommend?user={u}&k=5"));
        assert_eq!(status, 200, "reference shard failed for user {u}");
        expected.push(body);
    }
    for u in 0..n_users {
        let (status, head, body) =
            http_get(router.local_addr(), &format!("/recommend?user={u}&k=5"));
        assert_eq!(status, 200, "router failed for user {u}");
        assert_eq!(
            body, expected[u as usize],
            "user {u} body differs via router"
        );
        assert!(
            head.contains("x-taxorec-shard: "),
            "missing shard header:\n{head}"
        );
    }

    // Kill shard 1 (shutdown closes its listener → connections refused,
    // exactly what a dead process looks like to the router) and verify
    // every user keeps getting a byte-identical answer — users owned by
    // the dead shard fail over, the rest are untouched.
    let ring = Ring::new(3);
    let dead: u32 = 1;
    let owned_by_dead = (0..n_users).filter(|&u| ring.owner(u) == dead).count();
    assert!(owned_by_dead > 0, "test needs a user owned by shard 1");
    shards.remove(1).shutdown();
    for u in 0..n_users {
        let (status, head, body) =
            http_get(router.local_addr(), &format!("/recommend?user={u}&k=5"));
        assert_eq!(status, 200, "user {u} unavailable after shard death");
        assert_eq!(
            body, expected[u as usize],
            "user {u} body changed after failover"
        );
        if ring.owner(u) == dead {
            let served_by = head
                .lines()
                .find_map(|l| l.strip_prefix("x-taxorec-shard: "))
                .and_then(|s| s.trim().parse::<u32>().ok())
                .expect("shard header");
            assert_ne!(served_by, dead, "user {u} answered by a dead shard");
        }
    }

    // The prober eventually reports the dead shard down on /healthz.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, _, body) = http_get(router.local_addr(), "/healthz");
        if body.contains("\"state\":\"down\"") && body.contains("\"up\":2") {
            assert!(body.contains("\"status\":\"degraded\""), "{body}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never noticed the dead shard: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    router.shutdown();
}

#[test]
fn router_answers_503_with_retry_after_when_every_shard_is_gone() {
    let _g = lock();
    let model = Arc::new(serving_model());
    let shard = serve_with(model, "127.0.0.1:0", shard_opts("only")).expect("shard");
    let addr = shard.local_addr();
    let mut opts = fast_router_opts();
    opts.deadline = Duration::from_millis(800);
    let router = route_with(vec![addr], "127.0.0.1:0", opts).expect("router");
    shard.shutdown();
    // Whether the prober has marked the shard down yet or the proxy
    // exhausts its candidates live, the client-visible contract is the
    // same: 503 plus Retry-After, never a hang.
    let (status, head, body) = http_get(router.local_addr(), "/recommend?user=0&k=3");
    assert_eq!(status, 503, "head: {head}\nbody: {body}");
    assert!(head.contains("Retry-After:"), "no Retry-After:\n{head}");
    router.shutdown();
}

#[test]
fn hedged_request_routes_around_a_black_hole_shard() {
    let _g = lock();
    let model = Arc::new(serving_model());
    let healthy = serve_with(model, "127.0.0.1:0", shard_opts("ok")).expect("shard");

    // A black hole: accepts connections and then says nothing — the
    // shape of a wedged process (`stall@serve.request`), as opposed to
    // a dead one (connection refused).
    let black_hole = TcpListener::bind("127.0.0.1:0").expect("bind");
    let bh_addr = black_hole.local_addr().unwrap();
    let swallow = Arc::new(AtomicBool::new(true));
    let swallowed = Arc::new(AtomicUsize::new(0));
    {
        let swallow = Arc::clone(&swallow);
        let swallowed = Arc::clone(&swallowed);
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while swallow.load(Ordering::SeqCst) {
                if let Ok((conn, _)) = black_hole.accept() {
                    swallowed.fetch_add(1, Ordering::SeqCst);
                    held.push(conn); // keep it open, never respond
                }
            }
        });
    }

    // Long probe interval: the first probe round is still in flight
    // (reading the black hole until its deadline) when the request
    // below runs, so shard 0 is still `unknown` → routable, and the
    // hedge — not the prober — is what saves the request.
    let mut opts = fast_router_opts();
    opts.probe_interval = Duration::from_secs(30);
    let hedge_fired_before = taxorec_telemetry::counter("router.hedge.fired").get();
    // The black hole owns slot 0; pick a user it owns so the first
    // attempt stalls there.
    let router =
        route_with(vec![bh_addr, healthy.local_addr()], "127.0.0.1:0", opts).expect("router");
    let ring = Ring::new(2);
    let user = (0..1000u32)
        .find(|&u| ring.owner(u) == 0)
        .expect("owned user");

    let start = Instant::now();
    let (status, _, body) = http_get(router.local_addr(), &format!("/recommend?user={user}&k=3"));
    let elapsed = start.elapsed();
    assert_eq!(status, 200, "{body}");
    assert!(
        elapsed < Duration::from_secs(2),
        "hedge should answer in ~hedge_after, took {elapsed:?}"
    );
    assert!(
        swallowed.load(Ordering::SeqCst) >= 1,
        "request never touched the black hole — test routed wrong"
    );
    assert!(
        taxorec_telemetry::counter("router.hedge.fired").get() > hedge_fired_before,
        "hedge counter did not move"
    );
    swallow.store(false, Ordering::SeqCst);
    // Unblock the accept loop.
    let _ = TcpStream::connect(bh_addr);
    router.shutdown();
}

#[test]
fn router_healthz_aggregates_shard_identity_and_checkpoint_fingerprint() {
    let _g = lock();
    let path = save_artifact("agg.taxo", 2);
    let expected_crc = Checkpoint::load_file(&path)
        .expect("load")
        .artifact
        .expect("artifact info")
        .crc;
    let mut shards = Vec::new();
    for i in 0..2 {
        let model = taxorec_serve::load(&path).expect("load artifact");
        shards.push(
            serve_with(
                Arc::new(model),
                "127.0.0.1:0",
                shard_opts(&format!("shard-{i}")),
            )
            .expect("shard"),
        );
    }
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let router = route_with(addrs, "127.0.0.1:0", fast_router_opts()).expect("router");

    // Shard-side /healthz reports its own identity + checkpoint.
    let (_, _, shard_health) = http_get(shards[0].local_addr(), "/healthz");
    assert!(
        shard_health.contains("\"shard\":{\"id\":\"shard-0\""),
        "{shard_health}"
    );
    assert!(
        shard_health.contains(&format!("\"crc\":{expected_crc}")),
        "{shard_health}"
    );

    // Router-side aggregation scrapes both (needs a probe round).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, _, body) = http_get(router.local_addr(), "/healthz");
        if body.contains("\"id\":\"shard-0\"")
            && body.contains("\"id\":\"shard-1\"")
            && body.contains(&format!("\"crc\":{expected_crc}"))
        {
            assert!(body.contains("\"status\":\"ready\""), "{body}");
            assert!(body.contains("\"breaker\":\"closed\""), "{body}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router healthz never aggregated shard identity: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    router.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn admin_reload_swaps_checkpoint_warm_with_zero_downtime() {
    let _g = lock();
    let path_a = save_artifact("reload-a.taxo", 2);
    let path_b = save_artifact("reload-b.taxo", 3);
    let crc_a = Checkpoint::load_file(&path_a)
        .unwrap()
        .artifact
        .unwrap()
        .crc;
    let crc_b = Checkpoint::load_file(&path_b)
        .unwrap()
        .artifact
        .unwrap()
        .crc;
    assert_ne!(crc_a, crc_b, "test needs two distinct artifacts");

    let model = taxorec_serve::load(&path_a).expect("load A");
    let handle = serve_with(Arc::new(model), "127.0.0.1:0", shard_opts("r0")).expect("serve");
    let addr = handle.local_addr();
    let (_, _, health) = http_get(addr, "/healthz");
    assert!(health.contains(&format!("\"crc\":{crc_a}")), "{health}");

    // Hammer /recommend throughout the reload; every request must get
    // a 200 — the swap is one Arc exchange, never an outage.
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicUsize::new(0));
    let attempts = Arc::new(AtomicUsize::new(0));
    let hammer = {
        let stop = Arc::clone(&stop);
        let failures = Arc::clone(&failures);
        let attempts = Arc::clone(&attempts);
        std::thread::spawn(move || {
            let mut u = 0u32;
            while !stop.load(Ordering::SeqCst) {
                let (status, _, _) = http_get(addr, &format!("/recommend?user={}&k=4", u % 16));
                attempts.fetch_add(1, Ordering::SeqCst);
                if status != 200 {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
                u = u.wrapping_add(1);
            }
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let (status, _, body) = http_get(
        addr,
        &format!("/admin/reload?path={}", path_b.to_str().unwrap()),
    );
    assert_eq!(status, 200, "reload failed: {body}");
    assert!(body.contains("\"status\":\"reloaded\""), "{body}");
    assert!(
        body.contains(&format!("\"crc\":{crc_a}")),
        "old info missing: {body}"
    );
    assert!(
        body.contains(&format!("\"crc\":{crc_b}")),
        "new info missing: {body}"
    );
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    hammer.join().unwrap();
    assert!(
        attempts.load(Ordering::SeqCst) > 0,
        "hammer never got a request in"
    );
    assert_eq!(
        failures.load(Ordering::SeqCst),
        0,
        "requests failed during warm reload"
    );

    // The served checkpoint identity followed the swap.
    let (_, _, health) = http_get(addr, "/healthz");
    assert!(health.contains(&format!("\"crc\":{crc_b}")), "{health}");
    assert!(
        health.contains("\"status\":\"ready\""),
        "health not restored: {health}"
    );

    // A bad path keeps the current model and answers 500.
    let (status, _, body) = http_get(addr, "/admin/reload?path=/nonexistent/x.taxo");
    assert_eq!(status, 500, "{body}");
    let (_, _, health) = http_get(addr, "/healthz");
    assert!(
        health.contains(&format!("\"crc\":{crc_b}")),
        "failed reload must keep the current model: {health}"
    );
    let (status, _, _) = http_get(addr, "/recommend?user=0&k=3");
    assert_eq!(status, 200, "serving broken after failed reload");

    handle.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn admin_endpoints_can_be_disabled() {
    let _g = lock();
    let model = Arc::new(serving_model());
    let handle = serve_with(
        model,
        "127.0.0.1:0",
        ServeOptions {
            admin: false,
            ..shard_opts("locked")
        },
    )
    .expect("serve");
    let (status, _, _) = http_get(handle.local_addr(), "/admin/drain");
    assert_eq!(status, 404);
    let (status, _, _) = http_get(handle.local_addr(), "/admin/reload?path=/tmp/x.taxo");
    assert_eq!(status, 404);
    handle.shutdown();
}

#[test]
fn health_transitions_ready_degraded_draining_under_injected_worker_loss() {
    let _g = lock();
    // Arm the spawn-failure site: the second parser worker is lost, so
    // the server comes up degraded (reduced pool) but serving.
    install(FaultSpec::parse("io@serve.spawn:2").expect("spec"));
    let model = Arc::new(serving_model());
    let handle = serve_with(
        model,
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 3,
            ..shard_opts("hurt")
        },
    )
    .expect("serve");
    disable();
    assert_eq!(handle.health(), Health::Degraded);
    let (status, _, body) = http_get(handle.local_addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"degraded\""), "{body}");

    // /admin/drain advertises draining while every endpoint keeps
    // answering — the router-visible first phase of a graceful stop.
    let (status, _, body) = http_get(handle.local_addr(), "/admin/drain");
    assert_eq!(status, 200, "{body}");
    assert_eq!(handle.health(), Health::Draining);
    let (_, _, body) = http_get(handle.local_addr(), "/healthz");
    assert!(body.contains("\"status\":\"draining\""), "{body}");
    let (status, _, _) = http_get(handle.local_addr(), "/recommend?user=0&k=3");
    assert_eq!(status, 200, "draining must keep serving");
    handle.shutdown();
}

#[test]
fn inbound_trace_header_is_adopted_for_the_router_hop() {
    let _g = lock();
    let model = Arc::new(serving_model());
    let handle = serve_with(model, "127.0.0.1:0", shard_opts("traced")).expect("serve");
    let (status, head, _) = http_get_with(
        handle.local_addr(),
        "/healthz",
        "x-taxorec-trace: 00000000deadbeef\r\n",
    );
    assert_eq!(status, 200);
    assert!(
        head.contains("x-taxorec-trace: 00000000deadbeef"),
        "shard did not adopt the router's trace id:\n{head}"
    );
    // Garbage trace headers are ignored, not adopted.
    let (_, head, _) = http_get_with(
        handle.local_addr(),
        "/healthz",
        "x-taxorec-trace: not-hex\r\n",
    );
    assert!(
        !head.contains("x-taxorec-trace: not-hex"),
        "garbage trace id must not round-trip:\n{head}"
    );
    handle.shutdown();
}

#[test]
fn router_merges_shard_metrics_with_shard_labels() {
    let _g = lock();
    let model = Arc::new(serving_model());
    let shard = serve_with(model, "127.0.0.1:0", shard_opts("m0")).expect("shard");
    let router =
        route_with(vec![shard.local_addr()], "127.0.0.1:0", fast_router_opts()).expect("router");
    // Generate some shard-side traffic so counters exist.
    let (status, _, _) = http_get(router.local_addr(), "/recommend?user=0&k=3");
    assert_eq!(status, 200);
    let (status, _, merged) = http_get(router.local_addr(), "/shards/metrics");
    assert_eq!(status, 200);
    assert!(merged.contains("shard=\"0\""), "no shard label:\n{merged}");
    assert!(
        merged.contains("serve_http_requests"),
        "missing shard series:\n{merged}"
    );
    // The router's own exposition carries its RED series.
    let (_, _, own) = http_get(router.local_addr(), "/metrics");
    assert!(own.contains("router_requests"), "{own}");
    router.shutdown();
    shard.shutdown();
}
