//! Adversarial tests of the `.taxo` artifact: a checkpoint must round
//! trip bit-for-bit, and every way of damaging the file must be rejected
//! with the *right* error — never a panic, never a garbage model.

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_serve::{Checkpoint, CheckpointError, FORMAT_VERSION, MAGIC};

fn trained_checkpoint() -> Checkpoint {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = 4;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    Checkpoint::from_model(&model)
        .with_dataset(&dataset)
        .with_seen_items(&split.train)
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("taxorec-test-{}-{name}", std::process::id()))
}

#[test]
fn round_trip_is_bit_identical() {
    let ckpt = trained_checkpoint();
    let bytes = ckpt.to_bytes();
    let reloaded = Checkpoint::from_bytes(&bytes).expect("round trip");
    // Serializing the reloaded checkpoint must reproduce the same bytes:
    // this covers every field, including float bit patterns, in one shot.
    assert_eq!(reloaded.to_bytes(), bytes, "byte-level round trip");
    // Spot-check semantics too.
    assert_eq!(reloaded.state.name, ckpt.state.name);
    assert_eq!(reloaded.state.alphas, ckpt.state.alphas);
    assert_eq!(reloaded.seen_items, ckpt.seen_items);
    assert_eq!(
        reloaded.state.taxonomy.is_some(),
        ckpt.state.taxonomy.is_some()
    );
}

#[test]
fn save_and_load_file_round_trip() {
    let ckpt = trained_checkpoint();
    let path = tmp_path("roundtrip.taxo");
    ckpt.save(&path).expect("save");
    let reloaded = Checkpoint::load_file(&path).expect("load");
    assert_eq!(reloaded.to_bytes(), ckpt.to_bytes());
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_magic_is_not_a_checkpoint() {
    let mut bytes = trained_checkpoint().to_bytes();
    bytes[0..4].copy_from_slice(b"NOPE");
    match Checkpoint::from_bytes(&bytes) {
        Err(CheckpointError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // A completely unrelated file (e.g. a text file) is also BadMagic.
    let text = b"This is not a checkpoint, it is 42 bytes long.....";
    assert!(matches!(
        Checkpoint::from_bytes(text),
        Err(CheckpointError::BadMagic { .. })
    ));
}

#[test]
fn unsupported_version_is_rejected() {
    let mut bytes = trained_checkpoint().to_bytes();
    let future = FORMAT_VERSION + 1;
    bytes[4..6].copy_from_slice(&future.to_le_bytes());
    match Checkpoint::from_bytes(&bytes) {
        Err(CheckpointError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, future);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // Version 0 never existed.
    bytes[4..6].copy_from_slice(&0u16.to_le_bytes());
    assert!(matches!(
        Checkpoint::from_bytes(&bytes),
        Err(CheckpointError::UnsupportedVersion { found: 0, .. })
    ));
}

#[test]
fn truncation_anywhere_is_rejected() {
    let bytes = trained_checkpoint().to_bytes();
    // Shorter than even the fixed header + trailer.
    for n in [0, 1, 4, 19] {
        assert!(
            matches!(
                Checkpoint::from_bytes(&bytes[..n]),
                Err(CheckpointError::TooShort { .. })
            ),
            "prefix of {n} bytes"
        );
    }
    // Header intact but payload/trailer cut off at several depths.
    for frac in [30, 50, 90, 99] {
        let n = (bytes.len() * frac) / 100;
        assert!(
            matches!(
                Checkpoint::from_bytes(&bytes[..n]),
                Err(CheckpointError::Truncated { .. })
            ),
            "truncated to {frac}% ({n} bytes)"
        );
    }
    // Off-by-one: all but the last byte.
    assert!(matches!(
        Checkpoint::from_bytes(&bytes[..bytes.len() - 1]),
        Err(CheckpointError::Truncated { .. })
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = trained_checkpoint().to_bytes();
    bytes.extend_from_slice(b"extra");
    assert!(matches!(
        Checkpoint::from_bytes(&bytes),
        Err(CheckpointError::Corrupt(_))
    ));
}

#[test]
fn any_flipped_payload_byte_fails_the_checksum() {
    let bytes = trained_checkpoint().to_bytes();
    let header = 16;
    let payload_len = bytes.len() - header - 4;
    // Flip one bit at a spread of payload offsets (start, interior, end).
    for &off in &[0, 1, payload_len / 3, payload_len / 2, payload_len - 1] {
        let mut damaged = bytes.clone();
        damaged[header + off] ^= 0x01;
        match Checkpoint::from_bytes(&damaged) {
            Err(CheckpointError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed, "offset {off}")
            }
            other => {
                panic!("flip at payload offset {off}: expected ChecksumMismatch, got {other:?}")
            }
        }
    }
    // Flipping the stored CRC itself is also a mismatch.
    let mut damaged = bytes.clone();
    let last = damaged.len() - 1;
    damaged[last] ^= 0xFF;
    assert!(matches!(
        Checkpoint::from_bytes(&damaged),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));
}

#[test]
fn corrupted_header_flags_are_rejected() {
    let mut bytes = trained_checkpoint().to_bytes();
    bytes[6] = 0x01; // reserved flags must be zero
    assert!(matches!(
        Checkpoint::from_bytes(&bytes),
        Err(CheckpointError::Corrupt(_))
    ));
}

#[test]
fn missing_file_is_an_io_error_with_the_path() {
    let path = tmp_path("does-not-exist.taxo");
    match Checkpoint::load_file(&path) {
        Err(CheckpointError::Io(msg)) => {
            assert!(msg.contains("does-not-exist"), "{msg}")
        }
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn error_messages_are_precise() {
    let ckpt = trained_checkpoint();
    let bytes = ckpt.to_bytes();
    let short = &bytes[..10];
    let msg = Checkpoint::from_bytes(short).unwrap_err().to_string();
    assert!(msg.contains("10 bytes"), "{msg}");
    let mut wrong_ver = bytes.clone();
    wrong_ver[4..6].copy_from_slice(&9u16.to_le_bytes());
    let msg = Checkpoint::from_bytes(&wrong_ver).unwrap_err().to_string();
    assert!(msg.contains("version 9"), "{msg}");
    assert!(msg.contains(&FORMAT_VERSION.to_string()), "{msg}");
}

#[test]
fn magic_constant_is_stable() {
    // The on-disk contract: changing either of these breaks every
    // artifact in the wild, so a test must force the conversation.
    assert_eq!(&MAGIC, b"TAXO");
    assert_eq!(FORMAT_VERSION, 1);
}
