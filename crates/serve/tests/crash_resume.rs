//! Crash-resume at the process level: a `train-demo` run is SIGKILLed
//! mid-training, resumed from its on-disk `TrainCheckpoint`, and the
//! final `.taxo` artifact is required to be **byte-identical** to the
//! artifact of a run that was never interrupted — the strongest possible
//! statement of the resume contract (same embeddings, same taxonomy,
//! same serialization, bit for bit).
//!
//! Also exercises the `TAXOREC_FAULT` environment path end to end: an
//! armed `io@checkpoint.save` fault is absorbed by the save retry, and a
//! malformed spec fails fast instead of silently disabling the test that
//! depends on it.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_taxorec-serve");
const EPOCHS: &str = "6";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("taxorec-crash-{}-{name}", std::process::id()))
}

/// A `train-demo` command with a hygienic environment: no inherited
/// fault spec, throttle, or thread override can skew determinism.
fn train_cmd(args: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.arg("train-demo")
        .args(args)
        .env_remove("TAXOREC_FAULT")
        .env_remove("TAXOREC_EPOCH_SLEEP_MS")
        .env_remove("TAXOREC_THREADS")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn taxorec-serve");
    assert!(
        out.status.success(),
        "train-demo failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn sigkilled_training_resumes_to_a_byte_identical_artifact() {
    let out_clean = tmp("clean.taxo");
    let out_resumed = tmp("resumed.taxo");
    let ck = tmp("state.trainstate");

    // Reference: the same training run, never interrupted.
    run_ok(&mut train_cmd(&[
        out_clean.to_str().unwrap(),
        "--epochs",
        EPOCHS,
    ]));
    let clean_bytes = std::fs::read(&out_clean).expect("clean artifact");

    // Interrupted run: throttled so SIGKILL lands mid-training, with a
    // checkpoint after every completed epoch.
    let mut child = train_cmd(&[
        out_resumed.to_str().unwrap(),
        "--epochs",
        EPOCHS,
        "--checkpoint",
        ck.to_str().unwrap(),
        "--checkpoint-every",
        "1",
    ])
    .env("TAXOREC_EPOCH_SLEEP_MS", "200")
    .spawn()
    .expect("spawn throttled train-demo");

    // Kill as soon as the first checkpoint exists (SIGKILL: no unwind,
    // no atexit — the hardest crash the process can take).
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ck.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared in 60 s");
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("train-demo exited early with {status}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Resume from whatever epoch the checkpoint captured and finish.
    let out = run_ok(&mut train_cmd(&[
        out_resumed.to_str().unwrap(),
        "--epochs",
        EPOCHS,
        "--checkpoint",
        ck.to_str().unwrap(),
        "--checkpoint-every",
        "1",
        "--resume",
        ck.to_str().unwrap(),
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resuming from"), "{stdout}");

    let resumed_bytes = std::fs::read(&out_resumed).expect("resumed artifact");
    assert_eq!(
        clean_bytes, resumed_bytes,
        "artifact after kill+resume differs from the uninterrupted run"
    );

    for p in [&out_clean, &out_resumed, &ck] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn fault_spec_env_var_is_honoured_and_absorbed_by_the_save_retry() {
    let out = tmp("fault-env.taxo");
    let ck = tmp("fault-env.trainstate");
    // The first checkpoint.save probe fails with an injected IO error;
    // the retry policy's second attempt succeeds, so the run still
    // completes and saves both the checkpoint and the artifact.
    let output = run_ok(
        train_cmd(&[
            out.to_str().unwrap(),
            "--epochs",
            "2",
            "--checkpoint",
            ck.to_str().unwrap(),
        ])
        .env("TAXOREC_FAULT", "io@checkpoint.save:1")
        .env("TAXOREC_LOG", "warn"),
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("fault injection: firing io@checkpoint.save"),
        "{stderr}"
    );
    assert!(out.exists() && ck.exists());
    std::fs::remove_file(&out).ok();
    std::fs::remove_file(&ck).ok();
}

#[test]
fn malformed_fault_spec_fails_fast_instead_of_silently_disarming() {
    let out = tmp("bad-spec.taxo");
    let output = train_cmd(&[out.to_str().unwrap(), "--epochs", "1"])
        .env("TAXOREC_FAULT", "kaboom@nowhere")
        .output()
        .expect("spawn");
    assert!(
        !output.status.success(),
        "a typo'd spec must not pass silently"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("invalid TAXOREC_FAULT spec"), "{stderr}");
    std::fs::remove_file(&out).ok();
}
