//! End-to-end micro-batching over a live server: concurrent raw-socket
//! clients hit `/recommend`, the scheduler coalesces them into fused
//! scoring blocks, and every response is **bit-identical** — down to the
//! serialized JSON bytes — to what a sequential
//! [`ServingModel::recommend`] produces for the same `(user, k)`.
//!
//! The telemetry registry is process-global, so the histogram assertions
//! live in their own integration-test binary and the tests serialize on
//! one lock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_serve::{serve_with, BatchOptions, ServeOptions, ServingModel};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One trained model, snapshotted twice: one engine for the server and
/// one untouched reference — both bit-identical by construction, so the
/// reference's sequential answers are the ground truth for the batched
/// responses.
fn two_engines() -> (ServingModel, ServingModel, usize) {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = 2;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    let served = ServingModel::from_model(&model, &dataset, &split).expect("snapshot");
    let reference = ServingModel::from_model(&model, &dataset, &split).expect("snapshot");
    (served, reference, dataset.n_users)
}

/// One GET over a raw socket; returns (status, full raw response).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// The exact `/recommend` wire body for a ranking — the same shape and
/// float formatting ([`push_f64`]) the server uses, rebuilt
/// independently so the comparison is byte-level.
///
/// [`push_f64`]: taxorec_telemetry::json::push_f64
fn expected_body(user: u32, k: usize, items: &[(u32, f64)]) -> String {
    let mut body = String::new();
    body.push_str("{\"user\":");
    body.push_str(&user.to_string());
    body.push_str(",\"k\":");
    body.push_str(&k.to_string());
    body.push_str(",\"items\":[");
    for (i, &(item, score)) in items.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"item\":");
        body.push_str(&item.to_string());
        body.push_str(",\"score\":");
        taxorec_telemetry::json::push_f64(&mut body, score);
        body.push('}');
    }
    body.push_str("]}");
    body
}

#[test]
fn concurrent_clients_get_bit_identical_responses_and_batches_form() {
    let _g = lock();
    let (served, reference, n_users) = two_engines();
    // One scorer and a wide deadline so the concurrent burst below is
    // forced through shared batches rather than 24 singleton ones.
    let handle = serve_with(
        Arc::new(served),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 8,
            io_timeout: Duration::from_secs(5),
            batch: BatchOptions {
                max_batch: 32,
                deadline: Duration::from_millis(100),
                queue_capacity: 1024,
                n_scorers: 1,
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    let batches_before = taxorec_telemetry::counter("serve.batch.batches").get();
    let n_clients = 24.min(n_users);
    let barrier = Arc::new(Barrier::new(n_clients));
    let mut clients = Vec::new();
    for c in 0..n_clients {
        let barrier = Arc::clone(&barrier);
        clients.push(std::thread::spawn(move || {
            let user = c as u32;
            let k = 3 + c % 9; // mixed k across the burst
            barrier.wait();
            let (status, response) = http_get(addr, &format!("/recommend?user={user}&k={k}"));
            (user, k, status, response)
        }));
    }
    let responses: Vec<(u32, usize, u16, String)> = clients
        .into_iter()
        .map(|t| t.join().expect("client"))
        .collect();

    for (user, k, status, response) in &responses {
        assert_eq!(*status, 200, "user {user}: {response}");
        let want = reference.recommend(*user, *k).expect("reference");
        assert_eq!(
            body_of(response),
            expected_body(*user, *k, &want),
            "user {user} k {k}: batched response not bit-identical to sequential recommend"
        );
    }

    // The burst really was coalesced: fewer batches than requests, and
    // the size histogram saw a multi-request batch.
    let sizes = taxorec_telemetry::histogram("serve.batch.size");
    assert!(
        sizes.max() > 1.0,
        "no multi-request batch formed (max size {})",
        sizes.max()
    );
    let batches = taxorec_telemetry::counter("serve.batch.batches").get() - batches_before;
    assert!(
        batches < n_clients as u64,
        "{n_clients} requests took {batches} batches — no coalescing"
    );

    // A repeat of any request is a cache hit answered inline — and still
    // byte-identical to the batched first answer.
    let (user, k, _, first) = &responses[0];
    let (status, again) = http_get(addr, &format!("/recommend?user={user}&k={k}"));
    assert_eq!(status, 200);
    assert_eq!(body_of(&again), body_of(first), "cache hit diverged");

    handle.shutdown();
}

#[test]
fn batched_unknown_user_still_maps_to_404() {
    let _g = lock();
    let (served, _reference, n_users) = two_engines();
    let handle = serve_with(
        Arc::new(served),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            io_timeout: Duration::from_secs(5),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // Unknown users ride the batched path (they miss the cache) and must
    // come back as their own 404s without disturbing valid neighbors.
    let bad = n_users as u32 + 7;
    let (status, response) = http_get(addr, &format!("/recommend?user={bad}&k=5"));
    assert_eq!(status, 404, "{response}");
    assert!(response.contains("unknown user"), "{response}");

    let (status, response) = http_get(addr, "/recommend?user=0&k=5");
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"items\":["), "{response}");

    handle.shutdown();
}
