//! Serve-layer hardening under hostile clients: stalled and garbage
//! requests, oversized heads, load shedding at queue capacity, and an
//! injected mid-request panic — in every case the server answers the
//! well-behaved client and stays up.
//!
//! The fault harness is process-global and the panic test arms it, so
//! every test here serializes on one lock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use taxorec_core::{TaxoRec, TaxoRecConfig};
use taxorec_data::{generate_preset, Preset, Recommender, Scale, Split};
use taxorec_resilience::{disable, install, FaultSpec};
use taxorec_serve::{serve_with, BatchOptions, ServeOptions, ServingModel};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn serving_model() -> ServingModel {
    let dataset = generate_preset(Preset::Ciao, Scale::Tiny);
    let split = Split::standard(&dataset);
    let mut cfg = TaxoRecConfig::fast_test();
    cfg.epochs = 2;
    let mut model = TaxoRec::new(cfg);
    model.fit(&dataset, &split);
    ServingModel::from_model(&model, &dataset, &split).expect("snapshot")
}

/// One GET over a raw socket; returns (status, full raw response).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A shed connection is answered (and closed) before the request is
    // even read, so the send may race an EPIPE — the response is what
    // matters.
    let _ = write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

#[test]
fn stalled_client_is_disconnected_while_healthz_stays_live() {
    let _g = lock();
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            io_timeout: Duration::from_millis(300),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // A client that sends half a request line and then goes silent.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stalled, "GET /recomm").expect("partial send");

    // The other worker keeps answering immediately.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ready\""), "{body}");

    // After the io deadline the stalled connection is rejected, not
    // held forever: the worker answers 400 and hangs up.
    let mut response = String::new();
    stalled.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("timed-out"), "{response}");

    handle.shutdown();
}

#[test]
fn garbage_and_oversized_requests_get_400_not_a_crash() {
    let _g = lock();
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            max_request_bytes: 512,
            io_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // Invalid UTF-8 in the head.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&[0xff, 0xfe, 0xfd, b'\r', b'\n', b'\r', b'\n'])
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // A head larger than the cap (no terminator within 512 bytes).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let huge = format!("GET /?junk={} HTTP/1.1\r\n\r\n", "x".repeat(4096));
    stream.write_all(huge.as_bytes()).expect("send");
    let mut response = String::new();
    // The server may reset the connection mid-upload after rejecting;
    // either a 400 response or an early disconnect is acceptable.
    let _ = stream.read_to_string(&mut response);
    assert!(
        response.is_empty() || response.starts_with("HTTP/1.1 400"),
        "{response}"
    );

    // The server is still fully functional afterwards.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}

#[test]
fn full_queue_sheds_load_with_503_and_retry_after() {
    let _g = lock();
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 1,
            max_queue: 1,
            io_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // Occupy the only worker with a silent connection…
    let blocker = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(150));
    // …and fill the one queue slot with another.
    let queued = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(150));

    // The next connection must be shed immediately with 503. Shedding
    // happens at accept time, before any request is read — send nothing,
    // or the server's close-with-unread-data would RST the response away.
    let mut shed = TcpStream::connect(addr).expect("connect");
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    shed.read_to_string(&mut response)
        .expect("read shed response");
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
    assert!(response.contains("Retry-After:"), "{response}");
    assert!(response.contains("overloaded"), "{response}");

    drop(blocker);
    drop(queued);
    handle.shutdown();
}

#[test]
fn full_batch_queue_sheds_with_503_and_retry_after() {
    let _g = lock();
    // Wedge the (sole) scorer on every batch: each formed batch sleeps
    // 1.5 s before scoring, so the one-slot batch queue fills behind it.
    std::env::set_var("TAXOREC_FAULT_STALL_MS", "1500");
    install(FaultSpec::parse("stall@serve.batch:1+").expect("spec"));
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 4,
            io_timeout: Duration::from_secs(5),
            batch: BatchOptions {
                max_batch: 1,
                deadline: Duration::ZERO,
                queue_capacity: 1,
                n_scorers: 1,
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    let send = |user: u32| {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(
            s,
            "GET /recommend?user={user}&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .expect("send");
        s
    };
    // R1 is taken by the scorer (which stalls); R2 fills the one queue
    // slot; R3 must be shed at submission with 503 + Retry-After,
    // *before* any scoring work.
    let mut r1 = send(0);
    std::thread::sleep(Duration::from_millis(300));
    let mut r2 = send(1);
    std::thread::sleep(Duration::from_millis(200));
    let mut r3 = send(2);
    let mut shed_response = String::new();
    r3.read_to_string(&mut shed_response).expect("read shed");
    assert!(shed_response.starts_with("HTTP/1.1 503"), "{shed_response}");
    assert!(shed_response.contains("Retry-After:"), "{shed_response}");
    assert!(shed_response.contains("overloaded"), "{shed_response}");

    // The admitted requests still complete once the stalls elapse —
    // shedding refused new work, it did not break queued work.
    for (user, s) in [(0u32, &mut r1), (1, &mut r2)] {
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read admitted");
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "user {user}: {response}"
        );
    }
    disable();
    std::env::remove_var("TAXOREC_FAULT_STALL_MS");
    handle.shutdown();
}

#[test]
fn panicking_batch_fails_only_its_own_requests() {
    let _g = lock();
    // Singleton batches make the blast radius exact: batch #1 (the first
    // request) panics; batches #2 and #3 must be untouched.
    install(FaultSpec::parse("panic@serve.batch:1").expect("spec"));
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            io_timeout: Duration::from_secs(5),
            batch: BatchOptions {
                max_batch: 1,
                deadline: Duration::ZERO,
                queue_capacity: 16,
                n_scorers: 1,
            },
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    let panics_before = taxorec_telemetry::counter("serve.batch.panics").get();
    let (status, response) = http_get(addr, "/recommend?user=0&k=3");
    assert_eq!(status, 500, "{response}");
    assert!(response.contains("internal error"), "{response}");
    disable();

    // The scorer survived; the next batches score normally.
    for user in [1u32, 2] {
        let (status, body) = http_get(addr, &format!("/recommend?user={user}&k=3"));
        assert_eq!(status, 200, "user {user}: {body}");
        assert!(body.contains("\"items\":["), "{body}");
    }
    // And the doomed request's user is not poisoned either — a retry
    // (now a cache miss again, since the panic cached nothing) succeeds.
    let (status, body) = http_get(addr, "/recommend?user=0&k=3");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        taxorec_telemetry::counter("serve.batch.panics").get(),
        panics_before + 1,
        "exactly one batch failed"
    );

    handle.shutdown();
}

#[test]
fn slow_clients_cannot_stall_batched_scoring() {
    let _g = lock();
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 2,
            io_timeout: Duration::from_secs(5),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    // A trickling client occupies one parser worker (bounded by the io
    // deadline)…
    let mut trickler = TcpStream::connect(addr).expect("connect");
    write!(trickler, "GET /recomm").expect("partial send");
    // …and a client that submits a full batched request but never reads
    // its response occupies, at worst, a responder.
    let mut deaf = TcpStream::connect(addr).expect("connect");
    write!(
        deaf,
        "GET /recommend?user=1&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
    )
    .expect("send");
    std::thread::sleep(Duration::from_millis(100));

    // A well-behaved cache-miss request still flows through the whole
    // pipeline — parse, batch, score, respond — far inside the io
    // deadline the slow clients are burning.
    let begin = std::time::Instant::now();
    let (status, body) = http_get(addr, "/recommend?user=2&k=3");
    let elapsed = begin.elapsed();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"items\":["), "{body}");
    assert!(
        elapsed < Duration::from_secs(2),
        "batched request stalled {elapsed:?} behind slow clients"
    );

    drop(trickler);
    drop(deaf);
    handle.shutdown();
}

#[test]
fn injected_request_panic_returns_500_and_the_worker_survives() {
    let _g = lock();
    let handle = serve_with(
        Arc::new(serving_model()),
        "127.0.0.1:0",
        ServeOptions {
            n_workers: 1,
            io_timeout: Duration::from_secs(2),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.local_addr();

    install(FaultSpec::parse("panic@serve.request:1").expect("spec"));
    let (status, response) = http_get(addr, "/recommend?user=0&k=3");
    assert_eq!(status, 500, "{response}");
    assert!(response.contains("internal error"), "{response}");
    disable();

    // Same (sole) worker, next request: business as usual.
    let (status, body) = http_get(addr, "/recommend?user=0&k=3");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"items\":["), "{body}");
    let (status, metrics) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert!(metrics.contains("serve.http.panics"), "{metrics}");

    handle.shutdown();
}
