//! The online query engine: an immutable [`ServingModel`] answering
//! top-K recommendation and explanation queries from a checkpoint.
//!
//! Design follows the offline-train / online-serve split of Chamberlain
//! et al.'s "Scalable Hyperbolic Recommender Systems": the hyperbolic
//! embeddings are learned offline, frozen into a compact artifact, and
//! queried online through Lorentz-distance scoring with heap-based
//! partial top-K selection — a full sorted ranking of the catalogue is
//! never materialized.
//!
//! Scoring is **bit-identical** to the live [`TaxoRec`] model: the same
//! `g(u,v) = d²(u_ir, v_ir) + gain·α_u·d²(u_tg, v_tg)` (Eqs. 16–17)
//! evaluated in the same operation order on the same bit-exact floats.
//!
//! A bounded LRU cache keyed on `(user, k)` absorbs repeated queries
//! (hit/miss counters land in `taxorec-telemetry` as `serve.cache.*`),
//! and batched multi-user queries fan out over `taxorec-parallel`.

use std::sync::{Arc, Mutex};

use taxorec_core::{ModelState, TaxoRec, TaxoRecConfig};
use taxorec_data::{Dataset, Split};
use taxorec_eval::top_k;
use taxorec_geometry::batch::{fused_scores_block, BlockCache, TagChannel};
use taxorec_geometry::{convert, lorentz};
use taxorec_taxonomy::Taxonomy;

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::lru::LruCache;

/// Default bound on the response cache (distinct `(user, k)` entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// A query against an entity the model does not know.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// User id outside `0..n_users`.
    UnknownUser {
        /// The requested user.
        user: u32,
        /// Number of users the model was trained on.
        n_users: usize,
    },
    /// Item id outside `0..n_items`.
    UnknownItem {
        /// The requested item.
        item: u32,
        /// Catalogue size.
        n_items: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (model has {n_users} users)")
            }
            Self::UnknownItem { item, n_items } => {
                write!(f, "unknown item {item} (catalogue has {n_items} items)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One tag of an item, ranked by proximity to the user's tag-relevant
/// embedding (the Table V "closest tags" signal).
#[derive(Clone, Debug)]
pub struct TagAffinity {
    /// Tag id.
    pub tag: u32,
    /// Display name (`tag<N>` placeholder when the artifact carried no
    /// names).
    pub name: String,
    /// Lorentz distance from the user's tag-relevant embedding to the
    /// tag lifted onto the hyperboloid — smaller is closer.
    pub distance: f64,
}

/// Why an item was recommended to a user: its score decomposition and the
/// taxonomy neighborhood of the user's closest item tag.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The queried user.
    pub user: u32,
    /// The queried item.
    pub item: u32,
    /// The model score (higher is better; negated joint distance).
    pub score: f64,
    /// Personalized tag weight `α_u` of this user (Eq. 16).
    pub alpha: f64,
    /// The item's tags ranked by proximity to the user (closest first).
    /// Empty when the artifact carried no item-tag lists or the tag
    /// channel is inactive.
    pub item_tags: Vec<TagAffinity>,
    /// Depth of the taxonomy node where the closest tag resides
    /// (`None` without a taxonomy or item tags).
    pub node_level: Option<usize>,
    /// Display names of the tags retained at that node — the "topic"
    /// the recommendation is rooted in.
    pub node_tags: Vec<String>,
}

/// A shared, immutable recommendation list: `(item, score)` best first.
pub type Ranking = Arc<Vec<(u32, f64)>>;

/// An immutable, thread-safe top-K query engine over a trained model.
pub struct ServingModel {
    state: ModelState,
    tag_names: Vec<String>,
    item_tags: Vec<Vec<u32>>,
    /// Sorted per-user seen-item lists (train-set exclusion).
    seen: Vec<Vec<u32>>,
    /// Fused-kernel cache over the item embeddings, tag-irrelevant
    /// channel. The model is immutable, so the cache is built once at
    /// construction and never invalidated (DESIGN.md §12).
    ir_cache: BlockCache,
    /// Tag-relevant counterpart of `ir_cache` (`None` when the tag
    /// channel is inactive).
    tg_cache: Option<BlockCache>,
    cache: Mutex<LruCache<(u32, u32), Ranking>>,
}

impl ServingModel {
    /// Builds the engine from a validated checkpoint with the default
    /// cache capacity.
    pub fn new(ckpt: Checkpoint) -> Result<Self, CheckpointError> {
        Self::with_cache_capacity(ckpt, DEFAULT_CACHE_CAPACITY)
    }

    /// Builds the engine with an explicit response-cache bound
    /// (`0` disables caching).
    pub fn with_cache_capacity(
        ckpt: Checkpoint,
        cache_capacity: usize,
    ) -> Result<Self, CheckpointError> {
        ckpt.validate()?;
        let Checkpoint {
            state,
            tag_names,
            item_tags,
            mut seen_items,
        } = ckpt;
        for items in &mut seen_items {
            items.sort_unstable();
            items.dedup();
        }
        let ir_cache = if state.v_ir.rows() > 0 {
            BlockCache::build(state.v_ir.data(), state.v_ir.cols())
        } else {
            BlockCache::default()
        };
        let tg_cache = (state.tags_active && state.v_tg.rows() > 0)
            .then(|| BlockCache::build(state.v_tg.data(), state.v_tg.cols()));
        Ok(Self {
            state,
            tag_names,
            item_tags,
            seen: seen_items,
            ir_cache,
            tg_cache,
            cache: Mutex::new(LruCache::new(cache_capacity)),
        })
    }

    /// Convenience for tests and in-process serving: snapshot a trained
    /// model together with its dataset context, skipping the disk round
    /// trip.
    pub fn from_model(
        model: &TaxoRec,
        dataset: &Dataset,
        split: &Split,
    ) -> Result<Self, CheckpointError> {
        Self::new(
            Checkpoint::from_model(model)
                .with_dataset(dataset)
                .with_seen_items(&split.train),
        )
    }

    /// Model display name (e.g. `"TaxoRec"`).
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// Number of users the model can serve.
    pub fn n_users(&self) -> usize {
        self.state.n_users()
    }

    /// Catalogue size.
    pub fn n_items(&self) -> usize {
        self.state.n_items()
    }

    /// Number of tags with learned embeddings.
    pub fn n_tags(&self) -> usize {
        self.state.n_tags()
    }

    /// The training configuration frozen into the artifact.
    pub fn config(&self) -> &TaxoRecConfig {
        &self.state.config
    }

    /// The taxonomy constructed at train time, if any.
    pub fn taxonomy(&self) -> Option<&Taxonomy> {
        self.state.taxonomy.as_ref()
    }

    /// Preference score of `user` for every item — identical arithmetic
    /// (and therefore identical bits) to [`TaxoRec::scores_for_user`],
    /// computed with the fused block kernels over the construction-time
    /// caches into a caller-provided buffer.
    fn scores_into(&self, u: usize, out: &mut Vec<f64>) {
        let s = &self.state;
        let n_items = s.v_ir.rows();
        // Every element is overwritten below; skip the zero-refill when a
        // reused buffer already has the right length.
        if out.len() != n_items {
            out.clear();
            out.resize(n_items, 0.0);
        }
        if n_items == 0 {
            return;
        }
        let urow_ir = s.u_ir.row(u);
        let alpha = s.config.tag_channel_gain * s.alphas.get(u).copied().unwrap_or(0.0);
        match &self.tg_cache {
            Some(tg) => taxorec_core::scratch::with_buf(n_items, |scr| {
                fused_scores_block(
                    &self.ir_cache,
                    urow_ir,
                    Some(TagChannel {
                        cache: tg,
                        anchor: s.u_tg.row(u),
                        alpha,
                    }),
                    0,
                    n_items,
                    scr,
                    out,
                );
            }),
            None => fused_scores_block(&self.ir_cache, urow_ir, None, 0, n_items, &mut [], out),
        }
    }

    /// The `k` best unseen items for `user`, best first, with scores.
    ///
    /// Items from the user's training history (when the artifact carries
    /// seen-item lists) are excluded. Results are memoized in the LRU
    /// response cache; `serve.cache.hit` / `serve.cache.miss` count the
    /// outcomes.
    pub fn recommend(&self, user: u32, k: usize) -> Result<Ranking, ServeError> {
        let u = user as usize;
        if u >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        let key = (user, k.min(u32::MAX as usize) as u32);
        {
            let _cache_span = taxorec_telemetry::trace::child_span("cache");
            if let Some(hit) = self.cache.lock().unwrap().get(&key) {
                taxorec_telemetry::counter("serve.cache.hit").inc(1);
                return Ok(Arc::clone(hit));
            }
            taxorec_telemetry::counter("serve.cache.miss").inc(1);
        }
        let seen: &[u32] = self.seen.get(u).map(Vec::as_slice).unwrap_or(&[]);
        // Score into a per-worker scratch buffer: a cache miss allocates
        // only its `k`-entry result after warm-up. The `score` span (with
        // the fused block scoring under `kernel`) is inert unless the
        // ambient request is sampled.
        let _score_span = taxorec_telemetry::trace::child_span("score");
        let top = taxorec_core::scratch::with_vec(|scores| {
            {
                let _kernel_span = taxorec_telemetry::trace::child_span("kernel");
                self.scores_into(u, scores);
            }
            top_k(scores, k, |v| seen.binary_search(&(v as u32)).is_ok())
        });
        let result = Arc::new(top);
        self.cache.lock().unwrap().put(key, Arc::clone(&result));
        Ok(result)
    }

    /// Answers many users in one call, fanning the per-user work out over
    /// the `taxorec-parallel` pool. Result order matches `users`; each
    /// entry fails independently (an unknown user does not poison the
    /// batch).
    pub fn recommend_batch(&self, users: &[u32], k: usize) -> Vec<Result<Ranking, ServeError>> {
        taxorec_parallel::par_map("serve.batch", users.len(), |i| self.recommend(users[i], k))
    }

    /// Explains why `item` scores the way it does for `user`: the score,
    /// the user's `α_u`, the item's tags ranked by proximity to the
    /// user's tag-relevant embedding, and the taxonomy node the closest
    /// tag resides in.
    pub fn explain(&self, user: u32, item: u32) -> Result<Explanation, ServeError> {
        let u = user as usize;
        let v = item as usize;
        if u >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        if v >= self.n_items() {
            return Err(ServeError::UnknownItem {
                item,
                n_items: self.n_items(),
            });
        }
        let s = &self.state;
        let alpha = s.alphas.get(u).copied().unwrap_or(0.0);
        let mut g = lorentz::distance_sq(s.u_ir.row(u), s.v_ir.row(v));
        if s.tags_active {
            g += s.config.tag_channel_gain
                * alpha
                * lorentz::distance_sq(s.u_tg.row(u), s.v_tg.row(v));
        }
        let score = -g;

        let mut item_tags = Vec::new();
        if s.tags_active && s.t_p.rows() > 0 {
            if let Some(tags) = self.item_tags.get(v) {
                let dim = s.t_p.cols();
                let mut lift = vec![0.0; dim + 1];
                for &t in tags {
                    convert::poincare_to_lorentz(s.t_p.row(t as usize), &mut lift);
                    item_tags.push(TagAffinity {
                        tag: t,
                        name: self.tag_name(t),
                        distance: lorentz::distance(s.u_tg.row(u), &lift),
                    });
                }
                item_tags.sort_by(|a, b| {
                    a.distance
                        .total_cmp(&b.distance)
                        .then_with(|| a.tag.cmp(&b.tag))
                });
            }
        }

        let (node_level, node_tags) = match (&s.taxonomy, item_tags.first()) {
            (Some(taxo), Some(closest)) => {
                let node_idx = taxo.residence(closest.tag);
                let node = &taxo.nodes()[node_idx];
                (
                    Some(node.level),
                    node.retained.iter().map(|&t| self.tag_name(t)).collect(),
                )
            }
            _ => (None, Vec::new()),
        };

        Ok(Explanation {
            user,
            item,
            score,
            alpha,
            item_tags,
            node_level,
            node_tags,
        })
    }

    /// Current response-cache occupancy (entries, capacity).
    pub fn cache_usage(&self) -> (usize, usize) {
        let c = self.cache.lock().unwrap();
        (c.len(), c.capacity())
    }

    fn tag_name(&self, t: u32) -> String {
        self.tag_names
            .get(t as usize)
            .cloned()
            .unwrap_or_else(|| format!("tag{t}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, select_top_k, Preset, Recommender, Scale};

    fn trained() -> (TaxoRec, Dataset, Split) {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let mut cfg = taxorec_core::TaxoRecConfig::fast_test();
        cfg.epochs = 6;
        let mut m = TaxoRec::new(cfg);
        m.fit(&d, &s);
        (m, d, s)
    }

    #[test]
    fn recommend_matches_live_model_and_excludes_seen() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        for user in 0..d.n_users as u32 {
            let got = serving.recommend(user, 10).unwrap();
            let scores = m.scores_for_user(user);
            let seen: std::collections::HashSet<u32> =
                s.train[user as usize].iter().copied().collect();
            let expect = select_top_k(&scores, 10, |v| seen.contains(&(v as u32)));
            assert_eq!(*got, expect, "user {user}");
            for &(v, _) in got.iter() {
                assert!(!seen.contains(&v), "user {user} served seen item {v}");
            }
        }
    }

    #[test]
    fn cache_serves_identical_results_and_counts() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        let a = serving.recommend(1, 5).unwrap();
        let b = serving.recommend(1, 5).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call is a cache hit");
        // Different k is a different cache key.
        let c = serving.recommend(1, 3).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(&a[..3], &c[..]);
        assert!(serving.cache_usage().0 >= 2);
    }

    #[test]
    fn batch_matches_single_queries() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        let users: Vec<u32> = (0..d.n_users as u32).collect();
        let batch = serving.recommend_batch(&users, 7);
        assert_eq!(batch.len(), users.len());
        for (u, res) in users.iter().zip(&batch) {
            assert_eq!(**res.as_ref().unwrap(), *serving.recommend(*u, 7).unwrap());
        }
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        let n = d.n_users as u32;
        assert_eq!(
            serving.recommend(n + 5, 3).unwrap_err(),
            ServeError::UnknownUser {
                user: n + 5,
                n_users: d.n_users
            }
        );
        assert!(matches!(
            serving.explain(0, d.n_items as u32).unwrap_err(),
            ServeError::UnknownItem { .. }
        ));
    }

    #[test]
    fn explain_ranks_item_tags_and_names_a_taxonomy_node() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        // Find an item with tags.
        let item = (0..d.n_items)
            .find(|&v| !d.item_tags[v].is_empty())
            .expect("synthetic data has tagged items") as u32;
        let ex = serving.explain(2, item).unwrap();
        assert_eq!(ex.item_tags.len(), d.item_tags[item as usize].len());
        for w in ex.item_tags.windows(2) {
            assert!(w[0].distance <= w[1].distance, "closest first");
        }
        assert!(ex.node_level.is_some(), "taxonomy rationale present");
        assert!(ex.score.is_finite());
        // Score matches the live model's score for that pair.
        assert_eq!(ex.score, m.scores_for_user(2)[item as usize]);
    }
}
