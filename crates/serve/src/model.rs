//! The online query engine: an immutable [`ServingModel`] answering
//! top-K recommendation and explanation queries from a checkpoint.
//!
//! Design follows the offline-train / online-serve split of Chamberlain
//! et al.'s "Scalable Hyperbolic Recommender Systems": the hyperbolic
//! embeddings are learned offline, frozen into a compact artifact, and
//! queried online through Lorentz-distance scoring with heap-based
//! partial top-K selection — a full sorted ranking of the catalogue is
//! never materialized.
//!
//! Scoring is **bit-identical** to the live [`TaxoRec`] model: the same
//! `g(u,v) = d²(u_ir, v_ir) + gain·α_u·d²(u_tg, v_tg)` (Eqs. 16–17)
//! evaluated in the same operation order on the same bit-exact floats.
//!
//! A bounded LRU cache keyed on `(user, k)` absorbs repeated queries
//! (hit/miss counters land in `taxorec-telemetry` as `serve.cache.*`),
//! and batched multi-user queries fan out over `taxorec-parallel`.
//!
//! When the artifact carries a retrieval index
//! ([`Checkpoint::with_retrieval_index`]) the engine can serve
//! [`RetrievalMode::Beam`] queries: a beam search over the index routes
//! each anchor to a handful of clusters and fused-scores only their
//! items — sub-linear in the catalogue, with recall governed by the beam
//! width (beam = all leaves reproduces the exhaustive ranking bit for
//! bit). The mode is fixed at construction ([`ServingModel::with_retrieval`])
//! because the response cache is keyed on `(user, k)` only; the default
//! is [`RetrievalMode::Exact`], which preserves the pre-index behavior
//! exactly.

use std::sync::{Arc, Mutex};

use taxorec_core::{ModelState, TaxoRec, TaxoRecConfig};
use taxorec_data::{Dataset, Split, TopKAccumulator};
use taxorec_eval::top_k;
use taxorec_geometry::batch::{
    fused_scores_block, fused_scores_multi, BlockCache, TagChannel, TagChannelMulti,
    FUSED_ITEM_CHUNK,
};
use taxorec_geometry::{convert, lorentz};
use taxorec_retrieval::{RetrievalMode, TaxoIndex};
use taxorec_taxonomy::Taxonomy;

use crate::checkpoint::{item_embeddings, ArtifactInfo, Checkpoint, CheckpointError};
use crate::lru::LruCache;

/// Default bound on the response cache (distinct `(user, k)` entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Users per fused scoring block in [`ServingModel::recommend_many`] —
/// the block size the multi-anchor kernels are tuned for (DESIGN.md
/// §12) and the default `max_batch` of the serving-tier scheduler.
pub const SERVE_BLOCK: usize = 32;

/// A query against an entity the model does not know.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// User id outside `0..n_users`.
    UnknownUser {
        /// The requested user.
        user: u32,
        /// Number of users the model was trained on.
        n_users: usize,
    },
    /// Item id outside `0..n_items`.
    UnknownItem {
        /// The requested item.
        item: u32,
        /// Catalogue size.
        n_items: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (model has {n_users} users)")
            }
            Self::UnknownItem { item, n_items } => {
                write!(f, "unknown item {item} (catalogue has {n_items} items)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One tag of an item, ranked by proximity to the user's tag-relevant
/// embedding (the Table V "closest tags" signal).
#[derive(Clone, Debug)]
pub struct TagAffinity {
    /// Tag id.
    pub tag: u32,
    /// Display name (`tag<N>` placeholder when the artifact carried no
    /// names).
    pub name: String,
    /// Lorentz distance from the user's tag-relevant embedding to the
    /// tag lifted onto the hyperboloid — smaller is closer.
    pub distance: f64,
}

/// Why an item was recommended to a user: its score decomposition and the
/// taxonomy neighborhood of the user's closest item tag.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The queried user.
    pub user: u32,
    /// The queried item.
    pub item: u32,
    /// The model score (higher is better; negated joint distance).
    pub score: f64,
    /// Personalized tag weight `α_u` of this user (Eq. 16).
    pub alpha: f64,
    /// The item's tags ranked by proximity to the user (closest first).
    /// Empty when the artifact carried no item-tag lists or the tag
    /// channel is inactive.
    pub item_tags: Vec<TagAffinity>,
    /// Depth of the taxonomy node where the closest tag resides
    /// (`None` without a taxonomy or item tags).
    pub node_level: Option<usize>,
    /// Display names of the tags retained at that node — the "topic"
    /// the recommendation is rooted in.
    pub node_tags: Vec<String>,
}

/// A shared, immutable recommendation list: `(item, score)` best first.
pub type Ranking = Arc<Vec<(u32, f64)>>;

/// Response-cache key for a `(user, k)` query. Total: every distinct
/// `k` maps to a distinct key (`usize` embeds losslessly in `u64`), so
/// two different huge `k` values can never alias one cached `Ranking`.
/// The HTTP layer additionally rejects absurd `k` at parse time; this
/// keeps direct API callers safe too.
fn cache_key(user: u32, k: usize) -> (u32, u64) {
    (user, k as u64)
}

/// An immutable, thread-safe top-K query engine over a trained model.
pub struct ServingModel {
    state: ModelState,
    tag_names: Vec<String>,
    item_tags: Vec<Vec<u32>>,
    /// Sorted per-user seen-item lists (train-set exclusion).
    seen: Vec<Vec<u32>>,
    /// Fused-kernel cache over the item embeddings, tag-irrelevant
    /// channel. The model is immutable, so the cache is built once at
    /// construction and never invalidated (DESIGN.md §12).
    ir_cache: BlockCache,
    /// Tag-relevant counterpart of `ir_cache` (`None` when the tag
    /// channel is inactive).
    tg_cache: Option<BlockCache>,
    /// Retrieval index rebuilt from the artifact's [`IndexParts`]
    /// section (`None` when the artifact carries none).
    ///
    /// [`IndexParts`]: taxorec_retrieval::IndexParts
    index: Option<TaxoIndex>,
    /// How `recommend` generates candidates; fixed at construction.
    retrieval: RetrievalMode,
    /// Wire identity of the artifact this engine was loaded from
    /// (`None` when built straight from an in-process model).
    artifact: Option<ArtifactInfo>,
    /// Journal position folded into this engine's embeddings (`None`
    /// for offline artifacts; surfaced in `/healthz`).
    journal_cursor: Option<u64>,
    cache: Mutex<LruCache<(u32, u64), Ranking>>,
}

impl ServingModel {
    /// Builds the engine from a validated checkpoint with the default
    /// cache capacity.
    pub fn new(ckpt: Checkpoint) -> Result<Self, CheckpointError> {
        Self::with_cache_capacity(ckpt, DEFAULT_CACHE_CAPACITY)
    }

    /// Builds the engine with an explicit response-cache bound
    /// (`0` disables caching).
    pub fn with_cache_capacity(
        ckpt: Checkpoint,
        cache_capacity: usize,
    ) -> Result<Self, CheckpointError> {
        ckpt.validate()?;
        let Checkpoint {
            state,
            tag_names,
            item_tags,
            mut seen_items,
            index,
            artifact,
            journal_cursor,
        } = ckpt;
        for items in &mut seen_items {
            items.sort_unstable();
            items.dedup();
        }
        let ir_cache = if state.v_ir.rows() > 0 {
            BlockCache::build(state.v_ir.data(), state.v_ir.cols())
        } else {
            BlockCache::default()
        };
        let tg_cache = (state.tags_active && state.v_tg.rows() > 0)
            .then(|| BlockCache::build(state.v_tg.data(), state.v_tg.cols()));
        // Rebuild the index's permuted kernel caches from the model
        // embeddings (the artifact stores structure only).
        let index = index
            .map(|parts| {
                TaxoIndex::from_parts(parts, &item_embeddings(&state))
                    .map_err(|e| CheckpointError::Invalid(format!("retrieval index: {e}")))
            })
            .transpose()?;
        // Register the retrieval series up front so `/metrics` shows
        // them (at zero) even before the first beam query.
        taxorec_telemetry::gauge("serve.retrieval.recall_mode").set(0.0);
        taxorec_telemetry::counter("serve.retrieval.candidates");
        taxorec_telemetry::histogram("serve.retrieval.routed_ms");
        Ok(Self {
            state,
            tag_names,
            item_tags,
            seen: seen_items,
            ir_cache,
            tg_cache,
            index,
            retrieval: RetrievalMode::Exact,
            artifact,
            journal_cursor,
            cache: Mutex::new(LruCache::new(cache_capacity)),
        })
    }

    /// Selects how `recommend` / `recommend_many` generate candidates.
    /// [`RetrievalMode::Beam`] requires the artifact to carry a
    /// retrieval index; `Beam(0)` takes the index's build-time default
    /// beam width. The choice is fixed for the engine's lifetime — the
    /// response cache is keyed on `(user, k)` only, so entries must all
    /// come from one mode.
    pub fn with_retrieval(mut self, mode: RetrievalMode) -> Result<Self, CheckpointError> {
        if matches!(mode, RetrievalMode::Beam(_)) && self.index.is_none() {
            return Err(CheckpointError::Invalid(
                "beam retrieval requested, but the artifact carries no retrieval index — \
                 rebuild the checkpoint with one (train-demo --index) or serve with \
                 --retrieval exact"
                    .to_string(),
            ));
        }
        // Resolve `Beam(0)` to the index's default width up front so
        // every downstream surface (banner, /healthz, telemetry) shows
        // the width actually in effect, not the `0` sentinel.
        self.retrieval = match (mode, &self.index) {
            (RetrievalMode::Beam(0), Some(index)) => RetrievalMode::Beam(index.default_beam()),
            (m, _) => m,
        };
        // `recall_mode` gauge: 0 = exact, otherwise the effective beam
        // width — so dashboards can tell at a glance whether ranking is
        // exhaustive or approximate.
        taxorec_telemetry::gauge("serve.retrieval.recall_mode")
            .set(self.beam_width().unwrap_or(0) as f64);
        Ok(self)
    }

    /// Convenience for tests and in-process serving: snapshot a trained
    /// model together with its dataset context, skipping the disk round
    /// trip.
    pub fn from_model(
        model: &TaxoRec,
        dataset: &Dataset,
        split: &Split,
    ) -> Result<Self, CheckpointError> {
        Self::new(
            Checkpoint::from_model(model)
                .with_dataset(dataset)
                .with_seen_items(&split.train),
        )
    }

    /// Model display name (e.g. `"TaxoRec"`).
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// Number of users the model can serve.
    pub fn n_users(&self) -> usize {
        self.state.n_users()
    }

    /// Catalogue size.
    pub fn n_items(&self) -> usize {
        self.state.n_items()
    }

    /// Number of tags with learned embeddings.
    pub fn n_tags(&self) -> usize {
        self.state.n_tags()
    }

    /// The training configuration frozen into the artifact.
    pub fn config(&self) -> &TaxoRecConfig {
        &self.state.config
    }

    /// The taxonomy constructed at train time, if any.
    pub fn taxonomy(&self) -> Option<&Taxonomy> {
        self.state.taxonomy.as_ref()
    }

    /// The active candidate-generation mode.
    pub fn retrieval_mode(&self) -> RetrievalMode {
        self.retrieval
    }

    /// The retrieval index rebuilt from the artifact, if it carried one.
    pub fn retrieval_index(&self) -> Option<&TaxoIndex> {
        self.index.as_ref()
    }

    /// Wire identity (format version, CRC-32, size) of the `.taxo`
    /// artifact this engine was loaded from; `None` for an engine built
    /// from an in-process model that never crossed the wire.
    pub fn artifact_info(&self) -> Option<ArtifactInfo> {
        self.artifact
    }

    /// Journal position folded into this engine (`None` = offline
    /// artifact, no streaming history).
    pub fn journal_cursor(&self) -> Option<u64> {
        self.journal_cursor
    }

    /// Effective beam width: `None` in exact mode, the resolved width
    /// (request or index default) in beam mode.
    fn beam_width(&self) -> Option<usize> {
        match (self.retrieval, &self.index) {
            (RetrievalMode::Beam(b), Some(index)) => {
                Some(if b == 0 { index.default_beam() } else { b })
            }
            _ => None,
        }
    }

    /// The user-side inputs every retrieval query needs: the Lorentz
    /// anchor and, when the tag channel is active, the tag anchor with
    /// its weight `gain·α_u` — the same pair the exhaustive kernels use,
    /// so beam scoring stays bit-compatible per item.
    fn anchor(&self, u: usize) -> (&[f64], Option<(&[f64], f64)>) {
        let s = &self.state;
        let tag = self.tg_cache.as_ref().map(|_| {
            let alpha = s.config.tag_channel_gain * s.alphas.get(u).copied().unwrap_or(0.0);
            (s.u_tg.row(u), alpha)
        });
        (s.u_ir.row(u), tag)
    }

    /// Index-backed candidate generation for one user: route, score the
    /// selected clusters, count candidates and routing latency.
    fn beam_search_one(&self, u: usize, beam: usize, k: usize, seen: &[u32]) -> Vec<(u32, f64)> {
        let index = self.index.as_ref().expect("beam mode requires an index");
        let (anchor_ir, tag) = self.anchor(u);
        let t0 = std::time::Instant::now();
        let (top, stats) =
            index.search(anchor_ir, tag, beam, k, &|v| seen.binary_search(&v).is_ok());
        taxorec_telemetry::counter("serve.retrieval.candidates").inc(stats.candidates as u64);
        taxorec_telemetry::histogram("serve.retrieval.routed_ms")
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        top
    }

    /// Preference score of `user` for every item — identical arithmetic
    /// (and therefore identical bits) to [`TaxoRec::scores_for_user`],
    /// computed with the fused block kernels over the construction-time
    /// caches into a caller-provided buffer.
    fn scores_into(&self, u: usize, out: &mut Vec<f64>) {
        let s = &self.state;
        let n_items = s.v_ir.rows();
        // Every element is overwritten below; skip the zero-refill when a
        // reused buffer already has the right length.
        if out.len() != n_items {
            out.clear();
            out.resize(n_items, 0.0);
        }
        if n_items == 0 {
            return;
        }
        let urow_ir = s.u_ir.row(u);
        let alpha = s.config.tag_channel_gain * s.alphas.get(u).copied().unwrap_or(0.0);
        match &self.tg_cache {
            Some(tg) => taxorec_core::scratch::with_buf(n_items, |scr| {
                fused_scores_block(
                    &self.ir_cache,
                    urow_ir,
                    Some(TagChannel {
                        cache: tg,
                        anchor: s.u_tg.row(u),
                        alpha,
                    }),
                    0,
                    n_items,
                    scr,
                    out,
                );
            }),
            None => fused_scores_block(&self.ir_cache, urow_ir, None, 0, n_items, &mut [], out),
        }
    }

    /// The `k` best unseen items for `user`, best first, with scores.
    ///
    /// Items from the user's training history (when the artifact carries
    /// seen-item lists) are excluded. Results are memoized in the LRU
    /// response cache; `serve.cache.hit` / `serve.cache.miss` count the
    /// outcomes.
    pub fn recommend(&self, user: u32, k: usize) -> Result<Ranking, ServeError> {
        let u = user as usize;
        if u >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        if let Some(hit) = self.cached(user, k) {
            return Ok(hit);
        }
        let seen: &[u32] = self.seen.get(u).map(Vec::as_slice).unwrap_or(&[]);
        // Any k beyond the catalogue returns the full unseen list, so
        // clamp before sizing accumulators (a u32::MAX-sized heap would
        // abort the allocator). The cache key keeps the requested k.
        let k_eff = k.min(self.n_items());
        // Score into a per-worker scratch buffer: a cache miss allocates
        // only its `k`-entry result after warm-up. The `score` span (with
        // the fused block scoring under `kernel`) is inert unless the
        // ambient request is sampled.
        let _score_span = taxorec_telemetry::trace::child_span("score");
        let top = match self.beam_width() {
            Some(beam) => {
                let _kernel_span = taxorec_telemetry::trace::child_span("kernel");
                self.beam_search_one(u, beam, k_eff, seen)
            }
            None => taxorec_core::scratch::with_vec(|scores| {
                {
                    let _kernel_span = taxorec_telemetry::trace::child_span("kernel");
                    self.scores_into(u, scores);
                }
                top_k(scores, k_eff, |v| seen.binary_search(&(v as u32)).is_ok())
            }),
        };
        let result = Arc::new(top);
        self.cache
            .lock()
            .unwrap()
            .put(cache_key(user, k), Arc::clone(&result));
        Ok(result)
    }

    /// Probes the response cache for `(user, k)` without scoring,
    /// counting the outcome in `serve.cache.hit` / `serve.cache.miss`.
    /// The serving tier uses this to answer hot keys straight from the
    /// worker thread instead of routing them through the batch
    /// scheduler.
    pub fn cached(&self, user: u32, k: usize) -> Option<Ranking> {
        let _cache_span = taxorec_telemetry::trace::child_span("cache");
        match self.probe(cache_key(user, k)) {
            Some(hit) => {
                taxorec_telemetry::counter("serve.cache.hit").inc(1);
                Some(hit)
            }
            None => {
                taxorec_telemetry::counter("serve.cache.miss").inc(1);
                None
            }
        }
    }

    /// Silent cache probe (no counters, no span): the batched path
    /// re-probes right before scoring — a concurrent identical request
    /// may have filled the entry while this one waited in the queue —
    /// and that second look must not double-count the miss the HTTP
    /// layer already recorded.
    fn probe(&self, key: (u32, u64)) -> Option<Ranking> {
        self.cache.lock().unwrap().get(&key).map(Arc::clone)
    }

    /// Answers a heterogeneous batch of `(user, k)` queries in one call
    /// through the fused multi-anchor kernels: cache misses are grouped
    /// into user-blocks of [`SERVE_BLOCK`], each block streams the item
    /// panels **once** for all its users ([`fused_scores_multi`]), and
    /// every user is ranked through a per-query [`TopKAccumulator`]
    /// while the scores are cache-hot.
    ///
    /// Result order matches `queries`; each entry fails independently
    /// (an unknown user does not poison the batch), and duplicates and
    /// mixed `k` are fine — every query gets its own accumulator.
    ///
    /// **Bit-identical to the single-request path**: the multi-anchor
    /// kernels preserve [`fused_scores_block`]'s per-pair arithmetic
    /// (DESIGN.md §12) and the accumulator offered ascending item ids
    /// replays [`top_k`]'s exact heap sequence, so each entry equals
    /// [`ServingModel::recommend`] for that `(user, k)` — not merely
    /// close. The batching integration tests assert exact equality.
    pub fn recommend_many(&self, queries: &[(u32, usize)]) -> Vec<Result<Ranking, ServeError>> {
        let mut out: Vec<Option<Result<Ranking, ServeError>>> = Vec::new();
        out.resize_with(queries.len(), || None);
        let mut misses: Vec<usize> = Vec::new();
        for (qi, &(user, k)) in queries.iter().enumerate() {
            if user as usize >= self.n_users() {
                out[qi] = Some(Err(ServeError::UnknownUser {
                    user,
                    n_users: self.n_users(),
                }));
            } else if let Some(hit) = self.probe(cache_key(user, k)) {
                out[qi] = Some(Ok(hit));
            } else {
                misses.push(qi);
            }
        }
        for block in misses.chunks(SERVE_BLOCK) {
            for (&qi, ranking) in block.iter().zip(self.score_block(queries, block)) {
                let (user, k) = queries[qi];
                let result = Arc::new(ranking);
                self.cache
                    .lock()
                    .unwrap()
                    .put(cache_key(user, k), Arc::clone(&result));
                out[qi] = Some(Ok(result));
            }
        }
        out.into_iter()
            .map(|o| o.expect("every query answered"))
            .collect()
    }

    /// Scores one block of known-user cache misses (`block` indexes into
    /// `queries`) with one multi-anchor fused pass per catalogue chunk,
    /// ranking each query through its own accumulator with its own `k`
    /// and seen-item exclusion.
    fn score_block(&self, queries: &[(u32, usize)], block: &[usize]) -> Vec<Vec<(u32, f64)>> {
        let s = &self.state;
        let n_items = s.v_ir.rows();
        let b = block.len();
        if b == 0 || n_items == 0 {
            return vec![Vec::new(); b];
        }
        if let Some(beam) = self.beam_width() {
            return self.beam_score_block(queries, block, beam);
        }
        let users: Vec<usize> = block.iter().map(|&qi| queries[qi].0 as usize).collect();
        let anchors_ir: Vec<&[f64]> = users.iter().map(|&u| s.u_ir.row(u)).collect();
        let tg = self.tg_cache.as_ref().map(|tg_cache| {
            let anchors_tg: Vec<&[f64]> = users.iter().map(|&u| s.u_tg.row(u)).collect();
            let alphas: Vec<f64> = users
                .iter()
                .map(|&u| s.config.tag_channel_gain * s.alphas.get(u).copied().unwrap_or(0.0))
                .collect();
            (tg_cache, anchors_tg, alphas)
        });
        let chunk = FUSED_ITEM_CHUNK;
        let buf_len = b * n_items.min(chunk);
        let mut accs: Vec<TopKAccumulator> = block
            .iter()
            .map(|&qi| TopKAccumulator::new(queries[qi].1.min(n_items)))
            .collect();
        taxorec_core::scratch::with_buf(buf_len, |buf| {
            taxorec_core::scratch::with_buf(if tg.is_some() { buf_len } else { 0 }, |scr| {
                let mut lo = 0;
                while lo < n_items {
                    let hi = (lo + chunk).min(n_items);
                    let m = hi - lo;
                    let channel = tg.as_ref().map(|(cache, anchors, alphas)| TagChannelMulti {
                        cache,
                        anchors: anchors.as_slice(),
                        alphas: alphas.as_slice(),
                    });
                    let scr_len = if tg.is_some() { b * m } else { 0 };
                    fused_scores_multi(
                        &self.ir_cache,
                        &anchors_ir,
                        channel,
                        lo,
                        hi,
                        &mut scr[..scr_len],
                        &mut buf[..b * m],
                    );
                    for (pos, acc) in accs.iter_mut().enumerate() {
                        let seen: &[u32] =
                            self.seen.get(users[pos]).map(Vec::as_slice).unwrap_or(&[]);
                        let row = &buf[pos * m..(pos + 1) * m];
                        for (i, &score) in row.iter().enumerate() {
                            let item = (lo + i) as u32;
                            if seen.binary_search(&item).is_err() {
                                acc.push(item, score);
                            }
                        }
                    }
                    lo = hi;
                }
            });
        });
        accs.into_iter().map(|a| a.into_sorted()).collect()
    }

    /// Beam-mode counterpart of [`ServingModel::score_block`]: batched
    /// routing through [`TaxoIndex::search_block`] (each selected leaf
    /// streams once for all queries that chose it). The index is queried
    /// at the block's largest `k` and each result truncated to its own —
    /// a top-`k` list is a prefix of the top-`k_max` list under the same
    /// total order, so every entry stays bit-identical to a lone
    /// [`ServingModel::recommend`] call.
    fn beam_score_block(
        &self,
        queries: &[(u32, usize)],
        block: &[usize],
        beam: usize,
    ) -> Vec<Vec<(u32, f64)>> {
        let index = self.index.as_ref().expect("beam mode requires an index");
        let s = &self.state;
        let users: Vec<usize> = block.iter().map(|&qi| queries[qi].0 as usize).collect();
        let k_max = block
            .iter()
            .map(|&qi| queries[qi].1)
            .max()
            .unwrap_or(0)
            .min(self.n_items());
        let anchors_ir: Vec<&[f64]> = users.iter().map(|&u| s.u_ir.row(u)).collect();
        let tg = self.tg_cache.as_ref().map(|_| {
            let anchors_tg: Vec<&[f64]> = users.iter().map(|&u| s.u_tg.row(u)).collect();
            let alphas: Vec<f64> = users
                .iter()
                .map(|&u| s.config.tag_channel_gain * s.alphas.get(u).copied().unwrap_or(0.0))
                .collect();
            (anchors_tg, alphas)
        });
        let t0 = std::time::Instant::now();
        let (mut results, stats) = index.search_block(
            &anchors_ir,
            tg.as_ref().map(|(a, al)| (a.as_slice(), al.as_slice())),
            beam,
            k_max,
            &|pos, v| {
                let seen: &[u32] = self.seen.get(users[pos]).map(Vec::as_slice).unwrap_or(&[]);
                seen.binary_search(&v).is_ok()
            },
        );
        let candidates: usize = stats.iter().map(|st| st.candidates).sum();
        taxorec_telemetry::counter("serve.retrieval.candidates").inc(candidates as u64);
        taxorec_telemetry::histogram("serve.retrieval.routed_ms")
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        for (pos, &qi) in block.iter().enumerate() {
            results[pos].truncate(queries[qi].1);
        }
        results
    }

    /// Answers many users in one call: blocks of [`SERVE_BLOCK`] users
    /// run through the fused multi-anchor path
    /// ([`ServingModel::recommend_many`]), and multiple blocks fan out
    /// over the `taxorec-parallel` pool. Result order matches `users`;
    /// each entry fails independently — an unknown user yields its own
    /// `Err(`[`ServeError::UnknownUser`]`)` (the error the HTTP layer
    /// maps to `404`) without poisoning the rest of the batch.
    pub fn recommend_batch(&self, users: &[u32], k: usize) -> Vec<Result<Ranking, ServeError>> {
        let queries: Vec<(u32, usize)> = users.iter().map(|&u| (u, k)).collect();
        if queries.len() <= SERVE_BLOCK {
            return self.recommend_many(&queries);
        }
        let blocks: Vec<&[(u32, usize)]> = queries.chunks(SERVE_BLOCK).collect();
        taxorec_parallel::par_map("serve.batch", blocks.len(), |bi| {
            self.recommend_many(blocks[bi])
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Explains why `item` scores the way it does for `user`: the score,
    /// the user's `α_u`, the item's tags ranked by proximity to the
    /// user's tag-relevant embedding, and the taxonomy node the closest
    /// tag resides in.
    pub fn explain(&self, user: u32, item: u32) -> Result<Explanation, ServeError> {
        let u = user as usize;
        let v = item as usize;
        if u >= self.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        if v >= self.n_items() {
            return Err(ServeError::UnknownItem {
                item,
                n_items: self.n_items(),
            });
        }
        let s = &self.state;
        let alpha = s.alphas.get(u).copied().unwrap_or(0.0);
        let mut g = lorentz::distance_sq(s.u_ir.row(u), s.v_ir.row(v));
        if s.tags_active {
            g += s.config.tag_channel_gain
                * alpha
                * lorentz::distance_sq(s.u_tg.row(u), s.v_tg.row(v));
        }
        let score = -g;

        let mut item_tags = Vec::new();
        if s.tags_active && s.t_p.rows() > 0 {
            if let Some(tags) = self.item_tags.get(v) {
                let dim = s.t_p.cols();
                let mut lift = vec![0.0; dim + 1];
                for &t in tags {
                    convert::poincare_to_lorentz(s.t_p.row(t as usize), &mut lift);
                    item_tags.push(TagAffinity {
                        tag: t,
                        name: self.tag_name(t),
                        distance: lorentz::distance(s.u_tg.row(u), &lift),
                    });
                }
                item_tags.sort_by(|a, b| {
                    a.distance
                        .total_cmp(&b.distance)
                        .then_with(|| a.tag.cmp(&b.tag))
                });
            }
        }

        let (node_level, node_tags) = match (&s.taxonomy, item_tags.first()) {
            (Some(taxo), Some(closest)) => {
                let node_idx = taxo.residence(closest.tag);
                let node = &taxo.nodes()[node_idx];
                (
                    Some(node.level),
                    node.retained.iter().map(|&t| self.tag_name(t)).collect(),
                )
            }
            _ => (None, Vec::new()),
        };

        Ok(Explanation {
            user,
            item,
            score,
            alpha,
            item_tags,
            node_level,
            node_tags,
        })
    }

    /// Current response-cache occupancy (entries, capacity).
    pub fn cache_usage(&self) -> (usize, usize) {
        let c = self.cache.lock().unwrap();
        (c.len(), c.capacity())
    }

    fn tag_name(&self, t: u32) -> String {
        self.tag_names
            .get(t as usize)
            .cloned()
            .unwrap_or_else(|| format!("tag{t}"))
    }
}

/// A hot-swappable handle to the serving engine — the warm-reload seam.
///
/// Every pipeline stage (parser workers, the batch scorer, responders)
/// resolves the model through its slot at the moment it needs one, so
/// an [`ModelSlot::swap`] takes effect for the *next* request while
/// every in-flight request keeps the `Arc` it already cloned. No lock
/// is held while scoring: `load` clones the `Arc` under a mutex held
/// for a pointer copy, and the old engine is dropped when its last
/// in-flight request finishes. That is what makes a shard checkpoint
/// reload zero-downtime: old and new model serve side by side for the
/// handover instant, and no request ever observes a half-loaded model.
pub struct ModelSlot {
    inner: Mutex<Arc<ServingModel>>,
}

impl ModelSlot {
    /// Wraps the initial engine.
    pub fn new(model: Arc<ServingModel>) -> Self {
        Self {
            inner: Mutex::new(model),
        }
    }

    /// The current engine (cheap: one mutex'd `Arc` clone).
    pub fn load(&self) -> Arc<ServingModel> {
        Arc::clone(&self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically replaces the engine, returning the previous one.
    /// In-flight requests holding the old `Arc` finish on it.
    pub fn swap(&self, model: Arc<ServingModel>) -> Arc<ServingModel> {
        let mut slot = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::replace(&mut *slot, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxorec_data::{generate_preset, select_top_k, Preset, Recommender, Scale};

    fn trained() -> (TaxoRec, Dataset, Split) {
        let d = generate_preset(Preset::Ciao, Scale::Tiny);
        let s = Split::standard(&d);
        let mut cfg = taxorec_core::TaxoRecConfig::fast_test();
        cfg.epochs = 6;
        let mut m = TaxoRec::new(cfg);
        m.fit(&d, &s);
        (m, d, s)
    }

    #[test]
    fn recommend_matches_live_model_and_excludes_seen() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        for user in 0..d.n_users as u32 {
            let got = serving.recommend(user, 10).unwrap();
            let scores = m.scores_for_user(user);
            let seen: std::collections::HashSet<u32> =
                s.train[user as usize].iter().copied().collect();
            let expect = select_top_k(&scores, 10, |v| seen.contains(&(v as u32)));
            assert_eq!(*got, expect, "user {user}");
            for &(v, _) in got.iter() {
                assert!(!seen.contains(&v), "user {user} served seen item {v}");
            }
        }
    }

    #[test]
    fn cache_serves_identical_results_and_counts() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        let a = serving.recommend(1, 5).unwrap();
        let b = serving.recommend(1, 5).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call is a cache hit");
        // Different k is a different cache key.
        let c = serving.recommend(1, 3).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(&a[..3], &c[..]);
        assert!(serving.cache_usage().0 >= 2);
    }

    #[test]
    fn batch_matches_single_queries() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        let users: Vec<u32> = (0..d.n_users as u32).collect();
        let batch = serving.recommend_batch(&users, 7);
        assert_eq!(batch.len(), users.len());
        for (u, res) in users.iter().zip(&batch) {
            assert_eq!(**res.as_ref().unwrap(), *serving.recommend(*u, 7).unwrap());
        }
    }

    #[test]
    fn recommend_many_is_bit_identical_to_recommend() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        // Heterogeneous batch: mixed k, duplicate users (same and
        // different k), k=0, k larger than the catalogue — wider than one
        // SERVE_BLOCK so chunking is exercised too.
        let mut queries: Vec<(u32, usize)> = (0..d.n_users as u32)
            .map(|u| (u, 1 + (u as usize % 13)))
            .collect();
        queries.push((3, 7));
        queries.push((3, 7));
        queries.push((3, 2));
        queries.push((0, 0));
        queries.push((1, d.n_items + 50));
        let got = serving.recommend_many(&queries);
        // Reference answers from a fresh engine so every query runs the
        // single-request scoring path (no cross-talk via the shared
        // cache).
        let reference = ServingModel::from_model(&m, &d, &s).unwrap();
        assert_eq!(got.len(), queries.len());
        for (&(u, k), res) in queries.iter().zip(&got) {
            let want = reference.recommend(u, k).unwrap();
            let have = res.as_ref().unwrap();
            assert_eq!(have.len(), want.len(), "user {u} k {k}");
            for (a, b) in have.iter().zip(want.iter()) {
                assert_eq!(a.0, b.0, "user {u} k {k}: item mismatch");
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "user {u} k {k}: score not bit-identical"
                );
            }
        }
    }

    #[test]
    fn recommend_batch_isolates_unknown_users() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        let n = d.n_users as u32;
        // Valid and unknown users interleaved, with a duplicate unknown.
        let users = [0, n + 1, 2, n + 9, n + 1, 1];
        let batch = serving.recommend_batch(&users, 5);
        assert_eq!(batch.len(), users.len());
        for (i, (&u, res)) in users.iter().zip(&batch).enumerate() {
            if u < n {
                let want = serving.recommend(u, 5).unwrap();
                assert_eq!(**res.as_ref().unwrap(), *want, "entry {i}");
            } else {
                // The exact error the HTTP layer maps to 404 — same
                // variant and fields as the single-request path.
                assert_eq!(
                    *res.as_ref().unwrap_err(),
                    ServeError::UnknownUser {
                        user: u,
                        n_users: d.n_users
                    },
                    "entry {i}"
                );
            }
        }
    }

    #[test]
    fn cache_key_is_total_at_the_u32_boundary() {
        // Regression: the key used to saturate `k` into u32, so every
        // k ≥ u32::MAX collided on one cached Ranking. Distinct k must
        // always produce distinct keys — including across the boundary.
        let boundary = u32::MAX as usize;
        assert_ne!(cache_key(7, boundary), cache_key(7, boundary + 1));
        assert_ne!(cache_key(7, boundary + 1), cache_key(7, boundary + 2));
        assert_eq!(cache_key(7, boundary), cache_key(7, boundary));
        // And the user still participates in the key.
        assert_ne!(cache_key(7, boundary), cache_key(8, boundary));
    }

    #[test]
    fn huge_k_queries_get_distinct_cache_entries() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        // Both k values exceed the catalogue, so both return the full
        // unseen list — but they must occupy separate cache entries
        // (the old saturating key aliased them).
        let k_a = u32::MAX as usize;
        let k_b = k_a + 1;
        let a = serving.recommend(0, k_a).unwrap();
        let b = serving.recommend(0, k_b).unwrap();
        assert_eq!(*a, *b, "same full ranking either way");
        assert!(
            !Arc::ptr_eq(&a, &b),
            "distinct k must not alias one cache entry"
        );
        assert!(serving.cache_usage().0 >= 2);
    }

    #[test]
    fn model_slot_swap_is_atomic_and_old_arcs_survive() {
        let (m, d, s) = trained();
        let slot = ModelSlot::new(Arc::new(ServingModel::from_model(&m, &d, &s).unwrap()));
        let before = slot.load();
        let replacement = Arc::new(ServingModel::from_model(&m, &d, &s).unwrap());
        let old = slot.swap(Arc::clone(&replacement));
        assert!(Arc::ptr_eq(&old, &before), "swap returns the prior engine");
        assert!(Arc::ptr_eq(&slot.load(), &replacement));
        // The old engine still answers — in-flight requests that cloned
        // it before the swap are unaffected by the handover.
        assert_eq!(
            *before.recommend(0, 5).unwrap(),
            *replacement.recommend(0, 5).unwrap()
        );
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        let n = d.n_users as u32;
        assert_eq!(
            serving.recommend(n + 5, 3).unwrap_err(),
            ServeError::UnknownUser {
                user: n + 5,
                n_users: d.n_users
            }
        );
        assert!(matches!(
            serving.explain(0, d.n_items as u32).unwrap_err(),
            ServeError::UnknownItem { .. }
        ));
    }

    #[test]
    fn explain_ranks_item_tags_and_names_a_taxonomy_node() {
        let (m, d, s) = trained();
        let serving = ServingModel::from_model(&m, &d, &s).unwrap();
        // Find an item with tags.
        let item = (0..d.n_items)
            .find(|&v| !d.item_tags[v].is_empty())
            .expect("synthetic data has tagged items") as u32;
        let ex = serving.explain(2, item).unwrap();
        assert_eq!(ex.item_tags.len(), d.item_tags[item as usize].len());
        for w in ex.item_tags.windows(2) {
            assert!(w[0].distance <= w[1].distance, "closest first");
        }
        assert!(ex.node_level.is_some(), "taxonomy rationale present");
        assert!(ex.score.is_finite());
        // Score matches the live model's score for that pair.
        assert_eq!(ex.score, m.scores_for_user(2)[item as usize]);
    }
}
