//! Consistent-hash ring for the sharded serving tier (DESIGN.md §16).
//!
//! The router partitions the user keyspace across shard workers with a
//! classic consistent-hash ring: every shard contributes
//! [`VNODES_PER_SHARD`] virtual nodes at deterministic positions on a
//! `u64` circle, and a user belongs to the first vnode clockwise from
//! the user's own hash. Virtual nodes smooth the partition (each shard
//! owns many small arcs instead of one big one), and consistency means
//! adding or removing one shard only remaps the arcs adjacent to its
//! vnodes — every other user keeps its owner, so per-shard caches stay
//! warm across topology changes.
//!
//! **Determinism is load-bearing.** `std`'s default hasher is randomly
//! seeded per process, so the ring hashes with FNV-1a instead: the
//! router, the chaos tests, and any out-of-process tooling all compute
//! the same owner for the same user. Vnode positions are hashes of
//! `"{shard}/vn{j}"`, so a shard's arcs depend only on its index and
//! the vnode count — never on insertion order or process state.
//!
//! Ownership is a *routing preference*, not a correctness boundary:
//! every shard loads the same full `.taxo` artifact, so when an owner
//! is down the router walks the ring to the next distinct shard
//! ([`Ring::candidates`]) and gets a bit-identical answer — failover
//! costs cache warmth, not correctness.

/// Virtual nodes per shard. 64 keeps the max/mean load ratio under
/// ~1.25 for small fleets (see the `balance` test) while the whole
/// ring for 16 shards is still ~1k entries — binary-searched, cheap.
pub const VNODES_PER_SHARD: usize = 64;

/// FNV-1a 64-bit: deterministic across processes and platforms, good
/// enough dispersion for ring placement, and dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over shard indices `0..n_shards`.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(position, shard)` sorted by position — the circle, unrolled.
    points: Vec<(u64, u32)>,
    n_shards: usize,
}

impl Ring {
    /// Builds the ring for `n_shards` shards (at least one) with
    /// [`VNODES_PER_SHARD`] virtual nodes each.
    pub fn new(n_shards: usize) -> Self {
        Self::with_vnodes(n_shards, VNODES_PER_SHARD)
    }

    /// Builds the ring with an explicit vnode count (tests use small
    /// counts to exercise skew).
    pub fn with_vnodes(n_shards: usize, vnodes: usize) -> Self {
        assert!(n_shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(n_shards * vnodes);
        for shard in 0..n_shards {
            for vn in 0..vnodes {
                let key = format!("shard-{shard}/vn{vn}");
                points.push((fnv1a(key.as_bytes()), shard as u32));
            }
        }
        // Position ties (astronomically unlikely with 64-bit hashes)
        // resolve by shard index, keeping the sort fully deterministic.
        points.sort_unstable();
        Self { points, n_shards }
    }

    /// Number of shards on the ring.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning `user`: the first vnode clockwise from the
    /// user's hash position (wrapping past the top of the circle).
    pub fn owner(&self, user: u32) -> u32 {
        self.points[self.successor_index(Self::user_position(user))].1
    }

    /// All shards in failover order for `user`: the owner first, then
    /// each *distinct* shard encountered walking the ring clockwise.
    /// Always yields every shard exactly once, so a caller that walks
    /// the whole list has tried the full fleet.
    pub fn candidates(&self, user: u32) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.n_shards);
        let start = self.successor_index(Self::user_position(user));
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.n_shards {
                    break;
                }
            }
        }
        order
    }

    fn user_position(user: u32) -> u64 {
        fnv1a(&user.to_le_bytes())
    }

    /// Index of the first ring point at or after `pos`, wrapping.
    fn successor_index(&self, pos: u64) -> usize {
        match self.points.binary_search(&(pos, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for user in 0..10_000u32 {
            assert_eq!(a.owner(user), b.owner(user));
        }
    }

    #[test]
    fn owner_is_head_of_candidates_and_candidates_cover_all_shards() {
        let ring = Ring::new(5);
        for user in 0..2_000u32 {
            let cands = ring.candidates(user);
            assert_eq!(cands[0], ring.owner(user));
            let mut sorted = cands.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "user {user}: {cands:?}");
        }
    }

    #[test]
    fn balance_is_reasonable_with_default_vnodes() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for user in 0..40_000u32 {
            counts[ring.owner(user) as usize] += 1;
        }
        let mean = 10_000.0;
        for (shard, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / mean;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "shard {shard} owns {c} of 40000 (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_own_keys() {
        // Consistency property: users NOT owned by the removed shard
        // keep their owner when the fleet shrinks 5 → 4. (Shard
        // indices are stable here because vnode keys are index-based
        // and shard 4 is the one dropped.)
        let five = Ring::new(5);
        let four = Ring::new(4);
        let mut moved = 0usize;
        for user in 0..20_000u32 {
            let before = five.owner(user);
            let after = four.owner(user);
            if before == 4 {
                moved += 1; // must move somewhere — its owner is gone
                assert!(after < 4);
            } else {
                assert_eq!(before, after, "user {user} remapped needlessly");
            }
        }
        // Roughly 1/5 of keys lived on the removed shard.
        assert!((2_000..=6_000).contains(&moved), "moved {moved}");
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new(1);
        for user in (0..100_000u32).step_by(997) {
            assert_eq!(ring.owner(user), 0);
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
